#!/usr/bin/env python3
"""CI smoke for the closed-loop flow layer's determinism contract.

Runs the LinkGuardian comparison grid (`fct_vs_loss`, protected x
corrupt_rate) with observability armed (`observe: true` — packet spans
recording on every cell) and asserts:

1. **worker invisibility** — the merged report is byte-identical at
   workers=1 and workers=2;
2. **resume invisibility** — a sweep killed after 2 shards and resumed
   from its checkpoint merges byte-identically to an uninterrupted run;
3. **the qualitative result survives** — at a 1e-3 corruption rate the
   protected link's p99 FCT stays at the lossless baseline while the
   unprotected link's p99 is at least 3x worse with >= 1 RTO.

Exits non-zero with a diagnostic on any violated expectation.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.runner import ExperimentSpec, run_spec


def fail(message: str) -> None:
    print(f"ci_fct_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def fct_spec() -> ExperimentSpec:
    return ExperimentSpec.from_dict(
        {
            "name": "ci-fct-smoke",
            "scenario": "fct_vs_loss",
            # Seed pinned in params (not just at the spec level) so every
            # cell runs the acceptance experiment's exact RNG streams.
            "params": {"observe": True, "seed": 6},
            "axes": {"protected": [False, True], "corrupt_rate": [0.0, 1e-3]},
            "seed": 6,
            "retries": 1,
            "timeout_s": 120.0,
        }
    )


def check_worker_invisibility() -> str:
    serial = run_spec(fct_spec(), workers=1)
    serial.require_ok()
    parallel = run_spec(fct_spec(), workers=2)
    parallel.require_ok()
    if serial.merged_json() != parallel.merged_json():
        fail("merged reports differ between workers=1 and workers=2")
    print("ci_fct_smoke: workers=1 == workers=2 (byte-identical, obs armed)")
    return serial.merged_json()


def check_resume_invisibility(baseline: str, root: Path) -> None:
    ckpt = str(root / "fct-ckpt")
    partial = run_spec(fct_spec(), workers=1, checkpoint_dir=ckpt, max_shards=2)
    if partial.complete:
        fail("partial run unexpectedly completed all shards")
    resumed = run_spec(fct_spec(), workers=2, checkpoint_dir=ckpt)
    if not resumed.complete:
        fail("resumed run did not complete")
    if resumed.merged_json() != baseline:
        fail("kill/resume changed the merged report")
    print("ci_fct_smoke: kill-after-2-shards + resume is byte-identical")


def check_qualitative_result(merged: str) -> None:
    import json

    rows = [shard["result"] for shard in json.loads(merged)["shards"]]
    by_arm = {(row["protected"], row["corrupt_rate"]): row for row in rows}
    base = by_arm[(False, 0.0)]
    prot = by_arm[(True, 1e-3)]
    raw = by_arm[(False, 1e-3)]
    if prot["link"]["corrupted"] == 0:
        fail("protected arm saw no corruption — the comparison is vacuous")
    if prot["retransmits"] != 0:
        fail(f"protection leaked {prot['retransmits']} retransmits to the transport")
    if prot["fct_us"]["p99"] > base["fct_us"]["p99"] * 1.1:
        fail(
            f"protected p99 {prot['fct_us']['p99']:.0f}us strayed from "
            f"baseline {base['fct_us']['p99']:.0f}us"
        )
    if raw["timeouts"] < 1:
        fail("unprotected arm paid no RTO — tail collapse not reproduced")
    ratio = raw["fct_us"]["p99"] / prot["fct_us"]["p99"]
    if ratio < 3.0:
        fail(f"unprotected p99 only {ratio:.1f}x protected (need >= 3x)")
    print(
        f"ci_fct_smoke: LinkGuardian result holds "
        f"(unprotected p99 {ratio:.1f}x protected, {raw['timeouts']} RTOs)"
    )


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="ci-fct-") as tmp:
        baseline = check_worker_invisibility()
        check_resume_invisibility(baseline, Path(tmp))
        check_qualitative_result(baseline)
    print("ci_fct_smoke: OK")


if __name__ == "__main__":
    main()
