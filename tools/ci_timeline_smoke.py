#!/usr/bin/env python3
"""CI smoke for the waveform recorder's determinism guarantees.

The waveform digest is the proof object of PR 10: one SHA-256 over the
canonical JSON of every recorded series. This smoke checks the three
invariances the ISSUE demands, end to end:

1. **datapath invariance** — the same workload recorded under
   ``REPRO_DATAPATH=packet`` and ``=burst`` must produce *byte-identical*
   digests (the burst lanes feed waveforms closed-form, at window
   edges, instead of per packet);
2. **worker-count invariance** — an ``incast_burst`` sweep with
   ``waveforms: true`` folded through :class:`repro.runner.SweepRunner`
   must produce the same ``merged_waveforms()`` document at 1 and 4
   workers;
3. **kill-and-resume invariance** — a sweep stopped after one shard and
   resumed from its checkpoint directory must fold to the same combined
   digest as an uninterrupted run.

Exits non-zero with a diagnostic on any violated expectation.
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

from repro.obs import observe_simulators
from repro.runner import ExperimentSpec, SweepRunner
from repro.telemetry import WaveformRecorder
from repro.testbed.attacks import incast_burst_point
from repro.units import ms


def fail(message: str) -> None:
    print(f"ci_timeline_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def incast_digest(keep_every: int = 1) -> str:
    recorder = WaveformRecorder(keep_every=keep_every)
    with observe_simulators(waves=recorder):
        incast_burst_point(duration_ps=int(ms(1)))
    return recorder.digest()


def loopback_digest() -> str:
    from repro.hw import connect
    from repro.osnt import OSNT
    from repro.sim import Simulator
    from repro.testbed.workloads import udp_template

    recorder = WaveformRecorder()
    sim = Simulator()
    recorder.arm(sim)
    tester = OSNT(sim)
    connect(tester.port(0), tester.port(1))
    generator = tester.generator(0)
    generator.load_template(udp_template(256))
    generator.set_load(0.6).for_duration(ms(1))
    generator.start()
    sim.run()
    return recorder.digest()


def check_datapath_invariance() -> None:
    for name, runner in (("loopback", loopback_digest), ("incast", incast_digest)):
        digests = {}
        for impl in ("packet", "burst"):
            os.environ["REPRO_DATAPATH"] = impl
            try:
                digests[impl] = runner()
            finally:
                os.environ.pop("REPRO_DATAPATH", None)
        if digests["packet"] != digests["burst"]:
            fail(
                f"{name}: digest differs across datapaths: "
                f"packet={digests['packet']} burst={digests['burst']}"
            )
        print(f"datapath invariance ok ({name}): {digests['burst'][:16]}…")


def incast_spec(name: str) -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        scenario="incast_burst",
        params={"duration": "1ms", "waveforms": True},
        axes={"senders": [1, 2, 3]},
        timeout_s=120.0,
        retries=0,
    )


def check_worker_invariance(root: Path) -> dict:
    folds = {}
    reports = {}
    for workers in (1, 4):
        report = SweepRunner(
            incast_spec("ci-timeline"),
            workers=workers,
            checkpoint_dir=root / f"w{workers}",
        ).run()
        if len(report.ok) != 3:
            fail(f"workers={workers}: expected 3 ok shards, got {len(report.ok)}")
        folds[workers] = report.merged_waveforms()
        reports[workers] = report.merged_json()
    if folds[1] != folds[4]:
        fail(f"waveform fold differs across worker counts: {folds}")
    if folds[1]["combined_digest"] is None:
        fail("no combined digest — shards did not report waveform_digest")
    if reports[1] != reports[4]:
        fail("merged_json differs across worker counts")
    print(f"worker invariance ok: combined {folds[1]['combined_digest'][:16]}…")
    return folds[1]


def check_resume_invariance(root: Path, expected: dict) -> None:
    checkpoint = root / "resume"
    partial = SweepRunner(
        incast_spec("ci-timeline"), workers=1, checkpoint_dir=checkpoint
    ).run(max_shards=1)
    if len(partial.ok) != 1:
        fail(f"partial run: expected 1 ok shard, got {len(partial.ok)}")
    resumed = SweepRunner(
        incast_spec("ci-timeline"), workers=4, checkpoint_dir=checkpoint
    ).run()
    if len(resumed.ok) != 3:
        fail(f"resumed run: expected 3 ok shards, got {len(resumed.ok)}")
    fold = resumed.merged_waveforms()
    if fold != expected:
        fail(f"kill-and-resume fold differs: {fold} vs {expected}")
    print("kill-and-resume invariance ok")


def main() -> int:
    check_datapath_invariance()
    with tempfile.TemporaryDirectory(prefix="ci-timeline-") as tmp:
        root = Path(tmp)
        expected = check_worker_invariance(root)
        check_resume_invariance(root, expected)
    print("ci_timeline_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
