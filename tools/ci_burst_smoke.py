#!/usr/bin/env python3
"""CI smoke for the traffic-model layer's determinism contract.

Runs a short ``incast_burst`` grid (traffic-model axis: smooth CBR vs a
burst train at the same order of offered load) with observability armed
(``observe: true`` — packet spans recording on every cell) and asserts:

1. **worker invisibility** — the merged report is byte-identical at
   workers=1 and workers=2;
2. **resume invisibility** — a sweep killed after 1 shard and resumed
   from its checkpoint merges byte-identically to an uninterrupted run;
3. **backend invisibility** — the merged report is byte-identical under
   ``REPRO_DATAPATH=packet`` and ``REPRO_DATAPATH=burst``;
4. **the qualitative result survives** — at comparable average load the
   burst train drives a strictly higher egress queue peak than smooth
   CBR, and every row carries a per-flow RTT p99.9.

Exits non-zero with a diagnostic on any violated expectation.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from pathlib import Path

from repro.runner import ExperimentSpec, run_spec


def fail(message: str) -> None:
    print(f"ci_burst_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def incast_spec() -> ExperimentSpec:
    return ExperimentSpec.from_dict(
        {
            "name": "ci-burst-smoke",
            "scenario": "incast_burst",
            # Seed pinned in params so every cell runs the acceptance
            # experiment's exact RNG streams; observe arms spans.
            "params": {
                "senders": 2,
                "frame_size": 256,
                "duration": "500us",
                "observe": True,
                "seed": 3,
            },
            "axes": {
                "traffic": [
                    {"model": "cbr", "params": {"rate": "2Gbps"}},
                    {
                        "model": "burst_train",
                        "params": {
                            "frames_per_burst": 64,
                            "inter_burst_gap": "70us",
                        },
                    },
                ]
            },
            "seed": 3,
            "retries": 1,
            "timeout_s": 120.0,
        }
    )


def check_worker_invisibility() -> str:
    serial = run_spec(incast_spec(), workers=1)
    serial.require_ok()
    parallel = run_spec(incast_spec(), workers=2)
    parallel.require_ok()
    if serial.merged_json() != parallel.merged_json():
        fail("merged reports differ between workers=1 and workers=2")
    print("ci_burst_smoke: workers=1 == workers=2 (byte-identical, obs armed)")
    return serial.merged_json()


def check_resume_invisibility(baseline: str, root: Path) -> None:
    ckpt = str(root / "burst-ckpt")
    partial = run_spec(incast_spec(), workers=1, checkpoint_dir=ckpt, max_shards=1)
    if partial.complete:
        fail("partial run unexpectedly completed all shards")
    resumed = run_spec(incast_spec(), workers=2, checkpoint_dir=ckpt)
    if not resumed.complete:
        fail("resumed run did not complete")
    if resumed.merged_json() != baseline:
        fail("kill/resume changed the merged report")
    print("ci_burst_smoke: kill-after-1-shard + resume is byte-identical")


def check_backend_invisibility(baseline: str) -> None:
    previous = os.environ.get("REPRO_DATAPATH")
    try:
        os.environ["REPRO_DATAPATH"] = "packet"
        packet = run_spec(incast_spec(), workers=1)
        packet.require_ok()
    finally:
        if previous is None:
            os.environ.pop("REPRO_DATAPATH", None)
        else:
            os.environ["REPRO_DATAPATH"] = previous
    if packet.merged_json() != baseline:
        fail("merged reports differ between REPRO_DATAPATH=packet and burst")
    print("ci_burst_smoke: packet and burst datapaths merge byte-identically")


def check_qualitative_result(merged: str) -> None:
    rows = [shard["result"] for shard in json.loads(merged)["shards"]]
    by_model = {row["traffic"]: row for row in rows}
    if len(by_model) != 2:
        fail(f"expected 2 distinct traffic fingerprints, got {len(by_model)}")
    cbr, train = rows  # shard order follows the axis order
    for row in rows:
        if row["rtt_p999_us"] is None:
            fail("a row is missing its per-flow RTT p99.9")
        if not row["flow_rtt_rows"]:
            fail("a row has no per-flow RTT entries")
    if train["queue_peak_bytes"] <= cbr["queue_peak_bytes"]:
        fail(
            f"burst train queue peak {train['queue_peak_bytes']}B not above "
            f"CBR's {cbr['queue_peak_bytes']}B — burstiness had no effect"
        )
    print(
        f"ci_burst_smoke: incast result holds (queue peak "
        f"{cbr['queue_peak_bytes']}B smooth -> {train['queue_peak_bytes']}B "
        f"bursty; p99.9 RTT {cbr['rtt_p999_us']:.1f}us -> "
        f"{train['rtt_p999_us']:.1f}us)"
    )


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="ci-burst-") as tmp:
        baseline = check_worker_invisibility()
        check_resume_invisibility(baseline, Path(tmp))
        check_backend_invisibility(baseline)
        check_qualitative_result(baseline)
    print("ci_burst_smoke: OK")


if __name__ == "__main__":
    main()
