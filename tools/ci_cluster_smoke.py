#!/usr/bin/env python3
"""CI smoke for the cluster layer: remote workers + the result store.

End to end, with real processes and sockets:

1. **cold distributed run** — an 8-shard ``line_rate`` sweep through a
   :class:`~repro.cluster.SocketScheduler` with two spawned
   ``osnt-worker`` processes, results published to a content-addressed
   :class:`~repro.cluster.ResultStore`. Every shard must execute
   remotely, both workers must participate (pull-based work stealing),
   and the per-worker telemetry must aggregate into a valid
   OpenMetrics exposition.
2. **warm rerun** — the same sweep against the same store: 100% cache
   hits, zero shards executed, and a merged document byte-identical to
   the cold run.
3. **baseline cross-check** — the merged document must also match a
   plain single-process inline run: distribution and caching must
   never change results.

Exits non-zero with a diagnostic on any violated expectation.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.cluster import ResultStore, SocketScheduler, workers_openmetrics
from repro.runner import ExperimentSpec, SweepRunner, run_spec
from repro.telemetry import parse_openmetrics

SHARDS = 8


def fail(message: str) -> None:
    print(f"ci_cluster_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def sweep_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="ci-cluster-smoke",
        scenario="line_rate",
        params={"duration": "0.2ms", "seed": 0},
        axes={"frame_size": [64, 128, 256, 512, 1024, 1280, 1514, 1518]},
        retries=1,
        timeout_s=120.0,
    )


def check_cold_distributed_run(store_dir: Path) -> str:
    runner = SweepRunner(
        sweep_spec(),
        scheduler=SocketScheduler(spawn_workers=2, heartbeat_s=0.1),
        cache_dir=store_dir,
    )
    report = runner.run()
    if len(report.ok) != SHARDS:
        fail(f"cold run: expected {SHARDS} ok shards, got {len(report.ok)}")
    if report.from_cache:
        fail("cold run: nothing should have been cache-served")
    stats = report.scheduler_stats
    if stats.get("backend") != "socket" or stats.get("executed") != SHARDS:
        fail(f"cold run: unexpected scheduler stats {stats}")
    per_worker = stats.get("per_worker", {})
    if len(per_worker) != 2 or sum(per_worker.values()) != SHARDS:
        fail(f"cold run: both workers must participate, got {per_worker}")
    if not report.worker_telemetry:
        fail("cold run: no per-worker telemetry snapshots were collected")
    families = parse_openmetrics(workers_openmetrics(report.worker_telemetry))
    if "osnt_worker_shards_ok" not in families:
        fail(f"aggregated exposition lacks shards_ok ({sorted(families)})")
    print(
        f"cold distributed run ok: {SHARDS} shards over "
        f"{len(per_worker)} workers {dict(per_worker)}, "
        f"{len(families)} OpenMetrics families"
    )
    return report.merged_json()


def check_warm_rerun(store_dir: Path, cold_merged: str) -> None:
    store = ResultStore(store_dir)
    runner = SweepRunner(
        sweep_spec(),
        scheduler=SocketScheduler(spawn_workers=2, heartbeat_s=0.1),
        cache_dir=store,
    )
    report = runner.run()
    if len(report.from_cache) != SHARDS:
        fail(
            f"warm rerun: expected {SHARDS} cache hits, "
            f"got {len(report.from_cache)}"
        )
    if report.scheduler_stats.get("executed", -1) != 0:
        fail(f"warm rerun executed shards: {report.scheduler_stats}")
    if store.hits != SHARDS:
        fail(f"warm rerun: store counted {store.hits} hits, want {SHARDS}")
    if report.merged_json() != cold_merged:
        fail("warm rerun: merged document differs from the cold run")
    stats = store.stats()
    print(
        f"warm rerun ok: {SHARDS}/{SHARDS} cache hits, merged byte-identical "
        f"({stats.entries} entries, {stats.total_bytes} bytes in store)"
    )


def check_inline_baseline(cold_merged: str) -> None:
    report = run_spec(sweep_spec(), workers=0)
    if len(report.ok) != SHARDS:
        fail(f"baseline: expected {SHARDS} ok shards, got {len(report.ok)}")
    if report.merged_json() != cold_merged:
        fail("distributed merged document differs from the inline baseline")
    print("baseline ok: inline merged document is byte-identical")


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="ci-cluster-") as tmp:
        store_dir = Path(tmp) / "store"
        cold_merged = check_cold_distributed_run(store_dir)
        check_warm_rerun(store_dir, cold_merged)
        check_inline_baseline(cold_merged)
    print("ci_cluster_smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
