#!/usr/bin/env python3
"""CI smoke for the flight recorder and the OpenMetrics exporter.

Runs a 4-shard ``sleep`` sweep with the flight recorder armed twice:

1. **liveness** — a normal heartbeat interval: every shard must produce
   heartbeat files with ``start``/``done`` beats and no stall flags;
2. **stall detection** — an artificially low stall threshold against a
   heartbeat interval far above it, so the gap after each worker's
   ``start`` beat *must* be flagged while the shards still finish ok
   (stalls are advisory).

Then exercises the OpenMetrics path end to end: a short telemetry
loopback run exported with ``--format openmetrics`` and validated with
the strict parser (:func:`repro.telemetry.parse_openmetrics`).

Exits non-zero with a diagnostic on any violated expectation.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.obs import heartbeat_path, read_heartbeats
from repro.runner import ExperimentSpec, SweepRunner
from repro.telemetry import parse_openmetrics


def fail(message: str) -> None:
    print(f"ci_flight_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def sleep_spec(name: str, duration_s: float) -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        scenario="sleep",
        params={},
        axes={"duration_s": [duration_s] * 4},
        timeout_s=60.0,
        retries=0,
    )


def check_liveness(root: Path) -> None:
    flight = root / "flight-live"
    progress_lines: list = []
    runner = SweepRunner(
        sleep_spec("ci-flight-live", 0.4),
        workers=2,
        flight_dir=flight,
        heartbeat_s=0.1,
        on_progress=progress_lines.append,
        progress_interval_s=0.2,
    )
    report = runner.run()
    if len(report.ok) != 4:
        fail(f"liveness sweep: expected 4 ok shards, got {len(report.ok)}")
    if report.stalled:
        fail(f"liveness sweep flagged stalls: {[s.index for s in report.stalled]}")
    for index in range(4):
        beats = read_heartbeats(heartbeat_path(flight, index, 1))
        kinds = [beat["kind"] for beat in beats]
        if not kinds or kinds[0] != "start" or kinds[-1] != "done":
            fail(f"shard {index}: bad heartbeat kinds {kinds}")
        if len(beats) < 3:
            fail(f"shard {index}: only {len(beats)} beats for a 0.4s shard")
    if not progress_lines:
        fail("no live progress lines were emitted")
    print(f"liveness ok: 4 shards, progress lines: {len(progress_lines)}")
    print(f"  last: {progress_lines[-1]}")


def check_stall_detection(root: Path) -> None:
    runner = SweepRunner(
        sleep_spec("ci-flight-stall", 0.6),
        workers=2,
        flight_dir=root / "flight-stall",
        heartbeat_s=30.0,  # far above the threshold: only "start" lands
        stall_after_s=0.2,
    )
    report = runner.run()
    if len(report.ok) != 4:
        fail(f"stall sweep: expected 4 ok shards, got {len(report.ok)}")
    stalled = sorted(s.index for s in report.stalled)
    if stalled != [0, 1, 2, 3]:
        fail(f"stall detection missed shards: flagged {stalled}, expected all 4")
    if "[stalled]" not in report.summary():
        fail("summary() does not surface the stall flags")
    print(f"stall detection ok: flagged {stalled} (all shards still completed)")


def check_openmetrics(root: Path) -> None:
    from repro.osnt.cli import telemetry_main

    out = root / "card.om"
    code = telemetry_main(
        ["--duration-ms", "0.2", "--format", "openmetrics", "--json", str(out)]
    )
    if code != 0:
        fail(f"osnt-telemetry --format openmetrics exited {code}")
    text = out.read_text()
    families = parse_openmetrics(text)  # raises on any format violation
    if not any(name.startswith("osnt_") for name in families):
        fail(f"no osnt_-prefixed families in the exposition ({len(families)})")
    summaries = [n for n, f in families.items() if f["type"] == "summary"]
    if not summaries:
        fail("expected at least one summary family (latency histogram)")
    print(
        f"openmetrics ok: {len(families)} families "
        f"({len(summaries)} summaries), {len(text.splitlines())} lines"
    )


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="ci-flight-") as tmp:
        root = Path(tmp)
        check_liveness(root)
        check_stall_detection(root)
        check_openmetrics(root)
    print("ci_flight_smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
