"""E9 (extension) — resolving DUT microarchitecture with sub-µs stamps.

The OSNT pitch is that 6.25 ns timestamping resolves effects commodity
tools cannot. This bench demonstrates it on a router DUT whose LPM
pipeline walks one trie level (12 ns) per matched prefix bit: the
per-prefix-length latency staircase is far below software timestamping
noise (E2 measured µs-scale), yet trivially visible to the tester.
"""

from conftest import emit, run_once

from repro.analysis import format_table
from repro.testbed import measure_router_latency

PREFIX_LENS = [0, 8, 16, 24, 32]


def test_e9_lpm_depth_staircase(benchmark):
    rows = run_once(
        benchmark, lambda: measure_router_latency(PREFIX_LENS, fib_fill=500)
    )
    emit(
        format_table(
            ["matched prefix", "FIB routes", "probes", "mean us", "p99 us"],
            [
                [
                    f"/{row.prefix_len}",
                    row.fib_routes,
                    row.packets,
                    round(row.mean_us, 4),
                    round(row.p99_us, 4),
                ]
                for row in rows
            ],
            title="E9: router latency vs matched LPM depth (12 ns per trie level)",
        )
    )
    assert all(row.no_route == 0 for row in rows)
    means = [row.mean_us for row in rows]
    # Strictly increasing staircase...
    assert means == sorted(means)
    # ...with ~96 ns per 8 levels (12 ns per level), resolved to within
    # the 6.25 ns timestamp quantisation.
    steps_ns = [(b - a) * 1e3 for a, b in zip(means, means[1:])]
    for step in steps_ns:
        assert 96 - 13 <= step <= 96 + 13
