"""Waveform recording overhead: armed probes must stay cheap.

Not a paper experiment — the regression guard for
``repro.telemetry.timeseries``. The contract (ISSUE 10 acceptance
criteria, docs/OBSERVABILITY.md) is:

* an armed :class:`~repro.telemetry.WaveformRecorder` may add at most
  15% wall-clock to the E3 legacy-latency workload it samples — the
  per-probe cost is one cached-tuple load plus a ``record()`` that
  usually suppresses (value unchanged);
* a *disarmed* recorder must be near-free: the hot-path hook is one
  ``sim.waves`` attribute load + ``None`` check per site, the same
  pattern as spans and the kernel tracer.

Methodology mirrors ``test_perf_obs``: interleaved reps so machine
drift hits both sides, ``gc.collect()`` before each rep, and ``min`` of
the reps (for a deterministic workload that estimates the noise floor
rather than averaging noise in).
"""

import gc
import time

from repro.sim import Simulator
from repro.telemetry import WaveformRecorder
from repro.testbed.scenarios import legacy_latency_point

# More reps than the spans benchmark: the armed delta (~7%) sits close
# to this container's per-rep noise (±15%), so min-of-reps needs more
# draws to converge on the floor for both sides.
REPS = 8
#: Armed waveform recording budget over the instrumented E3 workload.
ARMED_BUDGET = 1.15
#: Disarmed hooks leave only None checks behind (same bar as spans).
DISARMED_BUDGET = 1.05

_WORKLOAD = dict(frame_size=256, load=0.5, duration_ps=500_000_000)  # 0.5 ms


def _timed_point(arm=None):
    """One E3 latency point, optionally arming the recorder first."""
    gc.collect()
    hook = None
    if arm is not None:
        from repro.sim import add_creation_hook

        add_creation_hook(arm)
        hook = arm
    try:
        start = time.perf_counter()
        row, _ = legacy_latency_point(**_WORKLOAD)
        elapsed = time.perf_counter() - start
    finally:
        if hook is not None:
            from repro.sim import remove_creation_hook

            remove_creation_hook(hook)
    assert row.packets > 0
    return elapsed


def test_armed_waveform_recording_within_budget():
    recorder = WaveformRecorder()
    base_times, armed_times = [], []
    for _ in range(REPS):
        base_times.append(_timed_point())
        armed_times.append(_timed_point(arm=lambda sim: recorder.arm(sim)))
    base, armed = min(base_times), min(armed_times)
    ratio = armed / base
    counts = recorder.counts()
    print(
        f"\nwaveform recording: base {base * 1e3:.1f} ms, "
        f"armed {armed * 1e3:.1f} ms, ratio {ratio:.3f} "
        f"(budget {ARMED_BUDGET}); {counts['series']} series, "
        f"{counts['recorded']} samples, {counts['retained']} retained"
    )
    assert counts["recorded"] > 0
    assert ratio < ARMED_BUDGET, (
        f"armed waveform recording costs {(ratio - 1) * 100:.1f}% over an "
        f"unobserved run; the agreed budget is {(ARMED_BUDGET - 1) * 100:.0f}%"
    )


def test_disarmed_recorder_is_near_free():
    """Arm-then-disarm must leave only the ``sim.waves`` None checks.

    Measured on the deterministic chained-dispatch kernel loop (the
    same workload the spans benchmark uses) rather than the full E3
    scenario: the disarmed cost lives in the datapath hook sites, and
    the tight loop resolves a 1–5% delta where the scenario's wall time
    cannot.
    """
    EVENTS = 50_000

    def chained(disarm_first):
        sim = Simulator()
        if disarm_first:
            WaveformRecorder().arm(sim).disarm()
        remaining = [EVENTS]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.call_after(100, tick)

        sim.call_after(100, tick)
        sim.run()
        assert sim.events_processed == EVENTS

    never_times, disarmed_times = [], []
    for _ in range(REPS + 2):
        gc.collect()
        start = time.perf_counter()
        chained(False)
        never_times.append(time.perf_counter() - start)
        gc.collect()
        start = time.perf_counter()
        chained(True)
        disarmed_times.append(time.perf_counter() - start)
    ratio = min(disarmed_times) / min(never_times)
    print(f"\ndisarmed waveform recorder ratio vs never-armed: {ratio:.3f}")
    assert ratio < DISARMED_BUDGET


def test_closed_form_run_recording_beats_per_sample_loop():
    """``record_run`` exists so burst lanes stay O(1) per window: a
    10k-frame constant-value run (the wire-rate shape — every sample
    suppressed after the first) folds in constant time, where the
    per-sample path pays 10k calls. The toggle closed form is O(points)
    by necessity; it must still land on the identical stream without
    being slower."""
    from repro.telemetry import Waveform

    N = 10_000
    loop = Waveform("loop")
    closed = Waveform("closed")

    gc.collect()
    start = time.perf_counter()
    for i in range(N):
        loop.record(i * 100, 512)
    loop_s = time.perf_counter() - start

    gc.collect()
    start = time.perf_counter()
    closed.record(0, 512)
    closed.record_run(100, N - 1, 100, 512, 0)
    closed_s = time.perf_counter() - start

    assert closed.points() == loop.points()
    assert closed.recorded == loop.recorded
    speedup = loop_s / closed_s if closed_s else float("inf")
    print(f"\nclosed-form constant run: {speedup:.0f}x vs per-sample loop")
    assert speedup > 10

    toggle_loop = Waveform("tl", keep_every=4)
    toggle_closed = Waveform("tc", keep_every=4)
    for i in range(N):
        toggle_loop.record(i * 100, 512)
        toggle_loop.record(i * 100, 0)
    toggle_closed.record_toggle_run(0, N, 100, 512, 0)
    assert toggle_closed.points() == toggle_loop.points()
