"""Perf: a warm result cache must make reruns essentially free.

The content-addressed store exists to skip work: a rerun of an
already-computed sweep should serve every shard from disk instead of
executing it. This benchmark runs an 8-shard wall-clock-bound sweep
cold (every shard sleeps), then warm against the same store, and
asserts the warm rerun is at least 5x faster — while the merged
documents stay bit-identical, because a cache hit returns the same
bytes a cold execution produced.
"""

import time

from conftest import emit, run_once

from repro.analysis import format_table
from repro.runner import ExperimentSpec, run_spec

SHARDS = 8
SHARD_SLEEP_S = 0.25
MIN_SPEEDUP = 5.0


def _timed_run(spec, store_dir):
    start = time.monotonic()
    report = run_spec(spec, workers=2, cache_dir=store_dir)
    elapsed = time.monotonic() - start
    report.require_ok()
    return elapsed, report


def test_perf_warm_cache_rerun(benchmark, tmp_path):
    spec = ExperimentSpec(
        name="perf-cache",
        scenario="sleep",
        params={"duration_s": SHARD_SLEEP_S},
        repeats=SHARDS,
        retries=1,
        timeout_s=30.0,
    )
    store_dir = tmp_path / "store"

    def compare():
        cold, cold_report = _timed_run(spec, store_dir)
        warm, warm_report = _timed_run(spec, store_dir)
        assert not cold_report.from_cache
        assert len(warm_report.from_cache) == SHARDS
        assert warm_report.merged_json() == cold_report.merged_json()
        return cold, warm

    cold, warm = run_once(benchmark, compare)
    speedup = cold / warm
    emit(
        format_table(
            ["run", "shards", "cache hits", "wall s", "speedup"],
            [
                ["cold", SHARDS, 0, f"{cold:.2f}", "1.00x"],
                ["warm", SHARDS, SHARDS, f"{warm:.2f}", f"{speedup:.2f}x"],
            ],
            title=(
                f"warm-cache rerun of {SHARDS}x{SHARD_SLEEP_S}s shards "
                f"(budget: >={MIN_SPEEDUP:.0f}x)"
            ),
        )
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm-cache rerun only {speedup:.2f}x faster than cold "
        f"(budget {MIN_SPEEDUP:.0f}x): the store is not serving shards"
    )
