"""A3 (ablation) — comparing switch classes, OFLOPS-turbo style.

The demo runs "multiple measurement tests against a production OpenFlow
switch"; the underlying OFLOPS-turbo work compared several vendors and
found order-of-magnitude spreads. This bench runs the flow_mod-latency
module against the four modelled switch classes and prints the
comparison table the framework exists to produce.
"""

from conftest import emit, run_once

from repro.analysis import format_table
from repro.devices import PROFILES
from repro.oflops import FlowModLatencyModule, ModuleRunner, OflopsContext

N_RULES = 16


def test_a3_switch_class_comparison(benchmark):
    def sweep():
        results = {}
        for name in sorted(PROFILES):
            runner = ModuleRunner(OflopsContext(profile=PROFILES[name]))
            results[name] = runner.run(FlowModLatencyModule(n_rules=N_RULES))
        return results

    results = run_once(benchmark, sweep)
    emit(
        format_table(
            ["DUT class", "barrier us", "all rules live us", "us/rule", "barrier honest?"],
            [
                [
                    name,
                    round(result["control_done_us"], 1),
                    round(result["data_done_us"], 1),
                    round(result["data_done_us"] / N_RULES, 1),
                    "no" if result["barrier_understates_by_us"] > 100 else "yes",
                ]
                for name, result in results.items()
            ],
            title=f"A3: {N_RULES}-rule install across switch classes (flow_mod_latency)",
        )
    )
    # The software switch installs rules orders of magnitude faster than
    # hardware TCAM writers...
    assert results["soft-switch"]["data_done_us"] * 10 < results["hw-fast-cpu"]["data_done_us"]
    # ...a slow management CPU hurts even with a faster table...
    assert results["hw-slow-cpu"]["data_done_us"] > results["hw-fast-cpu"]["data_done_us"] / 2
    # ...and only the eager DUT's barrier is dishonest.
    for name, result in results.items():
        if name == "hw-eager":
            assert result["barrier_understates_by_us"] > 300
        else:
            assert result["barrier_understates_by_us"] < 100
