"""E6 — "a loss-limited path that gets (a subset of) captured packets
into the host ... packet capture filtering and packet thinning in
hardware" (paper §1).

Regenerates: host capture completeness vs offered load, for the plain
path and each hardware reducer (cut / thin / cut+thin).
"""

from conftest import emit, run_once

from repro.analysis import format_table
from repro.testbed import measure_capture_path
from repro.units import ms

LOADS = [0.1, 0.3, 0.6, 0.9]


def test_e6_capture_loss_vs_reducers(benchmark):
    rows = run_once(
        benchmark, lambda: measure_capture_path(loads=LOADS, duration_ps=ms(2))
    )
    emit(
        format_table(
            ["load", "variant", "offered", "captured", "dropped", "capture %"],
            [
                [
                    f"{row.offered_load:.1f}",
                    row.variant,
                    row.offered_packets,
                    row.captured,
                    row.dropped,
                    f"{row.capture_fraction:.1%}",
                ]
                for row in rows
            ],
            title="E6: loss-limited host path (DMA 2 Gbps) vs hardware reducers",
        )
    )
    def of(load, variant):
        return next(r for r in rows if r.offered_load == load and r.variant == variant)

    # Low load: everything captures fine even with no reduction.
    assert of(0.1, "full").capture_fraction == 1.0
    # High load: the plain path loses packets...
    assert of(0.9, "full").dropped > 0
    # ...and loses more as load grows (monotone drop curve).
    drops = [of(load, "full").dropped for load in LOADS]
    assert drops == sorted(drops)
    # Each hardware reducer restores a lossless host path at 0.9 load.
    for variant in ("cut-64", "thin-1in8", "cut+thin"):
        assert of(0.9, variant).dropped == 0, variant
