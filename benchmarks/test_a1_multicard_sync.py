"""A1 (ablation/extension) — multi-tester deployments need GPS sync.

Paper §1: "Such deployments may see the use of hundreds or thousands of
testers, offering previously unobtainable insights" — which only works
because every card's clock is disciplined to the same GPS time base.

Regenerates: one-way latency between two separate OSNT cards (30 ppm
and −25 ppm oscillators), measured across clock domains, with GPS on
and off.
"""

from conftest import emit, run_once

from repro.analysis import format_table
from repro.testbed.multicard import measure_one_way_latency

SAMPLE_TIMES_S = [1, 5, 10]


def test_a1_one_way_latency_across_cards(benchmark):
    def sweep():
        rows = []
        for gps in (False, True):
            rows.extend(
                measure_one_way_latency(gps, sample_times_s=SAMPLE_TIMES_S)
            )
        return rows

    rows = run_once(benchmark, sweep)
    emit(
        format_table(
            ["GPS", "after s", "true ns", "measured ns", "error ns"],
            [
                [
                    "on" if row.gps_enabled else "off",
                    row.measured_after_s,
                    round(row.true_latency_ns, 1),
                    round(row.measured_mean_ns, 1),
                    round(row.error_ns, 1),
                ]
                for row in rows
            ],
            title="A1: one-way latency between two tester cards (cross-clock)",
        )
    )
    free = [row for row in rows if not row.gps_enabled]
    disciplined = [row for row in rows if row.gps_enabled]
    # Free-running clocks make one-way latency meaningless (and the
    # error grows with elapsed time — here it even goes negative).
    assert all(abs(row.error_ns) > 10_000 for row in free)
    free_errors = [abs(row.error_ns) for row in free]
    assert free_errors == sorted(free_errors)
    # GPS-disciplined cards agree to within tens of ns — measurement is
    # dominated by the true path latency, not clock offset.
    assert all(abs(row.error_ns) < 100 for row in disciplined)
