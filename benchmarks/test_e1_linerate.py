"""E1 — "full line-rate traffic generation regardless of packet size
across the four card ports" (paper §1).

Regenerates: achieved throughput/pps vs frame size, one port and four
ports, against 10GbE theoretical line rate.
"""

from conftest import emit, run_once

from repro.analysis import format_table
from repro.testbed import RFC2544_SIZES, measure_line_rate
from repro.units import ms


def test_e1_line_rate_one_port(benchmark):
    rows = run_once(
        benchmark, lambda: measure_line_rate(RFC2544_SIZES, duration_ps=ms(1))
    )
    emit(
        format_table(
            ["frame B", "theory Mpps", "achieved Mpps", "theory Gbps", "achieved Gbps", "efficiency"],
            [
                [
                    row.frame_size,
                    round(row.theoretical_pps / 1e6, 3),
                    round(row.achieved_pps / 1e6, 3),
                    round(row.theoretical_goodput_bps / 1e9, 3),
                    round(row.achieved_goodput_bps / 1e9, 3),
                    f"{row.efficiency:.4f}",
                ]
                for row in rows
            ],
            title="E1a: line rate vs frame size, 1 port (paper: full line rate at any size)",
        )
    )
    # The paper's claim: line rate regardless of packet size.
    assert all(row.efficiency > 0.999 for row in rows)
    # 64B must hit the canonical 14.88 Mpps.
    assert abs(rows[0].achieved_pps - 14_880_952) < 20_000


def test_e1_line_rate_four_ports(benchmark):
    sizes = [64, 512, 1518]
    rows = run_once(
        benchmark, lambda: measure_line_rate(sizes, duration_ps=ms(1), ports=4)
    )
    emit(
        format_table(
            ["frame B", "ports", "achieved Gbps", "theory Gbps", "efficiency"],
            [
                [
                    row.frame_size,
                    row.ports,
                    round(row.achieved_goodput_bps / 1e9, 3),
                    round(row.theoretical_goodput_bps / 1e9, 3),
                    f"{row.efficiency:.4f}",
                ]
                for row in rows
            ],
            title="E1b: aggregate line rate across all four card ports",
        )
    )
    assert all(row.efficiency > 0.999 for row in rows)
    # Four ports of 1518B frames ≈ 4 × 9.87 Gbps goodput.
    assert rows[-1].achieved_goodput_bps > 39e9
