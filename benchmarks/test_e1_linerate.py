"""E1 — "full line-rate traffic generation regardless of packet size
across the four card ports" (paper §1).

Regenerates: achieved throughput/pps vs frame size, one port and four
ports, against 10GbE theoretical line rate. Runs as a declarative
``line_rate`` sweep through :mod:`repro.runner` — the same campaign is
reachable from the shell via ``osnt-sweep``.
"""

from conftest import emit, run_once

from repro.analysis import format_table
from repro.runner import ExperimentSpec, run_spec
from repro.testbed import RFC2544_SIZES


def _line_rate_sweep(sizes, ports=1):
    spec = ExperimentSpec(
        name=f"e1-line-rate-{ports}p",
        scenario="line_rate",
        params={"duration": "1ms", "ports": ports, "seed": 0},
        axes={"frame_size": list(sizes)},
        retries=0,
    )
    report = run_spec(spec, workers=0)
    report.require_ok()
    return [shard.result for shard in report.ok]


def test_e1_line_rate_one_port(benchmark):
    rows = run_once(benchmark, lambda: _line_rate_sweep(RFC2544_SIZES))
    emit(
        format_table(
            ["frame B", "theory Mpps", "achieved Mpps", "theory Gbps", "achieved Gbps", "efficiency"],
            [
                [
                    row["frame_size"],
                    round(row["theoretical_pps"] / 1e6, 3),
                    round(row["achieved_pps"] / 1e6, 3),
                    round(row["theoretical_goodput_bps"] / 1e9, 3),
                    round(row["achieved_goodput_bps"] / 1e9, 3),
                    f"{row['achieved_pps'] / row['theoretical_pps']:.4f}",
                ]
                for row in rows
            ],
            title="E1a: line rate vs frame size, 1 port (paper: full line rate at any size)",
        )
    )
    # The paper's claim: line rate regardless of packet size.
    assert all(row["achieved_pps"] / row["theoretical_pps"] > 0.999 for row in rows)
    # 64B must hit the canonical 14.88 Mpps.
    assert abs(rows[0]["achieved_pps"] - 14_880_952) < 20_000


def test_e1_line_rate_four_ports(benchmark):
    sizes = [64, 512, 1518]
    rows = run_once(benchmark, lambda: _line_rate_sweep(sizes, ports=4))
    emit(
        format_table(
            ["frame B", "ports", "achieved Gbps", "theory Gbps", "efficiency"],
            [
                [
                    row["frame_size"],
                    row["ports"],
                    round(row["achieved_goodput_bps"] / 1e9, 3),
                    round(row["theoretical_goodput_bps"] / 1e9, 3),
                    f"{row['achieved_pps'] / row['theoretical_pps']:.4f}",
                ]
                for row in rows
            ],
            title="E1b: aggregate line rate across all four card ports",
        )
    )
    assert all(row["achieved_pps"] / row["theoretical_pps"] > 0.999 for row in rows)
    # Four ports of 1518B frames ≈ 4 × 9.87 Gbps goodput.
    assert rows[-1]["achieved_goodput_bps"] > 39e9
