"""Simulator performance: wall-clock cost of simulated line-rate traffic.

Not a paper experiment — a regression guard for the reproduction itself.
Every experiment above runs through this kernel; if event dispatch or
the MAC pipeline slows down significantly, these numbers catch it.
Unlike the single-shot experiment benches, these run multiple rounds so
pytest-benchmark reports meaningful wall-clock statistics.
"""

import gc
from collections import deque
from time import perf_counter

from conftest import emit

from repro.hw import EthernetPort, connect
from repro.net import build_udp
from repro.osnt import OSNT
from repro.sim import Simulator
from repro.testbed.workloads import udp_template
from repro.units import ms

#: Near-future deltas (ps) shaped like the MAC/DMA/generator common
#: case: wire times and inter-frame gaps from tens of ns to ~1 µs.
MIX_DELTAS = (100, 800, 1024, 4096, 51_200, 123_456, 409_600, 819_200)

#: The wheel must beat the heap by at least this factor on the
#: schedule-fire-cancel mix (the perf regression budget enforced in CI).
WHEEL_SPEEDUP_BUDGET = 1.5


def _noop():
    return None


def _run_mix(impl, iterations, preload=4000):
    """Schedule-fire-cancel mix at a realistic queue depth.

    Per iteration (one simulated burst): eight schedules at
    ``now + small_delta``, four cancellations of older pending events,
    four fired events — net queue depth stays ~``preload``, the regime
    every line-rate experiment runs in. Returns achieved events/sec
    (schedules + cancels + fires).
    """
    sim = Simulator(event_queue=impl)
    pool = deque(sim.call_after(800 * (i + 1), _noop) for i in range(preload))
    deltas = MIX_DELTAS
    call_after = sim.call_after
    append = pool.append
    popleft = pool.popleft
    # Collect then pause the GC: leftover garbage from earlier tests
    # would otherwise trigger collections mid-measurement and swamp the
    # per-event cost being compared.
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = perf_counter()
        for i in range(iterations):
            base = deltas[i & 7]
            append(call_after(base, _noop))
            append(call_after(base + 160, _noop))
            append(call_after(base + 320, _noop))
            append(call_after(base + 480, _noop))
            append(call_after(base + 640, _noop))
            append(call_after(base + 800, _noop))
            append(call_after(base + 960, _noop))
            append(call_after(base + 1120, _noop))
            for __ in range(4):
                victim = popleft()
                if not victim.fired:
                    victim.cancel()
            sim.run(max_events=4)
        elapsed = perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return iterations * 16 / elapsed


def test_perf_raw_event_dispatch(benchmark):
    """Pure kernel: schedule/fire 50k chained events."""

    def run():
        sim = Simulator()
        remaining = [50_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.call_after(100, tick)

        sim.call_after(100, tick)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 50_000


def test_perf_line_rate_mac_pipeline(benchmark):
    """MAC + link datapath: 1 ms of 512B line-rate traffic (~2350 frames)."""

    def run():
        sim = Simulator()
        a = EthernetPort(sim, "a")
        b = EthernetPort(sim, "b")
        connect(a, b)
        count = [0]
        b.add_rx_sink(lambda p: count.__setitem__(0, count[0] + 1))
        from repro.osnt.generator import PortGenerator, TemplateSource
        from repro.hw import TimestampUnit

        generator = PortGenerator(sim, a, TimestampUnit(sim))
        generator.configure(TemplateSource(build_udp(frame_size=512)), duration_ps=ms(1))
        generator.start()
        sim.run()
        return count[0]

    frames = benchmark(run)
    assert frames > 2000


def test_perf_schedule_cancel_fire_mix(benchmark):
    """The mix every experiment runs: schedule, cancel, fire at depth."""
    rate = benchmark.pedantic(
        lambda: _run_mix("wheel", 6_000), rounds=3, iterations=1
    )
    emit(f"wheel schedule-cancel-fire mix: {rate:,.0f} events/sec")
    assert rate > 0


def test_perf_schedule_drain(benchmark):
    """Bulk load then full drain: 30k events scheduled, then fired."""

    def run():
        sim = Simulator()
        for i in range(30_000):
            sim.call_after((i * 7919) % 1_000_000, _noop)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 30_000


def test_perf_cancel_heavy_drain(benchmark):
    """Cancellation-heavy load (OpenFlow table churn shape)."""

    def run():
        sim = Simulator()
        events = [sim.call_after((i * 613) % 500_000, _noop) for i in range(20_000)]
        for event in events[::2]:
            event.cancel()
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 10_000


def test_perf_wheel_vs_heap_budget():
    """Enforce the regression budget: wheel >= 1.5x heap on the mix.

    Interleaved best-of-3 rounds per implementation damp scheduler
    noise; the asserted ratio is machine-independent.
    """
    heap_best = wheel_best = 0.0
    for __ in range(3):
        heap_best = max(heap_best, _run_mix("heap", 5_000))
        wheel_best = max(wheel_best, _run_mix("wheel", 5_000))
    ratio = wheel_best / heap_best
    emit(
        f"schedule-cancel-fire mix @ depth 4000: heap {heap_best:,.0f} ev/s, "
        f"wheel {wheel_best:,.0f} ev/s, speedup {ratio:.2f}x "
        f"(budget >= {WHEEL_SPEEDUP_BUDGET}x)"
    )
    assert ratio >= WHEEL_SPEEDUP_BUDGET, (
        f"timing wheel regressed: only {ratio:.2f}x vs heap baseline "
        f"(budget {WHEEL_SPEEDUP_BUDGET}x)"
    )


def test_perf_full_tester_capture_path(benchmark):
    """Whole card: generate, timestamp, filter, DMA, host-deliver."""

    def run():
        sim = Simulator()
        tester = OSNT(sim)
        connect(tester.port(0), tester.port(1))
        monitor = tester.monitor(1)
        monitor.start_capture(snaplen=64)
        generator = tester.generator(0)
        generator.load_template(udp_template(512))
        generator.set_load(0.5).embed_timestamps().for_duration(ms(1))
        generator.start()
        sim.run()
        return monitor.captured_count

    captured = benchmark(run)
    assert captured > 1000
