"""Simulator performance: wall-clock cost of simulated line-rate traffic.

Not a paper experiment — a regression guard for the reproduction itself.
Every experiment above runs through this kernel; if event dispatch or
the MAC pipeline slows down significantly, these numbers catch it.
Unlike the single-shot experiment benches, these run multiple rounds so
pytest-benchmark reports meaningful wall-clock statistics.
"""

from repro.hw import EthernetPort, connect
from repro.net import build_udp
from repro.osnt import OSNT
from repro.sim import Simulator
from repro.testbed.workloads import udp_template
from repro.units import ms


def test_perf_raw_event_dispatch(benchmark):
    """Pure kernel: schedule/fire 50k chained events."""

    def run():
        sim = Simulator()
        remaining = [50_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.call_after(100, tick)

        sim.call_after(100, tick)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 50_000


def test_perf_line_rate_mac_pipeline(benchmark):
    """MAC + link datapath: 1 ms of 512B line-rate traffic (~2350 frames)."""

    def run():
        sim = Simulator()
        a = EthernetPort(sim, "a")
        b = EthernetPort(sim, "b")
        connect(a, b)
        count = [0]
        b.add_rx_sink(lambda p: count.__setitem__(0, count[0] + 1))
        from repro.osnt.generator import PortGenerator, TemplateSource
        from repro.hw import TimestampUnit

        generator = PortGenerator(sim, a, TimestampUnit(sim))
        generator.configure(TemplateSource(build_udp(frame_size=512)), duration_ps=ms(1))
        generator.start()
        sim.run()
        return count[0]

    frames = benchmark(run)
    assert frames > 2000


def test_perf_full_tester_capture_path(benchmark):
    """Whole card: generate, timestamp, filter, DMA, host-deliver."""

    def run():
        sim = Simulator()
        tester = OSNT(sim)
        connect(tester.port(0), tester.port(1))
        monitor = tester.monitor(1)
        monitor.start_capture(snap_bytes=64)
        generator = tester.generator(0)
        generator.load_template(udp_template(512))
        generator.set_load(0.5).embed_timestamps().for_duration(ms(1))
        generator.start()
        sim.run()
        return monitor.captured_count

    captured = benchmark(run)
    assert captured > 1000
