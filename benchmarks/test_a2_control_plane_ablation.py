"""A2 (ablation) — control-plane implementation parameters.

The paper's Part II promises to "elaborate on the impact of the control
plane implementation on the network performance". Two ablations over
the switch-firmware knobs DESIGN.md calls out:

* rule-install latency vs the firmware/TCAM delay split, and
* flow_mod latency inflation under packet-in load (shared management
  CPU) plus expiry-scan coarseness.
"""

from conftest import emit, run_once

from repro.analysis import format_table
from repro.devices import SwitchProfile
from repro.oflops import ModuleRunner, OflopsContext
from repro.oflops.modules import ControlInteractionModule, FlowExpiryModule
from repro.testbed import measure_flowmod_latency
from repro.units import us

DELAY_SPLITS = [
    ("fast fw / fast table", us(5), us(10)),
    ("fast fw / slow table", us(5), us(200)),
    ("slow fw / fast table", us(100), us(10)),
    ("slow fw / slow table", us(100), us(200)),
]


def test_a2a_delay_split_ablation(benchmark):
    def sweep():
        results = []
        for label, firmware, write in DELAY_SPLITS:
            result = measure_flowmod_latency(
                n_rules=16,
                barrier_mode="spec",
                firmware_delay_ps=firmware,
                table_write_ps=write,
            )
            results.append((label, firmware, write, result))
        return results

    results = run_once(benchmark, sweep)
    emit(
        format_table(
            ["firmware profile", "fw us/msg", "write us/rule", "all rules live us", "us per rule"],
            [
                [
                    label,
                    firmware / 1e6,
                    write / 1e6,
                    round(result.data_plane_complete_ps / 1e6, 1),
                    round(result.data_plane_complete_ps / 1e6 / result.n_rules, 1),
                ]
                for label, firmware, write, result in results
            ],
            title="A2a: install completion vs firmware/TCAM delay split (16 rules)",
        )
    )
    by_label = {label: result for label, __, __, result in results}
    # Install time is governed by the *slower* stage (pipeline bottleneck):
    fast_fast = by_label["fast fw / fast table"].data_plane_complete_ps
    fast_slow = by_label["fast fw / slow table"].data_plane_complete_ps
    slow_fast = by_label["slow fw / fast table"].data_plane_complete_ps
    slow_slow = by_label["slow fw / slow table"].data_plane_complete_ps
    assert fast_fast < fast_slow
    assert fast_fast < slow_fast
    # Both slow stages together are no faster than either alone.
    assert slow_slow >= max(fast_slow, slow_fast) - us(50)


def test_a2b_packet_in_interference(benchmark):
    def run():
        profile = SwitchProfile(firmware_delay_ps=us(30), table_write_ps=us(20))
        return ModuleRunner(OflopsContext(profile=profile)).run(
            ControlInteractionModule()
        )

    result = run_once(benchmark, run)
    emit(
        format_table(
            ["condition", "install latency us"],
            [
                ["quiet switch", round(result["quiet_install_us"], 1)],
                ["under packet-in storm", round(result["loaded_install_us"], 1)],
            ],
            title=(
                "A2b: rule-install latency vs management-CPU contention "
                f"({result['packet_ins_during_run']} packet-ins in flight)"
            ),
        )
    )
    assert result["inflation"] > 2.0


def test_a2c_expiry_scan_coarseness(benchmark):
    result = run_once(
        benchmark,
        lambda: ModuleRunner().run(FlowExpiryModule(timeouts_s=[1, 2, 3])),
    )
    emit(
        format_table(
            ["configured s", "observed s", "lateness ms"],
            [
                [row["configured_s"], round(row["observed_s"], 3), round(row["lateness_ms"], 1)]
                for row in result["expiries"]
            ],
            title="A2c: hard-timeout expiry vs the firmware's 1 s scan period",
        )
    )
    # Lateness is bounded by the scan period, never negative.
    for row in result["expiries"]:
        assert 0 <= row["lateness_ms"] <= 1_001
