"""Perf: the sweep runner's worker pool must actually overlap shards.

Two microbenchmarks of :class:`repro.runner.SweepRunner`:

* a wall-clock-bound 16-shard sweep (the ``sleep`` scenario) — pool
  scheduling must overlap shard wall time regardless of core count, so
  the ≥1.5x speedup at 4 workers is asserted unconditionally;
* a CPU-bound 16-shard ``line_rate`` sweep — real simulation work,
  where parallel speedup needs real cores, so the assertion is gated on
  ``os.cpu_count()``.

Both also assert the merged documents are bit-identical across worker
counts — speed must never change results.
"""

import os
import time

from conftest import emit, run_once

from repro.analysis import format_table
from repro.runner import ExperimentSpec, run_spec

SHARDS = 16
WORKERS = 4


def _timed_run(spec, workers):
    start = time.monotonic()
    report = run_spec(spec, workers=workers)
    elapsed = time.monotonic() - start
    report.require_ok()
    return elapsed, report


def test_perf_pool_overlaps_wallclock(benchmark):
    spec = ExperimentSpec(
        name="perf-sleep",
        scenario="sleep",
        params={"duration_s": 0.2},
        repeats=SHARDS,
        retries=1,
        timeout_s=30.0,
    )

    def compare():
        serial, serial_report = _timed_run(spec, workers=1)
        parallel, parallel_report = _timed_run(spec, workers=WORKERS)
        assert serial_report.merged_json() == parallel_report.merged_json()
        return serial, parallel

    serial, parallel = run_once(benchmark, compare)
    speedup = serial / parallel
    emit(
        format_table(
            ["workers", "shards", "wall s", "speedup"],
            [
                [1, SHARDS, f"{serial:.2f}", "1.00x"],
                [WORKERS, SHARDS, f"{parallel:.2f}", f"{speedup:.2f}x"],
            ],
            title="sweep runner: 16 wall-clock-bound shards (0.2s each)",
        )
    )
    # Scheduling overlap is core-count independent: 16 x 0.2s of sleep
    # must not take 3.2s when four workers run at once.
    assert speedup >= 1.5, f"pool gave only {speedup:.2f}x on wall-clock-bound shards"


def test_perf_parallel_simulation_speedup(benchmark):
    spec = ExperimentSpec(
        name="perf-line-rate",
        scenario="line_rate",
        params={"frame_size": 64, "duration": "1ms", "seed": 0},
        repeats=SHARDS,
        retries=1,
        timeout_s=120.0,
    )

    def compare():
        serial, serial_report = _timed_run(spec, workers=1)
        parallel, parallel_report = _timed_run(spec, workers=WORKERS)
        assert serial_report.merged_json() == parallel_report.merged_json()
        return serial, parallel

    serial, parallel = run_once(benchmark, compare)
    speedup = serial / parallel
    cores = os.cpu_count() or 1
    emit(
        format_table(
            ["workers", "shards", "wall s", "speedup"],
            [
                [1, SHARDS, f"{serial:.2f}", "1.00x"],
                [WORKERS, SHARDS, f"{parallel:.2f}", f"{speedup:.2f}x"],
            ],
            title=f"sweep runner: 16 CPU-bound line-rate shards ({cores} cores)",
        )
    )
    # CPU-bound speedup needs real cores; don't assert it on tiny boxes.
    if cores >= 4:
        assert speedup >= 1.5, f"4 workers gave only {speedup:.2f}x on {cores} cores"
    elif cores >= 2:
        assert speedup >= 1.2, f"4 workers gave only {speedup:.2f}x on {cores} cores"
