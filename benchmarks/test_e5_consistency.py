"""E5 — demo Part II: "forwarding consistency during large flow table
updates" (paper §2).

Regenerates: packets delivered to the *old* destination during/after a
burst rewrite of the table, per firmware and burst size.
"""

from conftest import emit, run_once

from repro.analysis import format_table
from repro.testbed import measure_forwarding_consistency

RULE_COUNTS = [8, 32]


def test_e5_forwarding_consistency(benchmark):
    def sweep():
        results = []
        for mode in ("spec", "eager"):
            for n_rules in RULE_COUNTS:
                results.append(
                    measure_forwarding_consistency(n_rules=n_rules, barrier_mode=mode)
                )
        return results

    results = run_once(benchmark, sweep)
    emit(
        format_table(
            ["firmware", "rules", "barrier us", "stale in update", "stale after barrier", "transition us"],
            [
                [
                    result.barrier_mode,
                    result.n_rules,
                    round(result.barrier_latency_ps / 1e6, 1),
                    result.stale_during_update,
                    result.stale_after_barrier,
                    round(result.transition_span_ps / 1e6, 1),
                ]
                for result in results
            ],
            title="E5: forwarding consistency during table update bursts (demo Part II)",
        )
    )
    spec = [r for r in results if r.barrier_mode == "spec"]
    eager = [r for r in results if r.barrier_mode == "eager"]
    # A spec-honest switch is consistent once the barrier returns.
    assert all(r.stale_after_barrier == 0 for r in spec)
    # The eager switch forwards stale traffic after claiming completion,
    # and more of it for larger bursts.
    staleness = [r.stale_after_barrier for r in eager]
    assert all(count > 0 for count in staleness)
    assert staleness == sorted(staleness)
    # The transition itself (update applied rule-by-rule) always spans
    # real time; updates are never atomic on either firmware.
    assert all(r.transition_span_ps > 0 for r in results)
