"""Datapath performance: burst vs per-packet on the E1 hot loop.

Not a paper experiment — the regression guard for the burst datapath
(:mod:`repro.hw.burst`). E1's worst case (64-byte frames at line rate)
is the workload the batching exists for: ~14,880 frames per simulated
millisecond, each of which costs several events on the per-packet path
and a handful of arithmetic updates on the burst path. If the burst
controller loses its edge — an accidental fallback to the stock
processes, a per-frame allocation creeping into the bulk lane — the
enforced budget below catches it in CI.
"""

import gc
import os
from time import perf_counter

from conftest import emit

from repro.hw import connect
from repro.osnt import OSNT
from repro.sim import Simulator
from repro.testbed.workloads import udp_template
from repro.units import ms

#: The burst datapath must move at least this many times more simulated
#: packets per wall-second than the per-packet processes on E1's
#: 64-byte line-rate loop (the perf regression budget enforced in CI).
#: Measured headroom is well above 100x; 10x keeps CI immune to noisy
#: shared runners while still catching any fallback to per-packet work.
DATAPATH_SPEEDUP_BUDGET = 10.0


def _run_e1(impl, duration_ps=ms(1)):
    """One E1-shaped loopback run; returns simulated packets/wall-sec.

    64-byte frames at full line rate through generator, TX MAC, link
    and monitor, telemetry off — the exact hot loop the burst datapath
    batches. The implementation is chosen via ``REPRO_DATAPATH`` (read
    at generator construction), mirroring ``REPRO_EVENT_QUEUE``.
    """
    previous = os.environ.get("REPRO_DATAPATH")
    os.environ["REPRO_DATAPATH"] = impl
    try:
        sim = Simulator()
        tester = OSNT(sim)
        connect(tester.port(0), tester.port(1))
        monitor = tester.monitor(1)
        generator = tester.generator(0)
        generator.load_template(udp_template(64))
        generator.for_duration(duration_ps)
    finally:
        if previous is None:
            os.environ.pop("REPRO_DATAPATH", None)
        else:
            os.environ["REPRO_DATAPATH"] = previous
    # Collect then pause the GC so leftover garbage from earlier tests
    # doesn't trigger collections mid-measurement.
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = perf_counter()
        generator.start()
        sim.run()
        elapsed = perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    sent = generator.stats.sent
    assert sent > 14_000, f"E1 run only sent {sent} frames"
    assert monitor.rx_packets == sent
    return sent / elapsed


def test_perf_datapath_budget():
    """Enforce the regression budget: burst >= 10x packet on E1.

    Interleaved best-of-3 rounds per implementation damp scheduler
    noise; the asserted ratio is machine-independent.
    """
    packet_best = burst_best = 0.0
    for __ in range(3):
        packet_best = max(packet_best, _run_e1("packet"))
        burst_best = max(burst_best, _run_e1("burst"))
    ratio = burst_best / packet_best
    emit(
        f"E1 64B line-rate loop: packet {packet_best:,.0f} pkt/s, "
        f"burst {burst_best:,.0f} pkt/s, speedup {ratio:.1f}x "
        f"(budget >= {DATAPATH_SPEEDUP_BUDGET}x)"
    )
    assert ratio >= DATAPATH_SPEEDUP_BUDGET, (
        f"burst datapath regressed: only {ratio:.1f}x vs per-packet "
        f"baseline (budget {DATAPATH_SPEEDUP_BUDGET}x)"
    )
