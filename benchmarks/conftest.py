"""Shared helpers for the experiment benchmarks.

Each benchmark regenerates one experiment from the paper (see
DESIGN.md §4 and EXPERIMENTS.md): it runs the measurement once under
``benchmark.pedantic`` (the interesting cost is simulated work, not
wall-clock variance), prints the paper-style table, and asserts the
qualitative shape so a regression that changes *who wins* fails loudly.

Run with:  pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import sys


def run_once(benchmark, fn):
    """Benchmark a measurement exactly once and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def emit(text: str) -> None:
    """Print a result table so it survives pytest's capture with -s."""
    sys.stdout.write("\n" + text + "\n")
