"""E4 — demo Part II: "a test which measures the latency to modify the
entries of the switch flow table through control and data plane
measurements" (paper §2).

Regenerates: barrier-reported vs data-plane-observed install latency,
per burst size, for a spec-honest and an eager (lying) switch firmware.
"""

from conftest import emit, run_once

from repro.analysis import format_table
from repro.testbed import measure_flowmod_latency

RULE_COUNTS = [8, 32, 64]


def test_e4_control_vs_data_plane(benchmark):
    def sweep():
        results = []
        for mode in ("spec", "eager"):
            for n_rules in RULE_COUNTS:
                results.append(measure_flowmod_latency(n_rules=n_rules, barrier_mode=mode))
        return results

    results = run_once(benchmark, sweep)
    emit(
        format_table(
            ["firmware", "rules", "barrier us", "first rule us", "all rules us", "barrier error us"],
            [
                [
                    result.barrier_mode,
                    result.n_rules,
                    round(result.control_latency_ps / 1e6, 1),
                    round(min(result.rule_activation_ps) / 1e6, 1),
                    round(result.data_plane_complete_ps / 1e6, 1),
                    round(result.control_says_done_before_data_ps / 1e6, 1),
                ]
                for result in results
            ],
            title="E4: flow-table update latency, control vs data plane (demo Part II)",
        )
    )
    spec = [r for r in results if r.barrier_mode == "spec"]
    eager = [r for r in results if r.barrier_mode == "eager"]
    # Data-plane completion scales with burst size on both firmwares.
    for series in (spec, eager):
        done = [r.data_plane_complete_ps for r in series]
        assert done == sorted(done)
        assert done[-1] > 3 * done[0]
    # The honest barrier tracks the data plane to within measurement
    # resolution (one probe cycle: n_rules × 2 µs between probes of the
    # same rule); the eager one underestimates by far more than that,
    # and its error grows with the burst size.
    from repro.units import us

    for result in spec:
        probe_cycle_ps = result.n_rules * us(2)
        assert result.control_says_done_before_data_ps < probe_cycle_ps
    eager_errors = [r.control_says_done_before_data_ps for r in eager]
    assert all(err > us(300) for err in eager_errors)
    assert eager_errors == sorted(eager_errors)


def test_e4_per_rule_activation_series(benchmark):
    result = run_once(
        benchmark, lambda: measure_flowmod_latency(n_rules=16, barrier_mode="spec")
    )
    activations_us = [a / 1e6 for a in result.rule_activation_ps]
    steps = [b - a for a, b in zip(activations_us, activations_us[1:])]
    emit(
        format_table(
            ["rule #", "activation us"],
            [[index, round(value, 1)] for index, value in enumerate(activations_us)],
            title="E4b: per-rule data-plane activation (serial TCAM writes)",
        )
    )
    # Rules come alive one by one, spaced by roughly the table-write cost.
    assert activations_us == sorted(activations_us)
    assert min(steps) > 0.03  # strictly serial
