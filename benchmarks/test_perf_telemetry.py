"""Telemetry overhead: tracing and metrics must stay cheap.

Not a paper experiment — a regression guard for the telemetry
subsystem. The contract (DESIGN.md, docs/API.md "Telemetry & Tracing")
is that a live trace can stay attached under line-rate workloads, so
this file *asserts a budget*: enabled kernel tracing may cost at most
15% wall-clock over an untraced run of the same 50k-event workload.

Measured headroom when the budget was set (2026-08): 3–8% overhead
with the C-level ring appenders (min of 7 interleaved reps). The
hooks are raw ``deque.append`` bound methods handed to the kernel by
``Tracer.attach_kernel`` — no Python frame per record — so the budget
has ~2x margin; if it trips, someone put Python back on the hot path.

Methodology notes baked into the harness below:

* base/traced reps are *interleaved* so machine drift hits both sides,
* ``gc.collect()`` before every rep so collection debt from a previous
  rep's ring contents is not billed to the next rep,
* ``min`` of the reps, which for a deterministic workload estimates
  the noise floor rather than averaging the noise in,
* a bounded ring (4096 slots) so the trace heap reaches steady state
  instead of growing for the whole run.
"""

import gc
import time

from repro.sim import Simulator
from repro.telemetry import LogLinearHistogram, MetricsRegistry, Tracer

EVENTS = 50_000
REPS = 7
#: The agreed tracing budget: traced/base wall-clock ratio ceiling.
TRACE_BUDGET = 1.15


def _chained_events(tracer):
    """The test_perf_kernel dispatch workload, optionally traced."""
    sim = Simulator()
    if tracer is not None:
        sim.set_tracer(tracer)
    remaining = [EVENTS]

    def tick():
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.call_after(100, tick)

    sim.call_after(100, tick)
    sim.run()
    assert sim.events_processed == EVENTS
    return sim


def _timed(tracer_factory):
    gc.collect()
    start = time.perf_counter()
    _chained_events(tracer_factory())
    return time.perf_counter() - start


def test_tracing_overhead_within_budget():
    base_times, traced_times = [], []
    for _ in range(REPS):
        base_times.append(_timed(lambda: None))
        traced_times.append(_timed(lambda: Tracer(capacity=4096)))
    base, traced = min(base_times), min(traced_times)
    ratio = traced / base
    print(
        f"\nkernel tracing: base {base * 1e3:.1f} ms, "
        f"traced {traced * 1e3:.1f} ms, ratio {ratio:.3f} "
        f"(budget {TRACE_BUDGET})"
    )
    assert ratio < TRACE_BUDGET, (
        f"enabled tracing costs {(ratio - 1) * 100:.1f}% over an untraced "
        f"run; the agreed budget is {(TRACE_BUDGET - 1) * 100:.0f}%"
    )


def test_disabled_tracing_is_near_free():
    """Attach-then-detach must leave only the None checks behind."""
    detached_times, never_times = [], []
    for _ in range(REPS):
        never_times.append(_timed(lambda: None))
        gc.collect()
        start = time.perf_counter()
        sim = Simulator()
        sim.set_tracer(Tracer(capacity=64))
        sim.set_tracer(None)
        remaining = [EVENTS]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.call_after(100, tick)

        sim.call_after(100, tick)
        sim.run()
        detached_times.append(time.perf_counter() - start)
    ratio = min(detached_times) / min(never_times)
    print(f"\ndetached tracer ratio vs never-attached: {ratio:.3f}")
    assert ratio < 1.05


def test_histogram_record_throughput(benchmark):
    """O(1) record: 100k observations through the log-linear histogram."""
    values = [(i * 2_654_435_761) % 1_000_000_000 for i in range(100_000)]

    def run():
        histogram = LogLinearHistogram(unit="ps")
        record = histogram.record
        for value in values:
            record(value)
        return histogram.count

    count = benchmark(run)
    assert count == len(values)


def test_snapshot_cost_scales_with_registry(benchmark):
    """One snapshot of a 100-metric registry stays microseconds-cheap."""
    registry = MetricsRegistry("card")
    for index in range(80):
        registry.counter(f"c{index}").inc(index)
    for index in range(15):
        registry.gauge(f"g{index}", source=lambda index=index: index * 1.5)
    for index in range(5):
        histogram = registry.histogram(f"h{index}", unit="ps")
        for value in range(0, 10_000, 7):
            histogram.record(value)

    snapshot = benchmark(registry.snapshot)
    assert len(snapshot) == 100
