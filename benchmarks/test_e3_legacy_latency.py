"""E3 — demo Part I: "accurately measure the packet-processing latency
of a legacy switch under different load conditions" (paper §2).

Regenerates: latency/jitter vs offered load and frame size through the
simulated commercial L2 switch, measured with embedded TX timestamps.
"""

from conftest import emit, run_once

from repro.analysis import format_table
from repro.testbed import measure_legacy_switch_latency
from repro.units import ms

LOADS = [0.25, 0.5, 0.75, 0.95, 1.1]
SIZES = [64, 512, 1518]


def test_e3_latency_vs_load(benchmark):
    rows = run_once(
        benchmark,
        lambda: measure_legacy_switch_latency(
            loads=LOADS, frame_sizes=SIZES, duration_ps=ms(2)
        ),
    )
    emit(
        format_table(
            ["frame B", "load", "probes", "mean us", "p50 us", "p99 us", "max us", "jitter us", "drops"],
            [
                [
                    row.frame_size,
                    f"{row.load:.2f}",
                    row.packets,
                    round(row.mean_us, 3),
                    round(row.p50_us, 3),
                    round(row.p99_us, 3),
                    round(row.max_us, 3),
                    round(row.jitter_us, 3),
                    row.switch_drops,
                ]
                for row in rows
            ],
            title="E3: legacy switch latency under load (demo Part I)",
        )
    )
    by_size = {}
    for row in rows:
        by_size.setdefault(row.frame_size, []).append(row)
    for size, series in by_size.items():
        means = [row.mean_us for row in series]
        # Latency rises with load; overload is dramatically worse.
        assert means[0] < means[-2] < means[-1]
        assert means[-1] > 5 * means[0]
    # Store-and-forward baseline grows with frame size at light load.
    light = {row.frame_size: row.mean_us for row in rows if row.load == 0.25}
    assert light[64] < light[512] < light[1518]


def test_e3b_imix_per_size_breakdown(benchmark):
    """One IMIX run yields the full per-size latency table — the style of
    measurement per-packet hardware timestamps make possible."""
    from repro.testbed import measure_imix_latency

    rows = run_once(benchmark, lambda: measure_imix_latency(load=0.5, duration_ps=ms(2)))
    emit(
        format_table(
            ["frame B", "packets", "mean us", "p99 us"],
            [
                [row.frame_size, row.packets, round(row.mean_us, 3), round(row.p99_us, 3)]
                for row in rows
            ],
            title="E3b: per-size latency from a single IMIX stream (load 0.5)",
        )
    )
    assert [row.frame_size for row in rows] == [64, 576, 1518]
    # IMIX ratios survive the trip: 7:4:1 by packet count.
    counts = [row.packets for row in rows]
    assert abs(counts[0] / counts[1] - 7 / 4) < 0.15
    # Store-and-forward baseline grows with size even inside one stream.
    means = [row.mean_us for row in rows]
    assert means == sorted(means)
