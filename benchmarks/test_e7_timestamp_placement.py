"""E7 — "The design associates packets with a 64-bit timestamp on
receipt by the MAC module, thus minimising queueing noise" (paper §1).

Ablation: the same switch-latency measurement taken (a) from the
MAC-adjacent hardware RX timestamps and (b) from host arrival times
behind the DMA path. The hardware numbers stay clean under capture
load; the host numbers absorb the capture path's queueing.
"""

from conftest import emit, run_once

from repro.analysis import format_table
from repro.testbed import measure_timestamp_placement
from repro.units import ms

LOADS = [0.2, 0.5, 0.8]


def test_e7_mac_vs_host_timestamps(benchmark):
    rows = run_once(
        benchmark, lambda: measure_timestamp_placement(loads=LOADS, duration_ps=ms(2))
    )
    emit(
        format_table(
            ["load", "HW mean us", "HW std us", "host mean us", "host std us", "host noise ×"],
            [
                [
                    f"{row.load:.1f}",
                    round(row.hw_mean_us, 3),
                    round(row.hw_std_us, 4),
                    round(row.host_mean_us, 3),
                    round(row.host_std_us, 3),
                    round(row.host_error_inflation, 1),
                ]
                for row in rows
            ],
            title="E7: latency measured at the MAC vs at the host (queueing noise)",
        )
    )
    # Hardware-stamped statistics are stable across capture loads...
    hw_stds = [row.hw_std_us for row in rows]
    assert max(hw_stds) < 0.1
    # ...while host-side spread explodes as the DMA path congests.
    host_stds = [row.host_std_us for row in rows]
    assert host_stds == sorted(host_stds)
    assert rows[-1].host_error_inflation > 100
