"""Observability overhead: spans and the profiler must stay cheap.

Not a paper experiment — the regression guard for ``repro.obs``. The
contract (ISSUE acceptance criteria, docs/OBSERVABILITY.md) is:

* an armed :class:`~repro.obs.SpanRecorder` may add at most 15%
  wall-clock to the E3 legacy-latency workload it instruments;
* a *disarmed* recorder (armed once, then disarmed — the state every
  simulator is in when observability is off) must be near-free: the
  hot-path hook is one attribute load + ``None`` check per site, the
  same pattern as the kernel tracer, so the allowed ratio matches
  ``test_disabled_tracing_is_near_free``.

Methodology mirrors ``test_perf_telemetry``: interleaved reps so
machine drift hits both sides, ``gc.collect()`` before each rep, and
``min`` of the reps (for a deterministic workload that estimates the
noise floor rather than averaging noise in).
"""

import gc
import time

from repro.obs import SimProfiler, SpanRecorder
from repro.sim import Simulator
from repro.testbed.scenarios import legacy_latency_point

REPS = 5
#: Armed span recording budget over the instrumented E3 workload.
SPAN_BUDGET = 1.15
#: Disarmed hooks leave only None checks behind (same bar as tracing).
DISARMED_BUDGET = 1.05

_WORKLOAD = dict(frame_size=256, load=0.5, duration_ps=500_000_000)  # 0.5 ms


def _timed_point(arm=None):
    """One E3 latency point, optionally arming observability first."""
    gc.collect()
    hook = None
    if arm is not None:
        from repro.sim import add_creation_hook

        add_creation_hook(arm)
        hook = arm
    try:
        start = time.perf_counter()
        row, _ = legacy_latency_point(**_WORKLOAD)
        elapsed = time.perf_counter() - start
    finally:
        if hook is not None:
            from repro.sim import remove_creation_hook

            remove_creation_hook(hook)
    assert row.packets > 0
    return elapsed


def test_armed_span_recording_within_budget():
    spans = SpanRecorder()
    base_times, armed_times = [], []
    for _ in range(REPS):
        base_times.append(_timed_point())
        armed_times.append(_timed_point(arm=lambda sim: spans.arm(sim)))
    base, armed = min(base_times), min(armed_times)
    ratio = armed / base
    print(
        f"\nspan recording: base {base * 1e3:.1f} ms, "
        f"armed {armed * 1e3:.1f} ms, ratio {ratio:.3f} "
        f"(budget {SPAN_BUDGET}); {spans.started} spans started"
    )
    assert spans.started > 0
    assert ratio < SPAN_BUDGET, (
        f"armed span recording costs {(ratio - 1) * 100:.1f}% over an "
        f"unobserved run; the agreed budget is {(SPAN_BUDGET - 1) * 100:.0f}%"
    )


def test_disarmed_recorder_is_near_free():
    """Arm-then-disarm must leave only the None checks behind.

    Measured on the deterministic chained-dispatch kernel loop (the
    same workload ``test_disabled_tracing_is_near_free`` uses) rather
    than the full E3 scenario: the disarmed cost lives in the kernel's
    dispatch loop and the datapath hook sites, and the tight loop
    resolves a 1–5% delta where the scenario's wall time cannot.
    """
    EVENTS = 50_000

    def chained(disarm_first):
        sim = Simulator()
        if disarm_first:
            SpanRecorder().arm(sim).disarm()
            SimProfiler().attach(sim).detach()
        remaining = [EVENTS]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.call_after(100, tick)

        sim.call_after(100, tick)
        sim.run()
        assert sim.events_processed == EVENTS

    never_times, disarmed_times = [], []
    for _ in range(REPS + 2):
        gc.collect()
        start = time.perf_counter()
        chained(False)
        never_times.append(time.perf_counter() - start)
        gc.collect()
        start = time.perf_counter()
        chained(True)
        disarmed_times.append(time.perf_counter() - start)
    ratio = min(disarmed_times) / min(never_times)
    print(f"\ndisarmed observability ratio vs never-armed: {ratio:.3f}")
    assert ratio < DISARMED_BUDGET


def test_profiler_dispatch_overhead_is_bounded():
    """The profiler times every event; keep it within 2x on a raw
    dispatch loop (it exists for diagnosis, not production runs —
    but runaway per-event cost would make it useless on big sweeps)."""
    EVENTS = 30_000

    def chained(profiler):
        sim = Simulator()
        if profiler is not None:
            profiler.attach(sim)
        remaining = [EVENTS]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.call_after(100, tick)

        sim.call_after(100, tick)
        sim.run()
        if profiler is not None:
            profiler.detach()
        assert sim.events_processed == EVENTS

    base_times, profiled_times = [], []
    for _ in range(REPS):
        gc.collect()
        start = time.perf_counter()
        chained(None)
        base_times.append(time.perf_counter() - start)
        gc.collect()
        profiler = SimProfiler()
        start = time.perf_counter()
        chained(profiler)
        profiled_times.append(time.perf_counter() - start)
    ratio = min(profiled_times) / min(base_times)
    print(f"\nprofiler dispatch ratio: {ratio:.3f}")
    assert profiler.events == EVENTS
    assert ratio < 2.0
