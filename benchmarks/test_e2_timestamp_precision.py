"""E2 — "sub-µsec time precision in traffic generation and capture,
corrected using an external GPS device"; "timestamp resolution is
6.25 nsec" (paper §1).

Regenerates: (a) inter-departure precision, OSNT vs a software
generator; (b) clock error over time, free-running vs GPS-disciplined;
(c) the timestamp quantisation table.
"""

from conftest import emit, run_once

from repro.analysis import format_table
from repro.hw import TICK_PS, TimestampUnit
from repro.sim import Simulator
from repro.testbed import measure_clock_error, measure_idt_precision
from repro.units import us


def test_e2a_idt_precision_vs_software(benchmark):
    rows = run_once(
        benchmark, lambda: measure_idt_precision(us(20), packet_count=500)
    )
    emit(
        format_table(
            ["generator", "target ns", "mean gap ns", "gap stddev ns", "worst error ns"],
            [
                [
                    row.generator,
                    round(row.target_gap_ns, 1),
                    round(row.mean_gap_ns, 2),
                    round(row.gap_std_ns, 2),
                    round(row.worst_error_ns, 2),
                ]
                for row in rows
            ],
            title="E2a: 20 µs inter-departure pacing, hardware vs software",
        )
    )
    osnt = next(row for row in rows if row.generator == "osnt")
    software = next(row for row in rows if row.generator == "software")
    assert osnt.gap_std_ns == 0.0  # hardware pacing is exact
    assert software.gap_std_ns > 100  # host stack: µs-scale jitter
    assert software.worst_error_ns > 1_000  # and multi-µs excursions


def test_e2b_gps_discipline(benchmark):
    rows = run_once(benchmark, lambda: measure_clock_error(horizon_s=10))
    table = {}
    for row in rows:
        table.setdefault(row.after_seconds, {})[row.mode] = row.abs_error_ns
    emit(
        format_table(
            ["t (s)", "free-running |err| ns", "GPS-disciplined |err| ns"],
            [
                [second, round(modes["free-running"], 1), round(modes["gps-disciplined"], 1)]
                for second, modes in sorted(table.items())
            ],
            title="E2b: clock error, 30 ppm oscillator, with/without GPS PPS",
        )
    )
    final = table[max(table)]
    assert final["free-running"] > 100_000  # drifts off by >100 µs
    assert final["gps-disciplined"] < 1_000  # the paper's sub-µs claim


def test_e2c_timestamp_quantisation(benchmark):
    def quantisation_rows():
        sim = Simulator()
        unit = TimestampUnit(sim)
        rows = []
        for true_ps in (0, 3_000, 6_250, 10_000, 12_499, 12_500, 1_000_000):
            sim_local = Simulator()
            unit_local = TimestampUnit(sim_local)
            sim_local.run(until=true_ps)
            stamped = unit_local.now_ps()
            rows.append((true_ps, stamped, true_ps - stamped))
        return rows

    rows = run_once(benchmark, quantisation_rows)
    emit(
        format_table(
            ["true time ps", "stamped ps", "quantisation error ps"],
            [list(row) for row in rows],
            title=f"E2c: 64-bit timestamp quantisation (tick = {TICK_PS} ps = 6.25 ns)",
        )
    )
    # Error is bounded by one 6.25 ns tick and never negative.
    assert all(0 <= err < TICK_PS for __, __, err in rows)
