"""Traffic-model performance: burst trains must ride the burst lane.

Not a paper experiment — the regression guard for the traffic pattern
library's datapath eligibility. A :class:`BurstTrain` with constant
intra-burst spacing publishes a closed-form ``train_profile``, so the
burst datapath advances it in whole-window arithmetic just like the
constant-rate E1 loop. If the eligibility audit ever stops recognizing
the profile — a signature drift, an accidental per-frame fallback — the
train's throughput collapses to per-packet speed and the budget below
catches it in CI.
"""

import gc
import os
from time import perf_counter

from conftest import emit

from repro.hw import connect
from repro.osnt import OSNT
from repro.sim import Simulator
from repro.testbed.workloads import udp_template
from repro.units import ms

#: A dense burst train (94% load) on the burst datapath must move at
#: least half the simulated packets per wall-second that the plain
#: constant-rate E1 loop does: the train adds one window boundary per
#: burst, not per-frame work. Falling to per-packet speed is a ~10-100x
#: collapse, so 2x headroom is noise-immune and still decisive.
TRAIN_SLOWDOWN_BUDGET = 2.0


def _run(configure, duration_ps=ms(1)):
    """One 64B loopback run on the burst datapath; packets/wall-sec."""
    previous = os.environ.get("REPRO_DATAPATH")
    os.environ["REPRO_DATAPATH"] = "burst"
    try:
        sim = Simulator()
        tester = OSNT(sim)
        connect(tester.port(0), tester.port(1))
        monitor = tester.monitor(1)
        generator = tester.generator(0)
        generator.load_template(udp_template(64))
        configure(generator)
        generator.for_duration(duration_ps)
    finally:
        if previous is None:
            os.environ.pop("REPRO_DATAPATH", None)
        else:
            os.environ["REPRO_DATAPATH"] = previous
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = perf_counter()
        generator.start()
        sim.run()
        elapsed = perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    sent = generator.stats.sent
    assert sent > 10_000, f"run only sent {sent} frames"
    assert monitor.rx_packets == sent
    return sent / elapsed


def test_perf_burst_train_stays_on_the_burst_lane():
    """Enforce: burst-train throughput >= E1 line-rate throughput / 2."""
    line_best = train_best = 0.0
    for __ in range(3):
        line_best = max(line_best, _run(lambda g: g.at_line_rate()))
        # 256-frame trains 1 us apart: ~94% load, one closed-form
        # window per 256 frames.
        train_best = max(train_best, _run(lambda g: g.burst_train(256, "1us")))
    ratio = line_best / train_best
    emit(
        f"64B burst datapath: line-rate {line_best:,.0f} pkt/s, "
        f"burst-train {train_best:,.0f} pkt/s, slowdown {ratio:.2f}x "
        f"(budget <= {TRAIN_SLOWDOWN_BUDGET}x)"
    )
    assert ratio <= TRAIN_SLOWDOWN_BUDGET, (
        f"burst-train pacing fell off the burst lane: {ratio:.1f}x slower "
        f"than the constant-rate loop (budget {TRAIN_SLOWDOWN_BUDGET}x)"
    )
