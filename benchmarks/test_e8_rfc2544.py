"""E8 — "evaluate the achievable bandwidth and latency of a network
device" (paper §2), via the RFC 2544 methodology built on OSNT.

Regenerates: zero-loss throughput + latency-at-throughput for a
non-blocking DUT and two oversubscribed-fabric DUTs, as declarative
``rfc2544`` sweeps through :mod:`repro.runner`.
"""

from conftest import emit, run_once

from repro.analysis import format_table
from repro.runner import ExperimentSpec, run_spec
from repro.units import GBPS

DUTS = [
    ("non-blocking", None),
    ("6G fabric", 6 * GBPS),
    ("2.5G fabric", 2.5 * GBPS),
]


def test_e8_achievable_bandwidth_and_latency(benchmark):
    def sweep():
        spec = ExperimentSpec(
            name="e8-dut-comparison",
            scenario="rfc2544",
            params={"frame_size": 512, "seed": 0},
            axes={"fabric_rate_bps": [fabric for __, fabric in DUTS]},
            retries=0,
        )
        report = run_spec(spec, workers=0)
        report.require_ok()
        return [
            (label, shard.result) for (label, __), shard in zip(DUTS, report.ok)
        ]

    results = run_once(benchmark, sweep)
    emit(
        format_table(
            ["DUT", "zero-loss load", "throughput Gbps", "latency mean us", "latency p99 us", "trials"],
            [
                [
                    label,
                    f"{r['throughput_load']:.3f}",
                    round(r["throughput_bps"] / 1e9, 2),
                    round(r["latency_mean_us"], 2),
                    round(r["latency_p99_us"], 2),
                    len(r["trials"]),
                ]
                for label, r in results
            ],
            title="E8: RFC 2544 achievable bandwidth + latency (512 B frames)",
        )
    )
    by_label = dict(results)
    # A non-blocking switch forwards full line rate with low flat latency.
    nonblocking = by_label["non-blocking"]
    assert nonblocking["throughput_load"] == 1.0
    assert nonblocking["latency_mean_us"] < 5
    # Oversubscribed fabrics cap at ~their aggregate rate (short trials
    # overshoot slightly while the fabric buffer absorbs the excess)...
    assert 5.5e9 < by_label["6G fabric"]["throughput_bps"] < 7.0e9
    assert 2.2e9 < by_label["2.5G fabric"]["throughput_bps"] < 3.3e9
    # ...and run much higher latency at their zero-loss boundary.
    assert by_label["6G fabric"]["latency_mean_us"] > 10
    assert (
        by_label["2.5G fabric"]["latency_mean_us"]
        > by_label["6G fabric"]["latency_mean_us"]
    )


def test_e8b_frame_size_sweep(benchmark):
    """The canonical RFC 2544 table: throughput per frame size (6G fabric).

    The fabric forwards ~6 Gbps of frame bytes regardless of size, so the
    zero-loss *load* is roughly constant while pps scales inversely."""
    sizes = [64, 512, 1518]

    def sweep():
        spec = ExperimentSpec(
            name="e8b-frame-size",
            scenario="rfc2544",
            params={
                "fabric_rate_bps": 6 * GBPS,
                "duration": "1ms",
                "resolution": 0.05,
                "seed": 0,
            },
            axes={"frame_size": sizes},
            retries=0,
        )
        report = run_spec(spec, workers=0)
        report.require_ok()
        return [shard.result for shard in report.ok]

    results = run_once(benchmark, sweep)
    emit(
        format_table(
            ["frame B", "zero-loss load", "throughput Gbps", "kpps at rate"],
            [
                [
                    r["frame_size"],
                    f"{r['throughput_load']:.2f}",
                    round(r["throughput_bps"] / 1e9, 2),
                    round(r["throughput_bps"] / (r["frame_size"] * 8) / 1e3, 1),
                ]
                for r in results
            ],
            title="E8b: RFC 2544 throughput vs frame size (6 Gbps fabric DUT)",
        )
    )
    # Fabric-byte-limited: throughput in Gbps roughly constant across
    # sizes (within search resolution + short-trial buffer slack)...
    gbps = [r["throughput_bps"] / 1e9 for r in results]
    assert max(gbps) - min(gbps) < 1.6
    # ...while packet rate falls with frame size.
    pps = [r["throughput_bps"] / (r["frame_size"] * 8) for r in results]
    assert pps[0] > pps[1] > pps[2]
