"""Perf: closed-loop flows must stay cheap enough to sweep.

The FCT scenarios put a full transport state machine behind every flow
(per-segment events, ACK clocking, timers), which is far more event
traffic per byte than the open-loop generator lanes. The budget here
keeps that affordable: a 1,000-flow `fct_vs_loss` sweep (4 cells x 250
flows, the LinkGuardian comparison grid) must finish within
``BUDGET_S`` wall-clock on 2 workers — roughly 10x the time measured
on a development machine, so only a real regression (per-segment
allocation creep, timer churn, accidental O(n^2) in reassembly) trips
it.
"""

import time

from conftest import emit, run_once

from repro.analysis import format_table
from repro.runner import ExperimentSpec, run_spec

#: Wall-clock ceiling for the 1k-flow sweep (seconds).
BUDGET_S = 20.0
FLOWS_PER_CELL = 250
FLOW_BYTES = 20_000


def flows_spec() -> ExperimentSpec:
    return ExperimentSpec.from_dict(
        {
            "name": "perf-fct",
            "scenario": "fct_vs_loss",
            "params": {"n_flows": FLOWS_PER_CELL, "flow_bytes": FLOW_BYTES},
            "axes": {"protected": [False, True], "corrupt_rate": [0.0, 1e-3]},
            "seed": 6,
            "timeout_s": 120.0,
        }
    )


def test_perf_1k_flow_fct_sweep(benchmark):
    def sweep():
        start = time.monotonic()
        report = run_spec(flows_spec(), workers=2)
        elapsed = time.monotonic() - start
        report.require_ok()
        return elapsed, report

    elapsed, report = run_once(benchmark, sweep)
    rows = report.rows()
    total = sum(row["flows"] for row in rows)
    completed = sum(row["flows_completed"] for row in rows)
    emit(
        format_table(
            ["cells", "flows", "completed", "wall s", "budget s"],
            [[len(rows), total, completed, f"{elapsed:.2f}", f"{BUDGET_S:.0f}"]],
            title="1k-flow fct_vs_loss sweep (2 workers)",
        )
    )
    assert total == 4 * FLOWS_PER_CELL
    assert completed == total, "flows failed to complete inside the sweep"
    assert elapsed < BUDGET_S, (
        f"1k-flow FCT sweep took {elapsed:.1f}s, budget {BUDGET_S:.0f}s"
    )
