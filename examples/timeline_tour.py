#!/usr/bin/env python3
"""Tour of the waveform recorder: watch an incast collapse unfold.

Runs the A2 incast scenario (three synchronized burst trains converging
on one legacy-switch egress) with a
:class:`~repro.telemetry.WaveformRecorder` armed via
``observe_simulators``:

* the egress FIFO series ``sw.p1.tx.fifo_bytes`` shows the queue
  filling and draining burst by burst — its maximum *is* the hardware
  ``peak_occupancy_bytes`` counter, cross-checked below;
* per-link ``*.wire_bytes`` rate series show the offered load meeting
  the 10G egress bottleneck;
* everything exports as CSV rows, Chrome ``trace_event`` counter
  tracks (open at https://ui.perfetto.dev — the queue waveform renders
  under the packet spans that cause it) and a SHA-256 digest that
  reproduces bit-for-bit on every run, any datapath, any worker count.

Run:  python examples/timeline_tour.py
"""

import os
import tempfile

from repro.obs import observe_simulators
from repro.telemetry import WaveformRecorder, write_chrome_trace
from repro.testbed.attacks import incast_burst_point
from repro.units import ms, to_us


def render_ascii(points, width=64, height=8):
    """A tiny terminal strip chart of one (t_ps, value) series."""
    if not points:
        return ["(no samples)"]
    t0, t1 = points[0][0], points[-1][0]
    span = max(t1 - t0, 1)
    peak = max(v for _, v in points) or 1
    cells = [0] * width
    for t_ps, value in points:
        column = min(int((t_ps - t0) * (width - 1) / span), width - 1)
        cells[column] = max(cells[column], value)
    rows = []
    for level in range(height, 0, -1):
        threshold = peak * (level - 0.5) / height
        rows.append(
            "".join("█" if cell >= threshold else " " for cell in cells)
        )
    rows.append(f"0 … {to_us(span):.0f} µs, peak {peak} B")
    return rows


def main() -> None:
    recorder = WaveformRecorder()
    with observe_simulators(waves=recorder):
        row, _ = incast_burst_point(senders=3, duration_ps=int(ms(2)))

    print(
        f"incast: {row.senders} senders, {row.sent} sent, "
        f"{row.received} received "
        f"({row.delivery_fraction:.1%} delivered), "
        f"{row.egress_drops} egress drops"
    )

    # -- the collapse, as a waveform ----------------------------------------
    egress = recorder.get("sw.p1.tx.fifo_bytes")
    peak = max(value for _, value in egress.points())
    assert peak == row.queue_peak_bytes, "waveform must match the hw counter"
    print(f"\negress queue sw.p1.tx.fifo_bytes ({egress.recorded} samples):")
    for line in render_ascii(egress.points()):
        print("  " + line)

    # -- every series the probes produced -----------------------------------
    print("\nrecorded series:")
    for name in recorder.names():
        waveform = recorder.get(name)
        print(
            f"  {name:32s} {waveform.recorded:6d} samples, "
            f"last {waveform.last}"
        )

    # -- exports -------------------------------------------------------------
    out = tempfile.mkdtemp(prefix="timeline-tour-")
    csv_path = os.path.join(out, "incast.csv")
    trace_path = os.path.join(out, "incast_trace.json")
    recorder.write_csv(csv_path)
    events = write_chrome_trace(trace_path, None, waves=recorder)
    print(f"\nwrote {csv_path} and {trace_path} ({events} counter events)")
    print(f"digest (reproduces bit-for-bit): {recorder.digest()}")
    print(
        "\nsame thing from the shell:\n"
        "  osnt-telemetry timeline --scenario incast --senders 3 "
        "--csv incast.csv --trace incast_trace.json"
    )


if __name__ == "__main__":
    main()
