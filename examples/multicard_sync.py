#!/usr/bin/env python3
"""Fleet vision: one-way latency between two GPS-synchronized testers.

The paper closes by envisioning deployments of "hundreds or thousands
of testers, offering previously unobtainable insights". The key enabling
property is demonstrated here with two cards: because each card's
oscillator is disciplined to the same GPS time base, a packet stamped on
card A and captured on card B yields a *one-way* latency — something a
single tester, or two unsynchronized testers, cannot measure.

Run:  python examples/multicard_sync.py
"""

from repro.analysis import print_table
from repro.testbed import measure_one_way_latency


def main() -> None:
    sample_times = [1, 3, 5, 10]
    rows = []
    for gps in (False, True):
        rows.extend(measure_one_way_latency(gps, sample_times_s=sample_times))
    print_table(
        ["GPS", "measured after", "true latency", "measured", "error"],
        [
            [
                "on" if row.gps_enabled else "off",
                f"{row.measured_after_s} s",
                f"{row.true_latency_ns:.0f} ns",
                f"{row.measured_mean_ns:,.0f} ns",
                f"{row.error_ns:,.0f} ns",
            ]
            for row in rows
        ],
        title="One-way latency across two tester cards (30 ppm vs -25 ppm clocks)",
    )
    print(
        "Without GPS the two cards' clocks drift apart at 55 ppm: the\n"
        '"latency" is already off by tens of µs after one second and goes\n'
        "negative — packets apparently arrive before they left. With GPS\n"
        "discipline both clocks stay within tens of ns of true time, so\n"
        "the one-way measurement is accurate to ~10 ns indefinitely.\n"
        "That property is what makes city- or planet-scale tester fleets\n"
        "(the paper's closing vision) able to measure real paths."
    )


if __name__ == "__main__":
    main()
