#!/usr/bin/env python3
"""A full measurement campaign as one declarative, resumable sweep.

Describes the paper's latency-vs-load experiment (E3) as an
:class:`~repro.runner.ExperimentSpec` — frame size x offered load, three
repeats per point — and runs it across a pool of worker processes with
checkpointing. Kill it mid-run and start it again: completed shards are
skipped and the merged result is bit-identical to an uninterrupted run.

The same spec can be saved as JSON and driven from the shell:

    python examples/sweep_campaign.py --emit-spec > campaign.json
    osnt-sweep run campaign.json --workers 4 --checkpoint runs/e3

Run:  python examples/sweep_campaign.py
"""

import sys
import tempfile

from repro.analysis import print_table
from repro.runner import ExperimentSpec, SweepRunner

CAMPAIGN = ExperimentSpec(
    name="latency-vs-load",
    scenario="legacy_latency",
    params={"duration": "1ms", "probe_load": 0.05},
    axes={
        "frame_size": [256, 1518],
        "load": [0.5, 0.8, 0.95],
    },
    repeats=3,
    seed=7,
    timeout_s=120.0,
    retries=1,
)


def main() -> None:
    if "--emit-spec" in sys.argv:
        print(CAMPAIGN.to_json(indent=2))
        return

    with tempfile.TemporaryDirectory(prefix="sweep-campaign-") as checkpoints:
        runner = SweepRunner(CAMPAIGN, workers=4, checkpoint_dir=checkpoints)

        # Simulate an interrupted campaign: run only part of it...
        partial = runner.run(max_shards=5)
        print(
            f"first pass: {len(partial.ok)} of {CAMPAIGN.shard_count} shards done, "
            f"{len(partial.pending)} pending\n"
        )

        # ...then "come back later" and resume from the checkpoints.
        report = runner.run()
        report.require_ok()

    resumed = sum(1 for s in report.shards if s.from_checkpoint)
    print(f"second pass resumed {resumed} shard(s) from checkpoints\n")

    # Average the repeats per sweep point for the summary table.
    points = {}
    for shard in report.ok:
        key = (shard.params["frame_size"], shard.params["load"])
        points.setdefault(key, []).append(shard.result["mean_us"])
    print_table(
        ["frame B", "load", "repeats", "mean latency (us)"],
        [
            [frame, load, len(values), f"{sum(values) / len(values):.2f}"]
            for (frame, load), values in sorted(points.items())
        ],
        title="E3 via the sweep runner: latency vs load (3 seeds per point)",
    )


if __name__ == "__main__":
    main()
