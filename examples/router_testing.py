#!/usr/bin/env python3
"""Testing an IPv4 router DUT: RFC 2544 + microarchitecture resolution.

Two things a hardware tester does to a router that software tools
cannot do well:

1. find the *achievable bandwidth* precisely (RFC 2544 zero-loss binary
   search, here against an oversubscribed-fabric switch for contrast);
2. resolve *nanosecond-scale* DUT internals — here the router's LPM
   pipeline walks one trie level (12 ns) per matched prefix bit, a
   staircase invisible under the µs-scale noise of host timestamping
   but trivial for 6.25 ns hardware stamps.

Run:  python examples/router_testing.py
"""

from repro.analysis import print_table
from repro.testbed import (
    default_switch_factory,
    measure_router_latency,
    rfc2544_throughput,
)
from repro.units import GBPS


def main() -> None:
    # Part 1: RFC 2544 achievable bandwidth of three DUT variants.
    rows = []
    for label, fabric in (
        ("non-blocking switch", None),
        ("6G-fabric switch", 6 * GBPS),
        ("2.5G-fabric switch", 2.5 * GBPS),
    ):
        factory = default_switch_factory(fabric_rate_bps=fabric) if fabric else None
        result = rfc2544_throughput(512, switch_factory=factory)
        rows.append(
            [
                label,
                f"{result.throughput_load:.3f}",
                f"{result.throughput_bps / 1e9:.2f} Gbps",
                f"{result.latency_mean_us:.2f} µs",
                len(result.trials),
            ]
        )
    print_table(
        ["DUT", "zero-loss load", "throughput", "latency @ rate", "trials"],
        rows,
        title="RFC 2544 achievable bandwidth (binary search, 512 B frames)",
    )

    # Part 2: the router's LPM staircase.
    router_rows = measure_router_latency([0, 8, 16, 24, 32], fib_fill=500)
    print_table(
        ["matched prefix", "FIB size", "mean latency µs", "p99 µs"],
        [
            [f"/{row.prefix_len}", row.fib_routes, round(row.mean_us, 4), round(row.p99_us, 4)]
            for row in router_rows
        ],
        title="Router forwarding latency vs matched LPM depth (12 ns per level)",
    )
    steps = [
        (b.mean_us - a.mean_us) * 1e3
        for a, b in zip(router_rows, router_rows[1:])
    ]
    print(
        f"Each extra /8 of matched prefix adds {sum(steps) / len(steps):.0f} ns "
        "(8 trie levels x 12 ns) - resolved cleanly by the 6.25 ns hardware\n"
        "timestamps, despite being ~20x below the software-generator noise\n"
        "floor measured in experiment E2."
    )


if __name__ == "__main__":
    main()
