#!/usr/bin/env python3
"""Tour of the repro.telemetry subsystem on a PCAP replay workload.

Synthesises a capture file, replays it across a loopback cable with
hardware TX timestamps embedded in-band (the P4TG trick: the receiver
computes latency from the stamp carried *inside* each frame, no second
channel needed), with the full telemetry stack armed:

* per-port counters, rates and latency histograms in one ``snapshot()``,
* the in-band latency distribution as p50/p90/p99 and bucket rows,
* an event trace of the whole run exported as Chrome ``trace_event``
  JSON — open it at chrome://tracing or https://ui.perfetto.dev.

Run:  python examples/telemetry_tour.py
"""

import json
import os
import tempfile

from repro.analysis import print_table
from repro.hw import connect
from repro.net import PcapRecord, build_udp, write_pcap
from repro.osnt import OSNT
from repro.sim import Simulator
from repro.telemetry import Tracer, write_chrome_trace, write_snapshot_json
from repro.units import ms, to_us, us


def synthesize_capture(path: str) -> int:
    """A mixed-size trace: 400 packets, sizes cycling 64..1024 bytes."""
    sizes = [64, 128, 256, 512, 1024]
    records = []
    timestamp = 0
    for index in range(400):
        records.append(
            PcapRecord(
                timestamp_ps=timestamp,
                data=build_udp(frame_size=sizes[index % len(sizes)]).data,
            )
        )
        timestamp += us(2)
    return write_pcap(path, records)


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="telemetry_tour_")
    pcap_path = os.path.join(workdir, "input.pcap")
    count = synthesize_capture(pcap_path)
    print(f"synthesized {count} packets -> {pcap_path}")

    sim = Simulator()
    tracer = Tracer(capacity=1 << 15)
    sim.set_tracer(tracer)  # kernel + datapath events from the first tick

    tester = OSNT(sim)
    connect(tester.port(0), tester.port(1))
    tester.start_telemetry()  # rate gauges + in-band latency on every port

    monitor = tester.monitor(1)
    monitor.start_capture()
    generator = tester.generator(0)
    generator.load_pcap(pcap_path)
    generator.embed_timestamps()
    generator.start()

    sim.run()  # drain the replay
    sim.run(until=sim.now + ms(2))  # let the daemon rate ticks land
    tester.device.stop_telemetry()

    # -- one call, the whole card ---------------------------------------
    snapshot = tester.snapshot()
    highlights = [
        "osnt.p0.gen.sent",
        "osnt.p0.gen.achieved_bps",
        "osnt.p1.mon.rx_packets",
        "osnt.p1.mon.captured",
        "osnt.p1.rx_rate.peak_bps",
        "osnt.dma.delivered",
    ]
    print_table(
        ["metric", "value"],
        [[name, snapshot[name]] for name in highlights],
        title=f"snapshot highlights ({len(snapshot)} metrics total)",
    )

    # -- the in-band latency distribution -------------------------------
    latency = monitor.latency_histogram
    summary = latency.summary()
    print_table(
        ["percentile", "µs"],
        [
            ["p50", f"{to_us(summary.p50):.3f}"],
            ["p90", f"{to_us(summary.p90):.3f}"],
            ["p99", f"{to_us(summary.p99):.3f}"],
            ["max", f"{to_us(summary.maximum):.3f}"],
        ],
        title=f"loopback latency, {summary.count} in-band samples",
    )
    print_table(
        ["bucket low ps", "bucket high ps", "count"],
        [list(row) for row in latency.bucket_rows()[:8]],
        title="first latency buckets (log-linear, ~3% relative error)",
    )

    # -- TX size histogram straight from the registry --------------------
    sizes = tester.metrics.get("p0.gen.tx_size_bytes").summary()
    print(
        f"tx sizes: count={sizes.count} min={sizes.minimum} "
        f"p50={sizes.p50:.0f} max={sizes.maximum}"
    )

    # -- export: snapshot JSON + Chrome trace ----------------------------
    snapshot_path = os.path.join(workdir, "snapshot.json")
    trace_path = os.path.join(workdir, "trace.json")
    write_snapshot_json(snapshot_path, snapshot)
    written = write_chrome_trace(trace_path, tracer)
    with open(trace_path) as handle:
        document = json.load(handle)
    print(f"wrote {len(snapshot)} metrics -> {snapshot_path}")
    print(
        f"wrote {written} trace events -> {trace_path} "
        f"({document['otherData']['evicted']} evicted; load it in "
        "chrome://tracing or ui.perfetto.dev)"
    )


if __name__ == "__main__":
    main()
