#!/usr/bin/env python3
"""Demo Part I: packet-processing latency of a legacy switch vs load.

Reproduces the first half of the SIGCOMM'15 demo: two OSNT ports attach
to a (simulated) commercial L2 switch; one port generates traffic with
embedded TX timestamps at a finely-controlled rate, the other captures
with hardware RX timestamps, and the userspace application estimates
switching latency under different load conditions (Figure 2 topology).

Run:  python examples/legacy_switch_latency.py
"""

from repro.analysis import print_table
from repro.testbed import load_points, measure_legacy_switch_latency
from repro.units import ms


def main() -> None:
    loads = load_points(steps=4, maximum=1.0) + [1.15]  # include overload
    frame_sizes = [64, 512, 1518]
    rows = measure_legacy_switch_latency(
        loads=loads, frame_sizes=frame_sizes, duration_ps=ms(2)
    )
    print_table(
        ["frame", "load", "probes", "mean us", "p50 us", "p99 us", "max us", "drops"],
        [
            [
                row.frame_size,
                f"{row.load:.2f}",
                row.packets,
                round(row.mean_us, 3),
                round(row.p50_us, 3),
                round(row.p99_us, 3),
                round(row.max_us, 3),
                row.switch_drops,
            ]
            for row in rows
        ],
        title="Legacy switch latency under load (OSNT Part I demo)",
    )
    saturated = [row for row in rows if row.load > 1.0]
    if saturated:
        print(
            "Above line rate the egress queue saturates: latency plateaus "
            f"near {max(row.max_us for row in saturated):.0f} µs (buffer depth) "
            "and the switch starts dropping — the behaviour the demo "
            "visualises live on commercial switches."
        )


if __name__ == "__main__":
    main()
