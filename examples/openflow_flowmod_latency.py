#!/usr/bin/env python3
"""Demo Part II: OFLOPS-turbo flow-table update measurements.

Runs the two headline OFLOPS-turbo modules against two simulated switch
firmwares:

* ``spec``  — barrier replies only after table writes commit;
* ``eager`` — barrier replies as soon as messages are parsed (how many
  real switches misbehave).

The modules measure the same update through the control plane (barrier)
and the data plane (OSNT probes timestamped in hardware), exposing the
gap between what the switch *says* and what it *does* — including stale
forwarding after the barrier during large table updates.

Run:  python examples/openflow_flowmod_latency.py
"""

from repro.analysis import print_table
from repro.devices import SwitchProfile
from repro.oflops import (
    FlowModLatencyModule,
    ForwardingConsistencyModule,
    ModuleRunner,
    OflopsContext,
)
from repro.units import us


def run_mode(barrier_mode: str, n_rules: int = 32):
    profile = SwitchProfile(
        barrier_mode=barrier_mode,
        firmware_delay_ps=us(10),
        table_write_ps=us(100),
    )
    latency = ModuleRunner(OflopsContext(profile=profile)).run(
        FlowModLatencyModule(n_rules=n_rules)
    )
    consistency = ModuleRunner(OflopsContext(profile=profile)).run(
        ForwardingConsistencyModule(n_rules=n_rules)
    )
    return latency, consistency


def main() -> None:
    rows = []
    consistency_rows = []
    for mode in ("spec", "eager"):
        latency, consistency = run_mode(mode)
        rows.append(
            [
                mode,
                latency["n_rules"],
                round(latency["control_done_us"], 1),
                round(latency["first_rule_us"], 1),
                round(latency["data_done_us"], 1),
                round(latency["barrier_understates_by_us"], 1),
            ]
        )
        consistency_rows.append(
            [
                mode,
                round(consistency["barrier_latency_us"], 1),
                consistency["stale_during_update"],
                consistency["stale_after_barrier"],
                round(consistency["transition_span_us"], 1),
            ]
        )
    print_table(
        ["firmware", "rules", "barrier us", "first rule us", "all rules us", "barrier lies by us"],
        rows,
        title="Flow-table update latency: control plane vs data plane",
    )
    print_table(
        ["firmware", "barrier us", "stale pkts (update)", "stale pkts (after barrier)", "transition us"],
        consistency_rows,
        title="Forwarding consistency during a 32-rule update burst",
    )
    print(
        "The eager firmware acknowledges the barrier before its TCAM "
        "writes land: rules keep activating (and stale packets keep "
        "flowing to the old port) long after the control plane claimed "
        "completion. Only combined control+data measurement — the point "
        "of OFLOPS-turbo — can see this."
    )


if __name__ == "__main__":
    main()
