#!/usr/bin/env python3
"""PCAP replay with preserved inter-departure timing.

Synthesises a bursty capture file, then replays it through the OSNT
generator three ways — original timing, 4x speed-up, and flattened to a
constant rate — and verifies with the monitor's hardware RX timestamps
that the wire reproduced each profile. This is the OSNT "PCAP replay
function with a tuneable per-packet inter-departure time".

Run:  python examples/pcap_replay.py
"""

import os
import tempfile

from repro.analysis import print_table
from repro.hw import connect
from repro.net import PcapRecord, build_udp, write_pcap
from repro.osnt import OSNT
from repro.sim import Simulator
from repro.units import us


def synthesize_capture(path: str) -> int:
    """A bursty trace: 5 bursts of 10 packets, 1 ms apart."""
    records = []
    timestamp = 0
    for burst in range(5):
        for index in range(10):
            records.append(
                PcapRecord(
                    timestamp_ps=timestamp,
                    data=build_udp(frame_size=256, dst_port=4000 + burst).data,
                )
            )
            timestamp += us(2)  # 2 µs inside a burst
        timestamp += us(1000)  # 1 ms between bursts
    return write_pcap(path, records)


def replay(path: str, label: str, **kwargs):
    sim = Simulator()
    tester = OSNT(sim)
    connect(tester.port(0), tester.port(1))
    monitor = tester.monitor(1)
    monitor.start_capture()
    generator = tester.generator(0)
    generator.load_pcap(path, **kwargs)
    generator.start()
    sim.run()
    stamps = [p.rx_timestamp for p in monitor.packets]
    gaps = [b - a for a, b in zip(stamps, stamps[1:])]
    big_gaps = [g for g in gaps if g > us(100)]
    return [
        label,
        len(stamps),
        f"{(stamps[-1] - stamps[0]) / 1e9:.3f}",
        len(big_gaps),
        f"{(sum(big_gaps) / len(big_gaps) / 1e9):.3f}" if big_gaps else "-",
    ]


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bursty.pcap")
        count = synthesize_capture(path)
        print(f"synthesised {count}-packet bursty capture\n")
        rows = [
            replay(path, "original timing"),
            replay(path, "4x speed-up", speed=4.0),
            replay(path, "flattened (no timing)", preserve_timing=False),
            replay(path, "looped 3x", loop=3),
        ]
        print_table(
            ["replay mode", "packets", "span ms", "inter-burst gaps", "mean gap ms"],
            rows,
            title="PCAP replay timing fidelity (measured by hardware RX stamps)",
        )
        print(
            "Original timing reproduces the 1 ms burst structure exactly; "
            "4x replay compresses gaps to ~0.25 ms; flattened replay sends "
            "back-to-back at line rate (no inter-burst gaps survive)."
        )


if __name__ == "__main__":
    main()
