#!/usr/bin/env python3
"""Run the complete OFLOPS-turbo module suite against one switch.

The demo's Part II: "setup an instance of the OFLOPS-turbo framework on
a host and run multiple measurement tests against a production OpenFlow
switch". This example runs every standard measurement module against
the ``hw-fast-cpu`` switch class and prints the combined report — the
full characterisation OFLOPS-turbo produces for a DUT.

Run:  python examples/oflops_full_suite.py [dut-class]
"""

import sys

from repro.devices import PROFILES
from repro.oflops import ModuleRunner, OflopsContext, render_result
from repro.oflops.modules import ALL_MODULES


def main() -> None:
    dut = sys.argv[1] if len(sys.argv) > 1 else "hw-fast-cpu"
    if dut not in PROFILES:
        raise SystemExit(f"unknown DUT class {dut!r}; choose from {sorted(PROFILES)}")
    profile = PROFILES[dut]
    print(f"characterising DUT class '{dut}' "
          f"(firmware {profile.firmware_delay_ps / 1e6:.0f} µs/msg, "
          f"table write {profile.table_write_ps / 1e6:.0f} µs/rule, "
          f"barrier '{profile.barrier_mode}')\n")
    for name in sorted(ALL_MODULES):
        module_cls = ALL_MODULES[name]
        runner = ModuleRunner(OflopsContext(profile=profile))
        result = runner.run(module_cls())
        print(render_result(result))
        print()
    print(
        "Each module ran on a fresh testbed (Figure 2 topology): OSNT data\n"
        "ports through the switch, the OpenFlow control channel, and the\n"
        "SNMP agent — all three measurement channels cross-checked."
    )


if __name__ == "__main__":
    main()
