#!/usr/bin/env python3
"""Tour of repro.cluster: cached, distributed sweeps on one machine.

Walks the whole cluster layer end to end, loopback-only:

1. run a small ``line_rate`` sweep through a
   :class:`~repro.cluster.SocketScheduler` with two spawned
   ``osnt-worker`` processes, publishing every shard result into a
   content-addressed :class:`~repro.cluster.ResultStore`;
2. aggregate the per-worker telemetry snapshots into one OpenMetrics
   exposition with a ``worker`` label per sample;
3. rerun the sweep warm — every shard is served from the store, none
   execute, and the merged document is byte-identical;
4. *extend* the sweep with a new axis value — only the new operating
   points execute, the overlap is cache hits;
5. inspect and garbage-collect the store.

Run:  python examples/cluster_tour.py
"""

import tempfile
from pathlib import Path

from repro.cluster import ResultStore, SocketScheduler, workers_openmetrics
from repro.runner import ExperimentSpec, SweepRunner


def spec_for(frame_sizes):
    return ExperimentSpec(
        name="cluster-tour",
        scenario="line_rate",
        params={"duration": "0.2ms", "seed": 0},
        axes={"frame_size": frame_sizes},
        retries=1,
        timeout_s=120.0,
    )


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="cluster-tour-") as tmp:
        store_dir = Path(tmp) / "store"

        # -- 1. cold distributed run ------------------------------------
        print("=== cold run: 2 remote workers, result store armed ===")
        spec = spec_for([64, 256, 512, 1024, 1518])
        report = SweepRunner(
            spec,
            scheduler=SocketScheduler(spawn_workers=2, heartbeat_s=0.1),
            cache_dir=store_dir,
        ).run()
        report.require_ok()
        print(report.summary())
        stats = report.scheduler_stats
        print(f"backend={stats['backend']} executed={stats['executed']} "
              f"per_worker={stats['per_worker']}")
        cold_merged = report.merged_json()

        # -- 2. fleet telemetry -----------------------------------------
        print("\n=== per-worker OpenMetrics exposition ===")
        print(workers_openmetrics(report.worker_telemetry), end="")

        # -- 3. warm rerun ----------------------------------------------
        print("\n=== warm rerun: same sweep, same store ===")
        warm = SweepRunner(
            spec,
            scheduler=SocketScheduler(spawn_workers=2, heartbeat_s=0.1),
            cache_dir=store_dir,
        ).run()
        warm.require_ok()
        print(f"cache hits: {len(warm.from_cache)}/{len(warm.shards)}, "
              f"executed: {warm.scheduler_stats.get('executed', 0)}")
        assert warm.merged_json() == cold_merged, "cache changed the results!"
        print("merged document byte-identical to the cold run")

        # -- 4. overlapping sweep ---------------------------------------
        print("\n=== extended sweep: one new frame size ===")
        extended = SweepRunner(
            spec_for([64, 256, 512, 1024, 1518, 1280]),
            workers=2,  # the local pool shares the same store
            cache_dir=store_dir,
        ).run()
        extended.require_ok()
        print(f"cache hits: {len(extended.from_cache)}/"
              f"{len(extended.shards)} — only the 1280-byte point ran")

        # -- 5. store maintenance ---------------------------------------
        print("\n=== store stats and gc ===")
        store = ResultStore(store_dir)
        print(store.stats().summary())
        would_remove = store.gc("1h", dry_run=True)
        print(f"gc --older-than 1h would remove {len(would_remove)} entries")


if __name__ == "__main__":
    main()
