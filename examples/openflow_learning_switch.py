#!/usr/bin/env python3
"""An OpenFlow learning switch, end to end over the wire protocol.

Builds the full SDN loop this reproduction models: three hosts attach to
an OpenFlow switch whose controller (a reactive MAC-learning app) talks
real OpenFlow 1.0 over a latency-modelled control channel. The first
packet of each conversation detours through the controller (packet_in →
flood); once both directions are learned, exact-match rules forward in
hardware and the controller goes quiet.

Run:  python examples/openflow_learning_switch.py
"""

from repro.analysis import print_table
from repro.devices import OpenFlowSwitch, SimpleHost
from repro.hw import connect
from repro.net import build_udp
from repro.openflow import ControlChannel, LearningSwitchController
from repro.sim import Simulator
from repro.units import ms, us


def main() -> None:
    sim = Simulator()
    channel = ControlChannel(sim, latency_ps=us(50))
    switch = OpenFlowSwitch(sim, channel.switch, num_ports=3)
    controller = LearningSwitchController(channel.controller)

    hosts = []
    for index in range(3):
        host = SimpleHost(
            sim,
            f"h{index}",
            mac=f"02:00:00:00:00:{index + 1:02x}",
            ip=f"10.0.0.{index + 1}",
        )
        connect(host.port, switch.port(index))
        hosts.append(host)
    sim.run(until=ms(2))  # handshake

    def send(src, dst, count=1):
        for __ in range(count):
            hosts[src].send(
                build_udp(
                    frame_size=128,
                    src_mac=f"02:00:00:00:00:{src + 1:02x}",
                    dst_mac=f"02:00:00:00:00:{dst + 1:02x}",
                    src_ip=f"10.0.0.{src + 1}",
                    dst_ip=f"10.0.0.{dst + 1}",
                )
            )
        sim.run(until=sim.now + ms(4))

    timeline = []

    def snapshot(label):
        timeline.append(
            [
                label,
                controller.packet_ins_handled,
                controller.floods,
                controller.flows_installed,
                len(switch.table),
                switch.datapath_hits,
            ]
        )

    snapshot("after handshake")
    send(0, 1)  # unknown: flood
    snapshot("h0->h1 (first packet)")
    send(1, 0)  # reverse: rule for h0 installs
    snapshot("h1->h0 (reply)")
    send(0, 1)  # rule for h1 installs
    snapshot("h0->h1 (second)")
    send(1, 0, count=50)  # established: hardware only
    snapshot("h1->h0 x50 (established)")

    print_table(
        ["event", "packet_ins", "floods", "flow_mods", "table size", "hw hits"],
        timeline,
        title="Learning-switch control loop (OpenFlow 1.0 over the modelled channel)",
    )
    print(
        "The 50-packet burst raised hardware hits without a single new\n"
        "packet_in: the reactive rules moved the flow off the controller,\n"
        "which is precisely the transition OFLOPS-turbo's measurement\n"
        "modules quantify (install latency, consistency, interference)."
    )


if __name__ == "__main__":
    main()
