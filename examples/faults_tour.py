#!/usr/bin/env python3
"""Tour of the repro.faults subsystem — degrading the testbed on purpose.

OSNT's pitch is *loss-limited*, GPS-disciplined measurement. The only
way to trust that claim in a simulator is to break things deliberately
and watch the measurement stack account for every bit of damage:

* a bursty lossy link, with injected drops counted apart from genuine
  FIFO overflow;
* a GPS holdover window, with the clock error growing on the free-running
  crystal and snapping back on re-acquisition;
* a flapping OpenFlow control channel, with the flow-mod latency module
  retrying within bounds and marking its result ``degraded`` instead of
  crashing;
* the same impairment plan serialised to JSON and swept like any other
  experiment axis — bit-identical timelines at any worker count.

Run:  python examples/faults_tour.py
"""

import json

from repro.analysis import print_table
from repro.faults import ImpairmentSpec
from repro.faults.scenarios import (
    flowmod_under_flap_point,
    gps_holdover_drift_point,
    lossy_link_latency_point,
)
from repro.runner import ExperimentSpec, run_spec


def lossy_link() -> None:
    print("== 1. bursty loss on the probe link ==")
    rows = []
    for loss_rate, burst in [(0.0, 1.0), (0.01, 1.0), (0.05, 8.0)]:
        row, extras = lossy_link_latency_point(
            loss_rate=loss_rate, burst=burst, seed=7
        )
        rows.append(
            [
                f"{loss_rate:.0%}",
                f"{burst:g}",
                row.probes_sent,
                row.probes_captured,
                row.drops_injected,
                row.drops_overflow,
                f"{row.observed_loss:.1%}",
                extras["fault_timeline_digest"][:12],
            ]
        )
    print_table(
        ["loss", "burst", "sent", "captured", "injected", "overflow", "observed", "digest"],
        rows,
        title="every lost probe is accounted to the fault, none to the path",
    )


def gps_holdover() -> None:
    print("\n== 2. GPS holdover: the servo loses the pulse ==")
    rows, __ = gps_holdover_drift_point(
        holdover_start_s=3, holdover_len_s=4, horizon_s=10, seed=7
    )
    print_table(
        ["t (s)", "|error| ns", "holdover"],
        [[r.after_seconds, f"{r.abs_error_ns:,.0f}", "yes" if r.in_holdover else ""] for r in rows],
        title="clock error grows while free-running, re-acquires after",
    )


def flapping_control() -> None:
    print("\n== 3. flow_mod latency on a flapping control channel ==")
    result = flowmod_under_flap_point(n_rules=16, seed=7)
    print(
        f"degraded={result['degraded']} "
        f"retries={result['control_retries']} "
        f"rules_activated={result['rules_activated']}/16 "
        f"(completed, no exception)"
    )


def swept_impairments() -> None:
    print("\n== 4. impairments as a sweep axis ==")
    plan = ImpairmentSpec.from_any(
        [{"name": "loss", "model": "link_loss", "params": {"rate": 0.02, "burst": 4}}]
    )
    print(f"impairment plan fingerprint: {plan.fingerprint()}")
    print(plan.to_json(indent=2))
    spec = ExperimentSpec.from_dict(
        {
            "name": "loss-sweep",
            "scenario": "lossy_link_latency",
            "params": {"duration": "1ms"},
            "axes": {"loss_rate": [0.0, 0.02, 0.05]},
            "seed": 7,
        }
    )
    serial = run_spec(spec, workers=1)
    parallel = run_spec(spec, workers=4)
    identical = serial.merged_json() == parallel.merged_json()
    print(f"workers=1 vs workers=4 merged output identical: {identical}")
    print_table(
        ["loss", "captured", "injected drops", "digest"],
        [
            [
                f"{r['loss_rate']:.0%}",
                r["probes_captured"],
                r["drops_injected"],
                r["fault_timeline_digest"][:12],
            ]
            for r in serial.results()
        ],
        title="same seed, same timeline — at any worker count",
    )


def main() -> None:
    lossy_link()
    gps_holdover()
    flapping_control()
    swept_impairments()


if __name__ == "__main__":
    main()
