#!/usr/bin/env python3
"""Tour of repro.flows — closed-loop traffic over an impaired testbed.

The open-loop tester measures packet streams; this layer measures what
*real* traffic does when the network misbehaves, reproducing
LinkGuardian's headline result in simulation:

* a TCP-ish transport (slow start, AIMD, fast retransmit, RTO) between
  two hosts declared with the Topology builder;
* flow-completion-time distributions over a corrupting link, with and
  without link-local retransmit protection — same seed, same corrupted
  frames, very different tails;
* the effective-loss-vs-speed argument: a fixed per-frame corruption
  probability hurts more at 40G than at 10G;
* the same scenarios swept through the sharded runner, bit-identical
  at any worker count.

Run:  python examples/flows_tour.py
"""

from repro.analysis import print_table
from repro.flows import (
    FlowEndpoint,
    LinkGuardian,
    effective_loss_vs_speed_point,
    fct_vs_loss_point,
)
from repro.runner import ExperimentSpec, run_spec
from repro.sim import Simulator
from repro.topology import Topology


def one_flow() -> None:
    print("== 1. one closed-loop flow, declaratively wired ==")
    sim = Simulator()
    built = (
        Topology(name="pair")
        .host("h1", rate="10Gbps")
        .host("h2", rate="10Gbps")
        .node("s1", "legacy_switch", ports=2, rate="10Gbps", seed=1)
        .link("h1", "s1:0", rate="10Gbps")
        .link("s1:1", "h2", rate="10Gbps")
    ).build(sim)
    LinkGuardian(corrupt_rate=0.01, protected=True, seed=3).attach(
        built.link_between("s1", "h2")
    )
    src, dst = FlowEndpoint(built.node("h1")), FlowEndpoint(built.node("h2"))
    flow = src.flow_to(dst, size_bytes=200_000)
    sim.run()
    record = flow.record
    print(
        f"  200 KB over a 1% corrupting (protected) hop: "
        f"fct={record.fct_ps / 1e6:.1f} us  "
        f"goodput={record.goodput_bps / 1e9:.2f} Gbps  "
        f"retransmits={record.retransmits} (transport saw nothing)"
    )


def linkguardian_comparison() -> None:
    print("\n== 2. the LinkGuardian experiment: protected vs raw tail ==")
    rows = []
    for label, corrupt_rate, protected in [
        ("lossless baseline", 0.0, False),
        ("1e-3, protected", 1e-3, True),
        ("1e-3, unprotected", 1e-3, False),
    ]:
        row = fct_vs_loss_point(
            corrupt_rate=corrupt_rate, protected=protected, seed=6
        )
        rows.append(
            [
                label,
                row["link"]["corrupted"],
                row["retransmits"],
                row["timeouts"],
                f"{row['fct_us']['p50']:.0f}",
                f"{row['fct_us']['p99']:.0f}",
                f"{row['fct_us']['max']:.0f}",
            ]
        )
    print_table(
        ["arm", "corrupted", "rtx", "RTOs", "p50 us", "p99 us", "max us"],
        rows,
        title="same seed, same corrupted frames; only their fate differs",
    )


def loss_vs_speed() -> None:
    print("\n== 3. why corruption loss gets worse beyond 10 Gbps ==")
    rows = []
    for rate in ["10Gbps", "40Gbps", "100Gbps"]:
        raw = effective_loss_vs_speed_point(
            rate, corrupt_rate=0.01, protected=False, seed=2,
            n_flows=32, flow_bytes=60_000,
        )
        prot = effective_loss_vs_speed_point(
            rate, corrupt_rate=0.01, protected=True, seed=2,
            n_flows=32, flow_bytes=60_000,
        )
        rows.append(
            [
                rate,
                raw["link"]["corrupted"],
                f"{raw['effective_loss_rate']:.2%}",
                f"{prot['effective_loss_rate']:.2%}",
                f"{raw['fct_us']['p99']:.0f}",
                f"{prot['fct_us']['p99']:.0f}",
            ]
        )
    print_table(
        ["link", "corrupted", "raw loss", "prot loss", "raw p99 us", "prot p99 us"],
        rows,
        title="fixed per-frame corruption; faster links corrupt more frames/s",
    )


def swept() -> None:
    print("\n== 4. swept through the sharded runner ==")
    spec = ExperimentSpec.from_dict(
        {
            "name": "linkguardian-sweep",
            "scenario": "fct_vs_loss",
            "params": {"observe": True},
            "axes": {"protected": [False, True], "corrupt_rate": [0.0, 1e-3]},
            "seed": 6,
        }
    )
    serial = run_spec(spec, workers=1)
    parallel = run_spec(spec, workers=2)
    assert serial.merged_json() == parallel.merged_json()
    rows = [
        [
            row["protected"],
            f"{row['corrupt_rate']:g}",
            f"{row['fct_us']['p99']:.0f}",
            row["flow_digest"][:12],
        ]
        for row in serial.rows()
    ]
    print_table(
        ["protected", "corrupt", "p99 us", "flow digest"],
        rows,
        title="workers=1 == workers=2, byte for byte (obs armed)",
    )


if __name__ == "__main__":
    one_flow()
    linkguardian_comparison()
    loss_vs_speed()
    swept()
