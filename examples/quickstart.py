#!/usr/bin/env python3
"""Quickstart: generate, capture and measure with OSNT in five minutes.

Wires two ports of the (simulated) OSNT card back-to-back, replays a
UDP template at half line rate with embedded hardware TX timestamps,
captures at the other port with hardware RX timestamps, and reports the
one-way latency — the canonical first OSNT experiment.

Run:  python examples/quickstart.py
"""

from repro.analysis import latency_from_capture, print_table
from repro.hw import connect
from repro.net import build_udp
from repro.osnt import OSNT
from repro.sim import Simulator
from repro.units import format_rate, ms


def main() -> None:
    # 1. A simulator and a tester card; cable port 0 to port 1.
    sim = Simulator()
    tester = OSNT(sim)
    connect(tester.port(0), tester.port(1))

    # 2. Configure the generator: one 512-byte UDP template, 5 Gbps,
    #    hardware timestamps embedded in each departing frame.
    generator = tester.generator(0)
    generator.load_template(build_udp(frame_size=512))
    generator.set_rate("5Gbps").embed_timestamps().for_duration(ms(2))

    # 3. Capture everything arriving at port 1.
    monitor = tester.monitor(1)
    monitor.start_capture()

    # 4. Run the virtual hardware.
    generator.start()
    sim.run()

    # 5. Latency = hardware RX stamp − embedded hardware TX stamp.
    result = latency_from_capture(monitor.packets)
    summary = result.summary

    print_table(
        ["metric", "value"],
        [
            ["packets sent", generator.packets_sent],
            ["packets captured", monitor.captured_count],
            ["capture drops", monitor.capture_drops],
            ["achieved rate", format_rate(generator.stats.achieved_bps())],
            ["latency mean (us)", f"{summary.mean / 1e6:.4f}"],
            ["latency p99 (us)", f"{summary.p99 / 1e6:.4f}"],
            ["jitter rfc3550 (ns)", f"{result.jitter_rfc3550_ps / 1e3:.1f}"],
            ["timestamp resolution (ns)", 6.25],
        ],
        title="OSNT loopback quickstart",
    )


if __name__ == "__main__":
    main()
