#!/usr/bin/env python3
"""Hardware capture reducers: filters, packet cutting and thinning.

The OSNT monitor's DMA path to the host is loss-limited: it cannot carry
4×10G of capture. This example overloads it on purpose, then shows how
each in-hardware reducer — wildcard filters, snaplen cutting, 1-in-N
thinning — restores lossless (or representative) capture, and how the
hash unit keeps cut captures correlatable.

Run:  python examples/capture_filtering.py
"""

from repro.analysis import print_table
from repro.hw import connect
from repro.net import build_udp
from repro.osnt import OSNT
from repro.sim import Simulator
from repro.units import GBPS, ms


def run_variant(description: str, configure) -> list:
    """One overload run; ``configure(monitor)`` applies the reducer."""
    sim = Simulator()
    tester = OSNT(sim, dma_bandwidth_bps=2 * GBPS)  # tight host path
    connect(tester.port(0), tester.port(1))
    monitor = tester.monitor(1)
    configure(monitor)
    generator = tester.generator(0)
    # Interleaved flows: every 8th packet is "interesting" (port 53),
    # the rest are bulk (ports 8000-8006) — so the filter variant keeps
    # an eighth of the load.
    from repro.osnt.generator import UdpPortSweep

    class DnsEvery8(UdpPortSweep):
        def apply(self, data, index):
            if index % 8 == 0:
                return UdpPortSweep("dst", 53, 1).apply(data, 0)
            return super().apply(data, index)

    generator.load_template(
        build_udp(frame_size=1024),
        modifiers=[DnsEvery8("dst", 8000, 7)],
    )
    generator.set_load(0.9).for_duration(ms(4))
    generator.start()
    sim.run()
    pipeline = tester.device.monitor(1)
    return [
        description,
        generator.packets_sent,
        pipeline.captured,
        pipeline.dma_drops_at_port,
        f"{pipeline.captured / max(1, pipeline.captured + pipeline.dma_drops_at_port):.1%}",
    ]


def main() -> None:
    rows = [
        run_variant("no reduction", lambda m: m.start_capture()),
        run_variant("cut to 64B", lambda m: m.start_capture(snaplen=64)),
        run_variant("thin 1-in-8", lambda m: m.start_capture(keep_one_in=8)),
        run_variant(
            "cut + thin + hash",
            lambda m: m.start_capture(snaplen=64, keep_one_in=8, hash_packets=True),
        ),
        run_variant(
            "filter dst-port 53",
            lambda m: m.start_capture().add_filter(protocol=17, dst_port=53),
        ),
    ]
    print_table(
        ["variant", "offered", "captured", "dma drops", "capture rate"],
        rows,
        title="Loss-limited host path vs hardware reducers (DMA capped at 2 Gbps)",
    )

    # Show that hashing survives cutting: rerun and inspect a packet.
    sim = Simulator()
    tester = OSNT(sim)
    connect(tester.port(0), tester.port(1))
    monitor = tester.monitor(1)
    monitor.start_capture(snaplen=64, hash_packets=True)
    generator = tester.generator(0)
    generator.load_template(build_udp(frame_size=1518), count=1)
    generator.start()
    sim.run()
    packet = monitor.packets[0]
    print(
        f"cut capture: {packet.capture_length} of {len(packet.data)} bytes kept, "
        f"full-frame hash {packet.hash_value.hex()} still identifies the packet"
    )


if __name__ == "__main__":
    main()
