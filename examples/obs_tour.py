#!/usr/bin/env python3
"""Tour of repro.obs: trace one packet through the Figure-2 topology.

Builds the demo Part I testbed (OSNT port 0 → legacy switch → OSNT
port 1), arms the causal observability stack and sends a single
timestamped probe:

* the :class:`~repro.obs.SpanRecorder` records the packet's lifecycle
  span — generator → TX stamp → MAC → link → switch lookup → re-emit →
  capture → host DMA — correlated across the switch by the in-band
  64-bit TX timestamp (the paper's correlation trick, applied to
  observability);
* the :class:`~repro.obs.SimProfiler` attributes the run's wall-clock
  to kernel handlers and reports the "sim speedometer";
* the whole thing exports as a JSONL packet-story table and a Chrome
  ``trace_event`` file (open at chrome://tracing or
  https://ui.perfetto.dev — spans render beside the kernel trace).

Run:  python examples/obs_tour.py
"""

import json
import os
import tempfile

from repro.obs import SimProfiler, SpanRecorder
from repro.sim import Simulator
from repro.telemetry import Tracer, write_chrome_trace
from repro.testbed.topology import legacy_testbed
from repro.testbed.workloads import udp_template
from repro.units import to_us


def main() -> None:
    sim = Simulator()
    tracer = Tracer()
    sim.set_tracer(tracer)
    spans = SpanRecorder().arm(sim)
    profiler = SimProfiler().attach(sim)

    bed = legacy_testbed(sim)
    bed.teach_mac_table("02:00:00:00:00:02")
    bed.monitor.start_capture()
    bed.generator.load_template(udp_template(256), count=1)
    bed.generator.set_load(0.1).embed_timestamps()
    bed.generator.start()
    sim.run()
    profiler.detach()

    # -- the packet story ---------------------------------------------------
    [span] = spans.spans()
    story = span.as_story()
    print(f"packet span {story['span']}: origin {story['origin']}, "
          f"outcome {story['outcome']}")
    print(f"  travelled as packet ids {story['packet_ids']} "
          f"(the switch re-emitted a fresh frame; the raw TX stamp "
          f"{story['tx_stamp_raw']:#x} ties them together)")
    born = story["born_ps"]
    for hop in story["hops"]:
        detail = hop.get("detail", {})
        where = ", ".join(f"{k}={v}" for k, v in detail.items())
        print(f"  +{to_us(hop['t_ps'] - born):8.3f} µs  {hop['hop']:<14} {where}")
    print(f"  total journey: {to_us(story['end_ps'] - born):.3f} µs\n")

    # -- the profiler -------------------------------------------------------
    print(profiler.format_report(top_n=5))
    print()

    # -- the exports --------------------------------------------------------
    out_dir = tempfile.mkdtemp(prefix="obs-tour-")
    stories_path = os.path.join(out_dir, "packets.jsonl")
    trace_path = os.path.join(out_dir, "trace.json")
    spans.write_stories(stories_path)
    events = write_chrome_trace(trace_path, tracer, span_recorder=spans)
    with open(stories_path) as handle:
        assert json.loads(handle.readline())["span"] == span.span_id
    print(f"wrote packet stories to {stories_path}")
    print(f"wrote {events} Chrome trace events to {trace_path} "
          f"(load in chrome://tracing or ui.perfetto.dev)")


if __name__ == "__main__":
    main()
