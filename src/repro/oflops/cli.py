"""``oflops-turbo`` — run measurement modules against the simulated DUT.

Since the sweep-runner redesign this CLI is a thin front-end over the
``oflops`` scenario: the flags are packed into a declarative
:class:`~repro.runner.ExperimentSpec` with one shard per module, so the
same runs can be scripted, sharded and resumed via ``osnt-sweep``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..devices.openflow_switch import PROFILES
from ..units import us
from .modules import ALL_MODULES
from .report import render_result


def build_spec(args, names: List[str]):
    """The declarative spec equivalent to one CLI invocation."""
    from ..runner import ExperimentSpec

    return ExperimentSpec(
        name="oflops-turbo",
        scenario="oflops",
        params={
            "dut": args.dut,
            "barrier_mode": args.barrier_mode,
            "firmware_delay": us(args.firmware_delay_us),
            "table_write": us(args.table_write_us),
            "control_latency": us(args.control_latency_us),
            "n_rules": args.rules,
            # Pin the legacy seed so CLI output matches the pre-spec
            # runner (OflopsContext's default OSNT root seed).
            "seed": 0,
        },
        axes={"module": names},
        timeout_s=None,
        retries=0,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="oflops-turbo",
        description="OFLOPS-turbo: OpenFlow switch evaluation (simulated DUT)",
    )
    parser.add_argument(
        "modules",
        nargs="*",
        default=[],
        help=f"modules to run (default: all). Available: {', '.join(sorted(ALL_MODULES))}",
    )
    parser.add_argument(
        "--dut",
        choices=sorted(PROFILES),
        default=None,
        help="use a named switch profile instead of the individual knobs",
    )
    parser.add_argument(
        "--barrier-mode",
        choices=["spec", "eager"],
        default="spec",
        help="DUT barrier behaviour (eager = replies before table writes land)",
    )
    parser.add_argument(
        "--firmware-delay-us", type=float, default=10.0, help="per-message CPU cost"
    )
    parser.add_argument(
        "--table-write-us", type=float, default=100.0, help="per-rule TCAM write cost"
    )
    parser.add_argument(
        "--control-latency-us", type=float, default=50.0, help="one-way channel latency"
    )
    parser.add_argument("--rules", type=int, default=32, help="rules for table tests")
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for the module sweep (0 = inline)",
    )
    parser.add_argument(
        "--spec",
        action="store_true",
        help="print the equivalent osnt-sweep spec JSON and exit",
    )
    args = parser.parse_args(argv)

    names = args.modules or sorted(ALL_MODULES)
    unknown = [name for name in names if name not in ALL_MODULES]
    if unknown:
        parser.error(f"unknown module(s): {', '.join(unknown)}")

    from ..runner import run_spec

    spec = build_spec(args, names)
    if args.spec:
        print(spec.to_json(indent=2))
        return 0
    report = run_spec(spec, workers=args.workers)
    for shard in report.ok:
        print(render_result(shard.result))
        print()
    for shard in report.failed:
        print(
            f"module {shard.params['module']!r} failed: {shard.error}",
            file=sys.stderr,
        )
    return 1 if report.failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
