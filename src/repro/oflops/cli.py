"""``oflops-turbo`` — run measurement modules against the simulated DUT."""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..devices.openflow_switch import PROFILES, SwitchProfile
from ..units import us
from .context import OflopsContext
from .module import ModuleRunner
from .modules import ALL_MODULES
from .report import render_result


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="oflops-turbo",
        description="OFLOPS-turbo: OpenFlow switch evaluation (simulated DUT)",
    )
    parser.add_argument(
        "modules",
        nargs="*",
        default=[],
        help=f"modules to run (default: all). Available: {', '.join(sorted(ALL_MODULES))}",
    )
    parser.add_argument(
        "--dut",
        choices=sorted(PROFILES),
        default=None,
        help="use a named switch profile instead of the individual knobs",
    )
    parser.add_argument(
        "--barrier-mode",
        choices=["spec", "eager"],
        default="spec",
        help="DUT barrier behaviour (eager = replies before table writes land)",
    )
    parser.add_argument(
        "--firmware-delay-us", type=float, default=10.0, help="per-message CPU cost"
    )
    parser.add_argument(
        "--table-write-us", type=float, default=100.0, help="per-rule TCAM write cost"
    )
    parser.add_argument(
        "--control-latency-us", type=float, default=50.0, help="one-way channel latency"
    )
    parser.add_argument("--rules", type=int, default=32, help="rules for table tests")
    args = parser.parse_args(argv)

    names = args.modules or sorted(ALL_MODULES)
    unknown = [name for name in names if name not in ALL_MODULES]
    if unknown:
        parser.error(f"unknown module(s): {', '.join(unknown)}")

    for name in names:
        if args.dut is not None:
            profile = PROFILES[args.dut]
        else:
            profile = SwitchProfile(
                barrier_mode=args.barrier_mode,
                firmware_delay_ps=us(args.firmware_delay_us),
                table_write_ps=us(args.table_write_us),
            )
        ctx = OflopsContext(
            profile=profile, control_latency_ps=us(args.control_latency_us)
        )
        module_cls = ALL_MODULES[name]
        if name in ("flow_mod_latency", "forwarding_consistency"):
            module = module_cls(n_rules=args.rules)
        else:
            module = module_cls()
        result = ModuleRunner(ctx).run(module)
        print(render_result(result))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
