"""Result rendering for OFLOPS-turbo runs."""

from __future__ import annotations

from typing import Any, Dict, List


def render_result(result: Dict[str, Any]) -> str:
    """One module result as readable key/value lines."""
    lines = [f"== {result.get('module', 'result')} =="]
    for key in sorted(result):
        if key == "module":
            continue
        value = result[key]
        if isinstance(value, float):
            rendered = f"{value:,.3f}"
        elif isinstance(value, list) and len(value) > 8:
            head = ", ".join(f"{v:,.1f}" if isinstance(v, float) else str(v) for v in value[:8])
            rendered = f"[{head}, ... {len(value)} values]"
        else:
            rendered = str(value)
        lines.append(f"  {key:<28} {rendered}")
    return "\n".join(lines)


def render_results(results: List[Dict[str, Any]]) -> str:
    return "\n\n".join(render_result(result) for result in results)
