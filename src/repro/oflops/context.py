"""The OFLOPS-turbo measurement context: testbed + three channels."""

from __future__ import annotations

from typing import Optional

from ..devices.openflow_switch import SwitchProfile
from ..sim import Simulator
from ..testbed.topology import openflow_testbed
from ..units import us
from .channels import ControlChannelHandle, DataChannelHandle, SnmpChannelHandle


class OflopsContext:
    """Everything a measurement module may touch.

    Built around the Figure-2 topology: OSNT port 0 feeds switch port 1
    (OF numbering), switch port 2 feeds OSNT port 1 ("egress" monitor),
    and with cross ports wired, switch port 3 feeds OSNT port 2
    ("egress2") — used by consistency tests that redirect traffic.
    """

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        profile: Optional[SwitchProfile] = None,
        control_latency_ps: int = us(50),
        wire_cross_ports: bool = True,
        impairments=None,
        seed: int = 0,
        **osnt_kwargs,
    ) -> None:
        self.sim = sim or Simulator()
        self.testbed = openflow_testbed(
            self.sim,
            profile=profile,
            control_latency_ps=control_latency_ps,
            wire_cross_ports=wire_cross_ports,
            **osnt_kwargs,
        )
        self.control = ControlChannelHandle(self.sim, self.testbed.controller)
        monitors = {"egress": self.testbed.tester.monitor(1)}
        if wire_cross_ports:
            monitors["egress2"] = self.testbed.tester.monitor(2)
        self.data = DataChannelHandle(self.sim, self.testbed.generator, monitors)
        self.snmp = SnmpChannelHandle(self.sim, self.testbed.snmp)
        #: Framework-level telemetry: control-channel visibility plus
        #: per-module run stats (see :class:`~repro.oflops.module.ModuleRunner`).
        #: :meth:`snapshot` merges this with the tester card's registry so
        #: one read covers all three measurement channels.
        from ..telemetry import MetricsRegistry

        self.metrics = MetricsRegistry("oflops")
        self.metrics.gauge("control.received", lambda: len(self.control.received))
        self.metrics.gauge("control.sent", lambda: len(self.control.send_times))
        self.metrics.gauge("control.replies", lambda: len(self.control.reply_times))
        self.metrics.gauge("control.retries", lambda: self.control.retry_count)
        self.metrics.gauge(
            "control.dropped", lambda: self.testbed.channel.dropped_messages
        )
        #: OF port numbers (1-based) of the wired paths.
        self.ingress_of_port = 1
        self.egress_of_port = 2
        self.egress2_of_port = 3 if wire_cross_ports else None
        #: Armed fault injector, when an ImpairmentSpec was supplied.
        self.injector = None
        from ..faults import ImpairmentSpec

        spec = ImpairmentSpec.from_any(impairments)
        if not spec.empty:
            from ..faults import FaultInjector

            device = self.testbed.tester.device
            self.injector = FaultInjector(
                self.sim, spec, seed=seed, registry=self.metrics
            )
            self.injector.bind(
                link=self.testbed.links[0],
                link_egress=self.testbed.links[1],
                dma=device.dma,
                clock=device,
                control=self.testbed.channel,
            ).arm()

    def snapshot(self) -> dict:
        """Tester-card and framework telemetry in one sorted read."""
        combined = dict(self.testbed.tester.snapshot())
        combined.update(self.metrics.snapshot())
        return dict(sorted(combined.items()))

    def snapshot_openmetrics(self) -> str:
        """The combined snapshot as OpenMetrics text (``oflops`` prefix)."""
        from ..telemetry import snapshot_to_openmetrics

        return snapshot_to_openmetrics(self.snapshot(), prefix="oflops")

    def arm_observability(self, spans=None, profiler=None, tracer=None, waves=None):
        """Attach observability hooks to this context's simulator.

        Any of a :class:`~repro.obs.SpanRecorder`, a
        :class:`~repro.obs.SimProfiler`, a
        :class:`~repro.telemetry.Tracer` and a
        :class:`~repro.telemetry.WaveformRecorder` may be passed;
        whichever are given get armed on ``self.sim``, and the tuple
        ``(spans, profiler, tracer)`` is returned for chaining.
        """
        if tracer is not None:
            self.sim.set_tracer(tracer)
        if spans is not None:
            spans.arm(self.sim)
        if profiler is not None:
            profiler.attach(self.sim)
        if waves is not None:
            waves.arm(self.sim)
        return spans, profiler, tracer

    @property
    def switch(self):
        return self.testbed.switch

    def run_until(self, time_ps: int) -> None:
        self.sim.run(until=time_ps)

    def run_for(self, duration_ps: int) -> None:
        self.sim.run(until=self.sim.now + duration_ps)
