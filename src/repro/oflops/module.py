"""The OFLOPS measurement-module framework.

Like the original OFLOPS, a measurement is a *module*: a class with a
lifecycle the runner drives. Modules receive the context (all three
channels), arm whatever callbacks they need, let the simulation advance,
and produce a result dictionary.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import OflopsError
from ..units import seconds
from .context import OflopsContext


class MeasurementModule:
    """Base class for OFLOPS-turbo measurement modules."""

    #: Short identifier used by the runner/CLI.
    name = "base"
    description = ""
    #: Hard cap on simulated time for one run.
    max_duration_ps = seconds(10)
    #: Degradable modules survive the deadline: instead of raising,
    #: the runner collects whatever partial results exist and marks
    #: them ``degraded=True`` — the behaviour fault-injection runs
    #: (flapped control channels, lossy links) need. A module opting
    #: in must make its :meth:`collect` tolerate missing replies.
    degradable = False

    def setup(self, ctx: OflopsContext) -> None:
        """Prepare DUT state (install baseline rules, start captures)."""

    def start(self, ctx: OflopsContext) -> None:
        """Kick off the measured activity (traffic, message bursts)."""
        raise NotImplementedError

    def is_finished(self, ctx: OflopsContext) -> bool:
        """Polled by the runner between simulation slices."""
        raise NotImplementedError

    def collect(self, ctx: OflopsContext) -> Dict[str, Any]:
        """Extract the results after the run completes."""
        raise NotImplementedError


class ModuleRunner:
    """Drives one module through its lifecycle on a fresh context."""

    def __init__(self, ctx: Optional[OflopsContext] = None, slice_ps: int = None) -> None:
        from ..units import ms

        self.ctx = ctx or OflopsContext()
        self.slice_ps = slice_ps or ms(1)

    def run(self, module: MeasurementModule) -> Dict[str, Any]:
        ctx = self.ctx
        tracer = ctx.sim.tracer
        if tracer is not None:
            tracer.instant(ctx.sim.now, "oflops", "setup", {"module": module.name})
        module.setup(ctx)
        started_at = ctx.sim.now
        if tracer is not None:
            tracer.instant(started_at, "oflops", "start", {"module": module.name})
        module.start(ctx)
        deadline = started_at + module.max_duration_ps
        degraded = False
        while not module.is_finished(ctx):
            if ctx.sim.now >= deadline:
                if not module.degradable:
                    raise OflopsError(
                        f"module {module.name!r} did not finish within "
                        f"{module.max_duration_ps} ps of simulated time"
                    )
                degraded = True
                if tracer is not None:
                    tracer.instant(
                        ctx.sim.now, "oflops", "degraded", {"module": module.name}
                    )
                break
            ctx.run_until(min(ctx.sim.now + self.slice_ps, deadline))
        results = module.collect(ctx)
        if degraded:
            results["degraded"] = True
        results.setdefault("module", module.name)
        results.setdefault("simulated_ps", ctx.sim.now - started_at)
        if tracer is not None:
            tracer.instant(
                ctx.sim.now, "oflops", "finish",
                {"module": module.name, "simulated_ps": results["simulated_ps"]},
            )
        metrics = getattr(ctx, "metrics", None)
        if metrics is not None:
            metrics.counter("module.runs").inc()
            if degraded:
                metrics.counter("module.degraded").inc()
            metrics.histogram("module.duration_ps", unit="ps").record(
                results["simulated_ps"]
            )
        return results
