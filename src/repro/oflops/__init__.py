"""OFLOPS-turbo: OpenFlow switch evaluation on top of OSNT.

"an holistic OpenFlow switch evaluation framework which takes advantage
of the OSNT high-precision measurement capabilities ... measurement
modules which can access information from multiple measurement channels
(data and control plane and SNMP)."
"""

from .channels import (
    ControlChannelHandle,
    DataChannelHandle,
    SnmpChannelHandle,
    TimedMessage,
)
from .context import OflopsContext
from .module import MeasurementModule, ModuleRunner
from .modules import (
    ALL_MODULES,
    EchoLatencyModule,
    FlowModLatencyModule,
    ForwardingConsistencyModule,
    PacketInLatencyModule,
    ThroughputModule,
)
from .report import render_result, render_results

__all__ = [
    "ALL_MODULES",
    "ControlChannelHandle",
    "DataChannelHandle",
    "EchoLatencyModule",
    "FlowModLatencyModule",
    "ForwardingConsistencyModule",
    "MeasurementModule",
    "ModuleRunner",
    "OflopsContext",
    "PacketInLatencyModule",
    "SnmpChannelHandle",
    "ThroughputModule",
    "TimedMessage",
    "render_result",
    "render_results",
]
