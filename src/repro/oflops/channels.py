"""OFLOPS-turbo measurement channels.

The framework's defining feature (per the paper) is that one measurement
module "can access information from multiple measurement channels (data
and control plane and SNMP)". Each channel wraps a raw facility with the
bookkeeping a module needs:

* :class:`ControlChannelHandle` — typed OpenFlow send helpers, xid
  allocation, reply correlation and per-message-type timelines;
* :class:`DataChannelHandle` — OSNT generation + capture with hardware
  timestamps;
* :class:`SnmpChannelHandle` — periodic counter polling.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..devices.snmp_agent import (
    OID_IF_IN_UCAST,
    OID_IF_OUT_UCAST,
    SnmpAgent,
)
from ..net.packet import Packet
from ..openflow import constants as ofp
from ..openflow.actions import Action
from ..openflow.connection import ControlEndpoint
from ..openflow.match import Match
from ..openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    Message,
    PacketIn,
    StatsReply,
    StatsRequest,
)
from ..osnt.api import TrafficGenerator, TrafficMonitor
from ..sim import Simulator


@dataclass
class TimedMessage:
    """A control-plane message with its arrival time."""

    time_ps: int
    message: Message


#: Decoders that build a ChannelEvent payload dict per message class.
_EVENT_PAYLOADS = {
    PacketIn: lambda m: {
        "buffer_id": m.buffer_id,
        "total_len": m.total_len,
        "in_port": m.in_port,
        "reason": m.reason,
        "data_len": len(m.data),
    },
    ErrorMsg: lambda m: {
        "err_type": m.err_type,
        "err_code": m.err_code,
        "data_len": len(m.data),
    },
    FlowRemoved: lambda m: {
        "reason": m.reason,
        "priority": m.priority,
        "packet_count": m.packet_count,
        "byte_count": m.byte_count,
        "duration_sec": m.duration_sec,
    },
    EchoReply: lambda m: {"payload_len": len(m.payload)},
    StatsReply: lambda m: {
        "stats_type": m.stats_type,
        "flags": m.flags,
        "body_len": len(m.reply_body),
    },
    FeaturesReply: lambda m: {
        "datapath_id": m.datapath_id,
        "n_buffers": m.n_buffers,
        "n_tables": m.n_tables,
        "capabilities": m.capabilities,
    },
}


def _event_kind(message: Message) -> str:
    """Stable snake_case kind name: ``PacketIn`` → ``packet_in``."""
    name = type(message).__name__
    out = [name[0].lower()]
    for ch in name[1:]:
        if ch.isupper():
            out.append("_")
            out.append(ch.lower())
        else:
            out.append(ch)
    return "".join(out)


@dataclass
class ChannelEvent:
    """Typed view of one received control-plane message.

    This is the supported way for measurement modules to inspect the
    control timeline: a stable ``kind`` string (``"packet_in"``,
    ``"error_msg"``, ``"flow_removed"``, ...), the arrival time, the
    message ``xid`` and a decoded ``payload`` dict of the fields a
    module actually reads. The raw :class:`~repro.openflow.messages.Message`
    stays reachable via :attr:`message` for anything exotic.
    """

    timestamp_ps: int
    kind: str
    xid: int
    payload: Dict[str, Any]
    message: Message

    @classmethod
    def from_timed(cls, timed: TimedMessage) -> "ChannelEvent":
        message = timed.message
        decode = _EVENT_PAYLOADS.get(type(message))
        payload = decode(message) if decode is not None else {}
        return cls(
            timestamp_ps=timed.time_ps,
            kind=_event_kind(message),
            xid=message.xid,
            payload=payload,
            message=message,
        )


class ControlChannelHandle:
    """The controller side of the OpenFlow session, instrumented."""

    def __init__(self, sim: Simulator, endpoint: ControlEndpoint) -> None:
        self.sim = sim
        self.endpoint = endpoint
        endpoint.on_message = self._on_message
        self._next_xid = 1
        self.received: List[TimedMessage] = []
        self.send_times: Dict[int, int] = {}
        self.reply_times: Dict[int, int] = {}
        self._listeners: List[Callable[[Message], None]] = []
        #: Barrier resends performed by :meth:`sync_barrier` across this
        #: handle's lifetime (0 on a healthy channel).
        self.retry_count = 0

    def add_listener(self, listener: Callable[[Message], None]) -> None:
        self._listeners.append(listener)

    def _on_message(self, message: Message) -> None:
        self.received.append(TimedMessage(self.sim.now, message))
        if isinstance(message, (BarrierReply, EchoReply, StatsReply, FeaturesReply)):
            self.reply_times.setdefault(message.xid, self.sim.now)
        for listener in self._listeners:
            listener(message)

    def _send(self, message: Message) -> int:
        if message.xid == 0:
            message.xid = self._next_xid
            self._next_xid += 1
        self.send_times[message.xid] = self.sim.now
        self.endpoint.send(message)
        return message.xid

    # -- typed send helpers --------------------------------------------------

    def add_flow(
        self,
        match: Match,
        actions: Sequence[Action],
        priority: int = 0x8000,
        idle_timeout: int = 0,
        hard_timeout: int = 0,
        flags: int = 0,
    ) -> int:
        return self._send(
            FlowMod(
                match=match,
                actions=list(actions),
                priority=priority,
                idle_timeout=idle_timeout,
                hard_timeout=hard_timeout,
                flags=flags,
            )
        )

    def modify_flow(
        self, match: Match, actions: Sequence[Action], priority: int = 0x8000,
        strict: bool = True,
    ) -> int:
        command = ofp.OFPFC_MODIFY_STRICT if strict else ofp.OFPFC_MODIFY
        return self._send(
            FlowMod(match=match, actions=list(actions), priority=priority, command=command)
        )

    def delete_flow(self, match: Match, priority: int = 0, strict: bool = False) -> int:
        command = ofp.OFPFC_DELETE_STRICT if strict else ofp.OFPFC_DELETE
        return self._send(FlowMod(match=match, priority=priority, command=command))

    def barrier(self) -> int:
        return self._send(BarrierRequest())

    def echo(self, payload: bytes = b"") -> int:
        return self._send(EchoRequest(payload=payload))

    def request_features(self) -> int:
        return self._send(FeaturesRequest())

    def request_stats(self, stats_type: int, body: bytes = b"") -> int:
        return self._send(StatsRequest(stats_type=stats_type, request_body=body))

    def sync_barrier(
        self,
        run_for: Callable[[int], None],
        timeout_ps: int,
        retries: int = 0,
    ) -> Optional[int]:
        """Send a barrier and wait for its reply, with bounded resends.

        ``run_for(duration_ps)`` advances the simulation (modules pass
        ``ctx.run_for``). One barrier is sent and the sim runs for
        ``timeout_ps``; if the reply never lands (e.g. the request died
        on a flapped channel) up to ``retries`` fresh barriers follow,
        each with its own timeout. Returns the RTT (ps) of the first
        answered barrier, or ``None`` if every attempt timed out —
        callers degrade explicitly instead of crashing. Resends are
        counted in :attr:`retry_count`. On a healthy channel this is
        exactly one send plus one ``run_for``, so the no-fault event
        timeline is unchanged.
        """
        xid = self.barrier()
        run_for(timeout_ps)
        rtt = self.rtt_of(xid)
        for _ in range(retries):
            if rtt is not None:
                break
            self.retry_count += 1
            xid = self.barrier()
            run_for(timeout_ps)
            rtt = self.rtt_of(xid)
        return rtt

    # -- measurement accessors -------------------------------------------------

    def rtt_of(self, xid: int) -> Optional[int]:
        """Round-trip time of a request, if its reply has arrived."""
        if xid not in self.send_times or xid not in self.reply_times:
            return None
        return self.reply_times[xid] - self.send_times[xid]

    def events(self, kind: Optional[str] = None) -> List[ChannelEvent]:
        """The received timeline as typed :class:`ChannelEvent` views,
        optionally filtered by kind (``"packet_in"``, ``"error_msg"``,
        ``"flow_removed"``, ...)."""
        events = [ChannelEvent.from_timed(t) for t in self.received]
        if kind is None:
            return events
        return [e for e in events if e.kind == kind]

    def packet_in_events(self) -> List[ChannelEvent]:
        return self.events("packet_in")

    def error_events(self) -> List[ChannelEvent]:
        return self.events("error_msg")

    def flow_removed_events(self) -> List[ChannelEvent]:
        return self.events("flow_removed")

    # -- deprecated raw accessors ---------------------------------------------

    def _deprecated_raw(self, replacement: str) -> None:
        warnings.warn(
            f"raw TimedMessage accessors are deprecated; use {replacement}",
            DeprecationWarning,
            stacklevel=3,
        )

    def packet_ins(self) -> List[TimedMessage]:
        """Deprecated: use :meth:`packet_in_events`."""
        self._deprecated_raw("packet_in_events()")
        return [t for t in self.received if isinstance(t.message, PacketIn)]

    def errors(self) -> List[TimedMessage]:
        """Deprecated: use :meth:`error_events`."""
        self._deprecated_raw("error_events()")
        return [t for t in self.received if isinstance(t.message, ErrorMsg)]

    def flow_removed(self) -> List[TimedMessage]:
        """Deprecated: use :meth:`flow_removed_events`."""
        self._deprecated_raw("flow_removed_events()")
        return [t for t in self.received if isinstance(t.message, FlowRemoved)]


class DataChannelHandle:
    """OSNT generation + capture bound to the testbed's data ports."""

    def __init__(
        self,
        sim: Simulator,
        generator: TrafficGenerator,
        monitors: Dict[str, TrafficMonitor],
    ) -> None:
        self.sim = sim
        self.generator = generator
        self.monitors = monitors

    def monitor(self, name: str = "egress") -> TrafficMonitor:
        return self.monitors[name]

    def start_capture(self, **kwargs) -> None:
        for monitor in self.monitors.values():
            monitor.start_capture(**kwargs)

    def captured(self, name: str = "egress") -> List[Packet]:
        return self.monitors[name].packets


@dataclass
class SnmpSample:
    time_ps: int
    values: Dict[str, object] = field(default_factory=dict)


class SnmpChannelHandle:
    """Periodic counter polling of the DUT's SNMP agent."""

    def __init__(self, sim: Simulator, agent: SnmpAgent) -> None:
        self.sim = sim
        self.agent = agent
        self.samples: List[SnmpSample] = []
        self._polling = False

    def poll_port_counters(self, of_port: int, callback=None) -> None:
        """One async sample of a port's in/out packet counters."""
        oids = [f"{OID_IF_IN_UCAST}.{of_port}", f"{OID_IF_OUT_UCAST}.{of_port}"]

        def collect(values: Dict[str, object]) -> None:
            sample = SnmpSample(time_ps=self.sim.now, values=values)
            self.samples.append(sample)
            if callback is not None:
                callback(sample)

        self.agent.get_many(oids, collect)

    def start_polling(self, of_port: int, interval_ps: int) -> None:
        """Poll a port's counters on a fixed period (daemon events)."""
        self._polling = True

        def tick() -> None:
            if not self._polling:
                return
            self.poll_port_counters(of_port)
            self.sim.call_after(interval_ps, tick, daemon=True)

        self.sim.call_after(interval_ps, tick, daemon=True)

    def stop_polling(self) -> None:
        self._polling = False
