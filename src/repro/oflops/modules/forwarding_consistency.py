"""Forwarding consistency during large flow-table updates (demo Part II).

Rules steering N flows to one port are burst-rewritten to another. The
module counts probes still delivered to the *old* port after (a) the
update was issued and (b) the switch's barrier claimed completion. A
spec-honest switch shows zero post-barrier staleness; an eager switch
keeps forwarding stale for the whole residual table-write backlog.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ...openflow.actions import OutputAction
from ...openflow.match import Match
from ...osnt.generator.schedule import ConstantGap
from ...testbed.workloads import port_sweep_source
from ...units import ms, us
from ..context import OflopsContext
from ..module import MeasurementModule


class ForwardingConsistencyModule(MeasurementModule):
    name = "forwarding_consistency"
    description = "stale forwarding during a burst rule update"

    def __init__(
        self,
        n_rules: int = 32,
        base_port: int = 7000,
        probe_gap_ps: int = us(2),
        settle_ps: int = ms(5),
    ) -> None:
        self.n_rules = n_rules
        self.base_port = base_port
        self.probe_gap_ps = probe_gap_ps
        self.settle_ps = settle_ps
        self.t_update: Optional[int] = None
        self._barrier_xid: Optional[int] = None
        self._finish_at: Optional[int] = None

    def setup(self, ctx: OflopsContext) -> None:
        if ctx.egress2_of_port is None:
            raise ValueError("consistency module needs cross ports wired")
        for index in range(self.n_rules):
            ctx.control.add_flow(
                Match.exact(dl_type=0x0800, nw_proto=17, tp_dst=self.base_port + index),
                actions=[OutputAction(ctx.egress_of_port)],
                priority=100,
            )
        setup_barrier = ctx.control.barrier()
        ctx.run_for(ms(10))
        assert ctx.control.rtt_of(setup_barrier) is not None
        ctx.data.start_capture()
        engine = ctx.data.generator._engine
        engine.configure(
            port_sweep_source(128, self.n_rules, base_port=self.base_port),
            schedule=ConstantGap(self.probe_gap_ps),
        )
        engine.start()
        ctx.run_for(ms(1))  # steady state through the old port

    def start(self, ctx: OflopsContext) -> None:
        self.t_update = ctx.sim.now
        for index in range(self.n_rules):
            ctx.control.modify_flow(
                Match.exact(dl_type=0x0800, nw_proto=17, tp_dst=self.base_port + index),
                actions=[OutputAction(ctx.egress2_of_port)],
                priority=100,
            )
        self._barrier_xid = ctx.control.barrier()

    def is_finished(self, ctx: OflopsContext) -> bool:
        if ctx.control.rtt_of(self._barrier_xid) is None:
            return False
        if self._finish_at is None:
            self._finish_at = ctx.sim.now + self.settle_ps
        return ctx.sim.now >= self._finish_at

    def collect(self, ctx: OflopsContext) -> Dict[str, Any]:
        ctx.data.generator._engine.stop()
        barrier_at = ctx.control.reply_times[self._barrier_xid]
        old_rx = [
            p.rx_timestamp
            for p in ctx.data.captured("egress")
            if p.rx_timestamp >= self.t_update
        ]
        new_rx = [p.rx_timestamp for p in ctx.data.captured("egress2")]
        last_old = max(old_rx) if old_rx else self.t_update
        first_new = min(new_rx) if new_rx else last_old
        return {
            "n_rules": self.n_rules,
            "barrier_mode": ctx.switch.profile.barrier_mode,
            "barrier_latency_us": (barrier_at - self.t_update) / 1e6,
            "stale_during_update": len(old_rx),
            "stale_after_barrier": sum(1 for t in old_rx if t > barrier_at),
            "transition_span_us": max(0, last_old - first_new) / 1e6,
            "new_path_packets": len(new_rx),
        }
