"""Control-plane interaction: packet-in load slows flow installation.

A classic OFLOPS finding: the switch's management CPU serialises *all*
control work, so a burst of table misses (packet-ins) delays concurrent
flow_mod processing. The module measures single-rule install latency
(flow_mod → first forwarded probe) twice — on a quiet switch, and while
a miss storm loads the firmware — and reports the inflation.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ...net.parser import decode
from ...openflow.actions import OutputAction
from ...openflow.match import Match
from ...osnt.generator.schedule import ConstantGap
from ...testbed.workloads import udp_template
from ...units import ms, us
from ..context import OflopsContext
from ..module import MeasurementModule

_PROBE_PORT = 9100
_STORM_PORT = 9990


class ControlInteractionModule(MeasurementModule):
    name = "control_interaction"
    description = "flow_mod install latency, quiet vs under packet-in load"

    def __init__(self, storm_gap_ps: int = us(20), probe_gap_ps: int = us(2)) -> None:
        self.storm_gap_ps = storm_gap_ps
        self.probe_gap_ps = probe_gap_ps
        self.quiet_install_ps: Optional[int] = None
        self.loaded_install_ps: Optional[int] = None
        self._phase = "quiet"
        self._t0: Optional[int] = None
        self._first_forwarded: Optional[int] = None
        self._storm_generator = None

    def setup(self, ctx: OflopsContext) -> None:
        # Drop rule for the probe flows only; storm traffic (different
        # port range) must keep MISSING so it generates packet-ins.
        ctx.control.add_flow(
            Match.exact(dl_type=0x0800, nw_proto=17, tp_dst=_PROBE_PORT),
            actions=[],
            priority=1,
        )
        ctx.control.add_flow(
            Match.exact(dl_type=0x0800, nw_proto=17, tp_dst=_PROBE_PORT + 1),
            actions=[],
            priority=1,
        )
        barrier = ctx.control.barrier()
        ctx.run_for(ms(5))
        assert ctx.control.rtt_of(barrier) is not None
        ctx.data.start_capture()
        ctx.data.monitor("egress")._pipeline.host.add_listener(self._on_capture)
        # Continuous probes alternating the two measured flows.
        engine = ctx.data.generator._engine
        from ...testbed.workloads import port_sweep_source

        engine.configure(
            port_sweep_source(128, 2, base_port=_PROBE_PORT),
            schedule=ConstantGap(self.probe_gap_ps),
        )
        engine.start()
        ctx.run_for(ms(1))

    def start(self, ctx: OflopsContext) -> None:
        # Phase 1 (quiet): install the rule for flow 0 and time it.
        self._phase = "quiet"
        self._begin_install(ctx, _PROBE_PORT)

    def _begin_install(self, ctx: OflopsContext, port: int) -> None:
        self._t0 = ctx.sim.now
        self._first_forwarded = None
        self._target_port = port
        ctx.control.add_flow(
            Match.exact(dl_type=0x0800, nw_proto=17, tp_dst=port),
            actions=[OutputAction(ctx.egress_of_port)],
            priority=100,
        )

    def _on_capture(self, packet) -> None:
        if self._first_forwarded is not None:
            return
        decoded = decode(packet.data)
        if decoded.udp is not None and decoded.udp.dst_port == self._target_port:
            self._first_forwarded = packet.rx_timestamp

    def _start_storm(self, ctx: OflopsContext) -> None:
        """Miss traffic from a second tester port (cross-wired)."""
        storm = ctx.testbed.tester.generator(2)
        storm.load_template(
            udp_template(64, dst_port=_STORM_PORT, src_mac="02:00:00:00:00:07")
        )
        storm.set_gap(self.storm_gap_ps)
        storm.start()
        self._storm_generator = storm

    def is_finished(self, ctx: OflopsContext) -> bool:
        if self._first_forwarded is None:
            return False
        if self._phase == "quiet":
            self.quiet_install_ps = self._first_forwarded - self._t0
            # Phase 2: same measurement for flow 1 under a miss storm.
            self._phase = "loaded"
            self._start_storm(ctx)
            ctx.run_for(ms(1))  # let the storm fill the firmware queue
            self._begin_install(ctx, _PROBE_PORT + 1)
            return False
        self.loaded_install_ps = self._first_forwarded - self._t0
        return True

    def collect(self, ctx: OflopsContext) -> Dict[str, Any]:
        ctx.data.generator._engine.stop()
        if self._storm_generator is not None:
            self._storm_generator.stop()
        return {
            "quiet_install_us": self.quiet_install_ps / 1e6,
            "loaded_install_us": self.loaded_install_ps / 1e6,
            "inflation": self.loaded_install_ps / self.quiet_install_ps,
            "packet_ins_during_run": len(ctx.control.packet_in_events()),
        }
