"""Standard OFLOPS-turbo measurement modules."""

from .echo_latency import EchoLatencyModule
from .flow_expiry import FlowExpiryModule
from .flow_mod_latency import FlowModLatencyModule
from .forwarding_consistency import ForwardingConsistencyModule
from .interaction import ControlInteractionModule
from .packet_in_latency import PacketInLatencyModule
from .port_stats import PortStatsAccuracyModule
from .throughput import ThroughputModule

ALL_MODULES = {
    module.name: module
    for module in (
        ControlInteractionModule,
        EchoLatencyModule,
        FlowExpiryModule,
        FlowModLatencyModule,
        ForwardingConsistencyModule,
        PacketInLatencyModule,
        PortStatsAccuracyModule,
        ThroughputModule,
    )
}

__all__ = [
    "ALL_MODULES",
    "ControlInteractionModule",
    "EchoLatencyModule",
    "FlowExpiryModule",
    "FlowModLatencyModule",
    "ForwardingConsistencyModule",
    "PacketInLatencyModule",
    "PortStatsAccuracyModule",
    "ThroughputModule",
]
