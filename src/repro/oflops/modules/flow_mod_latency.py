"""Flow-table modification latency — the demo's Part II headline test.

"a test which measures the latency to modify the entries of the switch
flow table through control and data plane measurements."

Control-plane view: flow_mod burst followed by a barrier; the barrier
RTT is what the switch *claims*. Data-plane view: OSNT probes cycling
every rule's flow; a rule is *actually* installed when its first probe
emerges from the switch, timestamped in hardware at the capture MAC.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ...net.parser import decode
from ...openflow.actions import OutputAction
from ...openflow.match import Match
from ...osnt.generator.schedule import ConstantGap
from ...testbed.workloads import port_sweep_source
from ...units import ms, us
from ..context import OflopsContext
from ..module import MeasurementModule


class FlowModLatencyModule(MeasurementModule):
    name = "flow_mod_latency"
    description = "flow_mod install latency: barrier vs first forwarded packet"
    #: Survives flapped control channels: missing barrier replies or
    #: unactivated rules degrade the result instead of crashing.
    degradable = True

    def __init__(
        self,
        n_rules: int = 32,
        base_port: int = 6000,
        probe_gap_ps: int = us(2),
        probe_frame_size: int = 128,
    ) -> None:
        self.n_rules = n_rules
        self.base_port = base_port
        self.probe_gap_ps = probe_gap_ps
        self.probe_frame_size = probe_frame_size
        self.activation: Dict[int, int] = {}
        self.t0: Optional[int] = None
        self._barrier_xid: Optional[int] = None
        self._setup_barrier: Optional[int] = None

    # -- lifecycle ----------------------------------------------------------

    def setup(self, ctx: OflopsContext) -> None:
        # Catch-all drop keeps probe misses off the control channel.
        ctx.control.add_flow(Match(), actions=[], priority=1)
        # Bounded resends: on a flapped channel the barrier (or its
        # reply) may be lost; on a healthy one this is a single
        # barrier + run_for, identical to the pre-fault behaviour.
        ctx.control.sync_barrier(ctx.run_for, ms(5), retries=3)
        ctx.data.start_capture()
        ctx.data.monitor("egress")._pipeline.host.add_listener(self._on_capture)
        engine = ctx.data.generator._engine
        engine.configure(
            port_sweep_source(
                self.probe_frame_size, self.n_rules, base_port=self.base_port
            ),
            schedule=ConstantGap(self.probe_gap_ps),
        )
        engine.start()
        ctx.run_for(ms(1))  # confirm steady miss/drop state

    def start(self, ctx: OflopsContext) -> None:
        self.t0 = ctx.sim.now
        for index in range(self.n_rules):
            ctx.control.add_flow(
                Match.exact(dl_type=0x0800, nw_proto=17, tp_dst=self.base_port + index),
                actions=[OutputAction(ctx.egress_of_port)],
                priority=100,
            )
        self._barrier_xid = ctx.control.barrier()

    def _on_capture(self, packet) -> None:
        decoded = decode(packet.data)
        if decoded.udp is None:
            return
        rule = decoded.udp.dst_port - self.base_port
        if 0 <= rule < self.n_rules and rule not in self.activation:
            self.activation[rule] = packet.rx_timestamp

    def is_finished(self, ctx: OflopsContext) -> bool:
        return (
            len(self.activation) == self.n_rules
            and ctx.control.rtt_of(self._barrier_xid) is not None
        )

    def collect(self, ctx: OflopsContext) -> Dict[str, Any]:
        ctx.data.generator._engine.stop()
        # Tolerant of a degraded run: the barrier reply may never have
        # arrived and some rules may never have activated. A healthy run
        # produces exactly the historical result dict.
        barrier_done = ctx.control.reply_times.get(self._barrier_xid)
        activations = [self.activation[i] - self.t0 for i in sorted(self.activation)]
        result: Dict[str, Any] = {
            "n_rules": self.n_rules,
            "barrier_mode": ctx.switch.profile.barrier_mode,
        }
        control_done = None
        if barrier_done is not None:
            control_done = barrier_done - self.t0
            result["control_done_us"] = control_done / 1e6
        if activations:
            data_done = max(activations)
            result["data_done_us"] = data_done / 1e6
            result["first_rule_us"] = min(activations) / 1e6
            result["median_rule_us"] = sorted(activations)[len(activations) // 2] / 1e6
            if control_done is not None:
                result["barrier_understates_by_us"] = (data_done - control_done) / 1e6
            result["per_rule_activation_us"] = [a / 1e6 for a in activations]
        incomplete = barrier_done is None or len(activations) < self.n_rules
        if incomplete or ctx.control.retry_count:
            result["rules_activated"] = len(activations)
            result["control_retries"] = ctx.control.retry_count
        return result
