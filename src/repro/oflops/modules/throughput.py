"""Data-plane throughput through the OpenFlow switch, cross-checked on
all three channels: OSNT counters (data), flow stats (control), and the
interface counters (SNMP)."""

from __future__ import annotations

import struct
from typing import Any, Dict, Optional

from ...openflow import constants as ofp
from ...openflow.actions import OutputAction
from ...openflow.match import Match
from ...testbed.workloads import udp_template
from ...units import ms
from ..context import OflopsContext
from ..module import MeasurementModule


class ThroughputModule(MeasurementModule):
    name = "throughput"
    description = "line-rate forwarding, verified via data/control/SNMP"

    def __init__(
        self,
        load: float = 1.0,
        frame_size: int = 512,
        duration_ps: int = ms(2),
    ) -> None:
        self.load = load
        self.frame_size = frame_size
        self.duration_ps = duration_ps
        self._aggregate_xid: Optional[int] = None
        self._generation_done = False
        self._snmp_done = False

    def setup(self, ctx: OflopsContext) -> None:
        ctx.control.add_flow(
            Match.exact(dl_type=0x0800),
            actions=[OutputAction(ctx.egress_of_port)],
            priority=10,
        )
        barrier = ctx.control.barrier()
        ctx.run_for(ms(5))
        assert ctx.control.rtt_of(barrier) is not None
        ctx.data.start_capture(keep_one_in=64)  # thinned: counters matter here

    def start(self, ctx: OflopsContext) -> None:
        generator = ctx.data.generator
        generator.load_template(udp_template(self.frame_size))
        if self.load >= 1.0:
            generator.at_line_rate()
        else:
            generator.set_load(self.load)
        generator.for_duration(self.duration_ps)
        generator.start()

        def on_done(stats) -> None:
            self._generation_done = True
            # Snapshot the two slower channels once traffic stops.
            self._aggregate_xid = ctx.control.request_stats(ofp.OFPST_AGGREGATE)
            ctx.snmp.poll_port_counters(
                ctx.egress_of_port, callback=lambda s: setattr(self, "_snmp_done", True)
            )

        from ...sim import spawn

        def waiter():
            yield generator.done
            on_done(None)

        spawn(ctx.sim, waiter())

    def is_finished(self, ctx: OflopsContext) -> bool:
        return (
            self._generation_done
            and self._snmp_done
            and self._aggregate_xid in ctx.control.reply_times
        )

    def collect(self, ctx: OflopsContext) -> Dict[str, Any]:
        sent = ctx.data.generator.packets_sent
        received = ctx.data.monitor("egress").rx_packets
        reply = next(
            e.message
            for e in ctx.control.events("stats_reply")
            if e.xid == self._aggregate_xid
        )
        flow_packets, flow_bytes, __ = struct.unpack_from("!QQI", reply.reply_body)
        snmp_out = ctx.snmp.samples[-1].values.get(
            f"1.3.6.1.2.1.2.2.1.17.{ctx.egress_of_port}"
        )
        elapsed = self.duration_ps
        return {
            "load": self.load,
            "frame_size": self.frame_size,
            "sent": sent,
            "received": received,
            "loss": sent - received,
            "flow_stats_packets": flow_packets,
            "snmp_out_packets": snmp_out,
            "forwarding_bps": received * self.frame_size * 8 * 1e12 / elapsed,
            "channels_agree": received == flow_packets == snmp_out,
        }
