"""Packet-in latency: data-plane TX → control-plane arrival.

OSNT embeds a hardware TX timestamp in each probe; the probe misses the
flow table and returns to the OFLOPS host as an OFPT_PACKET_IN carrying
those bytes. The latency is controller-arrival minus embedded TX stamp —
a cross-channel measurement only possible because both channels share
the measurement clock (the paper's core OFLOPS-turbo argument).
"""

from __future__ import annotations

from typing import Any, Dict, List

from ...analysis.stats import SummaryStats
from ...openflow.messages import PacketIn
from ...osnt.generator.schedule import ConstantGap
from ...osnt.generator.tx_timestamp import DEFAULT_OFFSET, extract_ps
from ...testbed.workloads import fixed_size_source
from ...units import us
from ..context import OflopsContext
from ..module import MeasurementModule


class PacketInLatencyModule(MeasurementModule):
    name = "packet_in_latency"
    description = "miss → OFPT_PACKET_IN latency, via embedded TX timestamps"

    def __init__(
        self,
        count: int = 100,
        probe_gap_ps: int = us(100),
        frame_size: int = 128,
    ) -> None:
        self.count = count
        self.probe_gap_ps = probe_gap_ps
        self.frame_size = frame_size
        self.samples: List[int] = []

    def setup(self, ctx: OflopsContext) -> None:
        ctx.control.add_listener(self._make_listener(ctx))

    def start(self, ctx: OflopsContext) -> None:
        engine = ctx.data.generator._engine
        engine.configure(
            fixed_size_source(self.frame_size, count=self.count),
            schedule=ConstantGap(self.probe_gap_ps),
            count=self.count,
            embed_timestamps=True,
        )
        engine.start()

    def _make_listener(self, ctx: OflopsContext):
        def on_message(message) -> None:
            if not isinstance(message, PacketIn):
                return
            if len(message.data) < DEFAULT_OFFSET + 8:
                return
            # Every probe is stamped, so a zero stamp is a real time
            # (the run may start at t=0), not an unwritten field.
            tx_ps = extract_ps(message.data)
            self.samples.append(ctx.sim.now - tx_ps)

        return on_message

    def is_finished(self, ctx: OflopsContext) -> bool:
        return len(self.samples) >= self.count

    def collect(self, ctx: OflopsContext) -> Dict[str, Any]:
        summary = SummaryStats.of(self.samples)
        return {
            "count": summary.count,
            "latency_mean_us": summary.mean / 1e6,
            "latency_p50_us": summary.p50 / 1e6,
            "latency_p99_us": summary.p99 / 1e6,
            "latency_max_us": summary.maximum / 1e6,
        }
