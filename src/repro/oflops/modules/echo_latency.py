"""Control-channel echo RTT — the elementary OFLOPS baseline probe."""

from __future__ import annotations

from typing import Any, Dict

from ...analysis.stats import SummaryStats
from ..context import OflopsContext
from ..module import MeasurementModule


class EchoLatencyModule(MeasurementModule):
    """Measure OFPT_ECHO round-trip latency over the control channel.

    Echoes are paced (one outstanding at a time) so the measurement sees
    channel + firmware latency rather than queueing behind itself.
    """

    name = "echo_latency"
    description = "OpenFlow echo request/reply RTT distribution"
    #: A lost echo (flapped channel) stalls the pacing chain; rather
    #: than crash at the deadline, report the RTTs that did complete.
    degradable = True

    def __init__(self, count: int = 50, payload: bytes = b"oflops") -> None:
        self.count = count
        self.payload = payload
        self._xids: list = []

    def start(self, ctx: OflopsContext) -> None:
        self._send_next(ctx)
        ctx.control.add_listener(lambda message: self._maybe_continue(ctx))

    def _send_next(self, ctx: OflopsContext) -> None:
        if len(self._xids) < self.count:
            self._xids.append(ctx.control.echo(self.payload))

    def _maybe_continue(self, ctx: OflopsContext) -> None:
        if self._xids and ctx.control.rtt_of(self._xids[-1]) is not None:
            self._send_next(ctx)

    def is_finished(self, ctx: OflopsContext) -> bool:
        return len(self._xids) == self.count and all(
            ctx.control.rtt_of(xid) is not None for xid in self._xids
        )

    def collect(self, ctx: OflopsContext) -> Dict[str, Any]:
        # Unanswered echoes (lost on a flapped channel) are excluded
        # rather than crashing the summary; a healthy run reports the
        # historical dict unchanged.
        rtts = [r for r in (ctx.control.rtt_of(x) for x in self._xids) if r is not None]
        lost = len(self._xids) - len(rtts)
        if not rtts:
            return {"count": 0, "echoes_lost": lost}
        summary = SummaryStats.of(rtts)
        result = {
            "count": summary.count,
            "rtt_mean_us": summary.mean / 1e6,
            "rtt_p50_us": summary.p50 / 1e6,
            "rtt_p99_us": summary.p99 / 1e6,
            "rtt_max_us": summary.maximum / 1e6,
        }
        if lost:
            result["echoes_lost"] = lost
        return result
