"""Port-counter accuracy and latency — an OFLOPS staple.

Controllers drive traffic engineering off OFPST_PORT counters, so
OFLOPS measures how *stale* those counters run: the module blasts a
known packet count through the switch while polling port stats, then
reports (a) whether the final counters agree with the OSNT ground truth
and (b) how long after the last packet the counters converged.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional, Tuple

from ...openflow import constants as ofp
from ...openflow.actions import OutputAction
from ...openflow.match import Match
from ...openflow.messages import StatsReply
from ...testbed.workloads import udp_template
from ...units import ms, us
from ..context import OflopsContext
from ..module import MeasurementModule

_PORT_STATS_LEN = 104


def _parse_port_stats(body: bytes) -> Dict[int, Tuple[int, int]]:
    """OFPST_PORT reply body → {port: (rx_packets, tx_packets)}."""
    stats = {}
    for offset in range(0, len(body) - _PORT_STATS_LEN + 1, _PORT_STATS_LEN):
        port_no = struct.unpack_from("!H", body, offset)[0]
        rx_packets, tx_packets = struct.unpack_from("!QQ", body, offset + 8)
        stats[port_no] = (rx_packets, tx_packets)
    return stats


class PortStatsAccuracyModule(MeasurementModule):
    name = "port_stats_accuracy"
    description = "OFPST_PORT counter accuracy and convergence latency"

    def __init__(
        self,
        packet_count: int = 500,
        poll_interval_ps: int = us(200),
        frame_size: int = 256,
    ) -> None:
        self.packet_count = packet_count
        self.poll_interval_ps = poll_interval_ps
        self.frame_size = frame_size
        self.samples: List[Tuple[int, int]] = []  # (reply time, tx count)
        self._generation_done_at: Optional[int] = None
        self._polling = True
        self._final_tx: Optional[int] = None

    def setup(self, ctx: OflopsContext) -> None:
        ctx.control.add_flow(
            Match.exact(dl_type=0x0800),
            actions=[OutputAction(ctx.egress_of_port)],
            priority=10,
        )
        barrier = ctx.control.barrier()
        ctx.run_for(ms(5))
        assert ctx.control.rtt_of(barrier) is not None
        ctx.control.add_listener(self._make_listener(ctx))

    def _make_listener(self, ctx: OflopsContext):
        def on_message(message) -> None:
            if not isinstance(message, StatsReply):
                return
            if message.stats_type != ofp.OFPST_PORT:
                return
            stats = _parse_port_stats(message.reply_body)
            tx_packets = stats.get(ctx.egress_of_port, (0, 0))[1]
            self.samples.append((ctx.sim.now, tx_packets))

        return on_message

    def start(self, ctx: OflopsContext) -> None:
        generator = ctx.data.generator
        generator.load_template(udp_template(self.frame_size), count=self.packet_count)
        generator.set_load(0.5)
        generator.start()

        from ...sim import spawn

        module = self

        def poller():
            while module._polling:
                ctx.control.request_stats(ofp.OFPST_PORT)
                yield module.poll_interval_ps

        spawn(ctx.sim, poller(), name="port-stats-poller")

        def waiter():
            yield generator.done
            module._generation_done_at = ctx.sim.now

        spawn(ctx.sim, waiter())

    def is_finished(self, ctx: OflopsContext) -> bool:
        if self._generation_done_at is None:
            return False
        # Finished once a poll reflects the full count (converged) or we
        # clearly waited long enough to declare the counters broken.
        converged = any(count >= self.packet_count for __, count in self.samples)
        timed_out = ctx.sim.now > self._generation_done_at + ms(50)
        if converged or timed_out:
            self._polling = False
            return True
        return False

    def collect(self, ctx: OflopsContext) -> Dict[str, Any]:
        truth = ctx.data.monitor("egress").rx_packets
        converged_at = next(
            (when for when, count in self.samples if count >= self.packet_count),
            None,
        )
        lag_us = (
            (converged_at - self._generation_done_at) / 1e6
            if converged_at is not None and converged_at > self._generation_done_at
            else 0.0
        )
        final_count = self.samples[-1][1] if self.samples else 0
        return {
            "packets_sent": self.packet_count,
            "osnt_ground_truth": truth,
            "final_counter": final_count,
            "counters_accurate": final_count == truth == self.packet_count,
            "polls": len(self.samples),
            "convergence_lag_us": lag_us,
        }
