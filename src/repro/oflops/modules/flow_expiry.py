"""Flow expiry accuracy: configured timeout vs observed removal.

OFLOPS measures how precisely switches honour idle/hard timeouts —
firmware typically scans for expired entries on a coarse period, so a
"1 second" timeout removes the rule up to a scan-period late. The
module installs rules with OFPFF_SEND_FLOW_REM across a range of hard
timeouts and compares each FLOW_REMOVED arrival against the configured
deadline.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ...openflow import constants as ofp
from ...openflow.actions import OutputAction
from ...openflow.match import Match
from ...openflow.messages import FlowRemoved
from ...units import seconds
from ..context import OflopsContext
from ..module import MeasurementModule


class FlowExpiryModule(MeasurementModule):
    name = "flow_expiry"
    description = "hard-timeout expiry accuracy via FLOW_REMOVED"
    max_duration_ps = seconds(30)

    def __init__(self, timeouts_s: Optional[List[int]] = None, base_port: int = 8000) -> None:
        self.timeouts_s = timeouts_s or [1, 2, 3, 5]
        self.base_port = base_port
        self.installed_at: Dict[int, int] = {}
        self.removed_at: Dict[int, int] = {}

    def setup(self, ctx: OflopsContext) -> None:
        ctx.control.add_listener(self._make_listener(ctx))

    def start(self, ctx: OflopsContext) -> None:
        for index, timeout in enumerate(self.timeouts_s):
            port = self.base_port + index
            ctx.control.add_flow(
                Match.exact(dl_type=0x0800, nw_proto=17, tp_dst=port),
                actions=[OutputAction(ctx.egress_of_port)],
                hard_timeout=timeout,
                flags=ofp.OFPFF_SEND_FLOW_REM,
            )
            self.installed_at[port] = ctx.sim.now

    def _make_listener(self, ctx: OflopsContext):
        def on_message(message) -> None:
            if isinstance(message, FlowRemoved):
                port = message.match.tp_dst
                self.removed_at.setdefault(port, ctx.sim.now)

        return on_message

    def is_finished(self, ctx: OflopsContext) -> bool:
        return len(self.removed_at) == len(self.timeouts_s)

    def collect(self, ctx: OflopsContext) -> Dict[str, Any]:
        rows = []
        for index, timeout in enumerate(self.timeouts_s):
            port = self.base_port + index
            observed_ps = self.removed_at[port] - self.installed_at[port]
            rows.append(
                {
                    "configured_s": timeout,
                    "observed_s": observed_ps / 1e12,
                    "lateness_ms": (observed_ps - timeout * 10**12) / 1e9,
                }
            )
        return {
            "expiries": rows,
            "worst_lateness_ms": max(row["lateness_ms"] for row in rows),
        }
