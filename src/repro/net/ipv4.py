"""IPv4 header build and parse."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..errors import PacketError, TruncatedPacketError
from .checksum import internet_checksum
from .fields import ipv4_to_bytes, ipv4_to_str, read_u16, read_u32, u16

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

IPV4_MIN_HEADER_LEN = 20


@dataclass
class Ipv4Header:
    """IPv4 header (options supported as raw bytes)."""

    src: str
    dst: str
    protocol: int
    total_length: int = 0  # filled by pack() callers; includes header
    ttl: int = 64
    identification: int = 0
    dscp: int = 0
    ecn: int = 0
    flags: int = 0b010  # don't-fragment, as test traffic normally sets
    fragment_offset: int = 0
    options: bytes = field(default=b"")
    checksum: int = 0  # as parsed; recomputed on pack

    @property
    def header_length(self) -> int:
        return IPV4_MIN_HEADER_LEN + len(self.options)

    def pack(self, payload_length: int) -> bytes:
        """Serialize with correct total length and checksum."""
        if len(self.options) % 4:
            raise PacketError("IPv4 options must pad to a 4-byte multiple")
        ihl_words = self.header_length // 4
        if ihl_words > 15:
            raise PacketError("IPv4 header too long")
        total_length = self.header_length + payload_length
        if total_length > 0xFFFF:
            raise PacketError(f"IPv4 total length {total_length} exceeds 65535")
        header = bytearray()
        header.append((4 << 4) | ihl_words)
        header.append(((self.dscp & 0x3F) << 2) | (self.ecn & 0x3))
        header += u16(total_length)
        header += u16(self.identification)
        header += u16(((self.flags & 0x7) << 13) | (self.fragment_offset & 0x1FFF))
        header.append(self.ttl)
        header.append(self.protocol)
        header += b"\x00\x00"  # checksum placeholder
        header += ipv4_to_bytes(self.src)
        header += ipv4_to_bytes(self.dst)
        header += self.options
        checksum = internet_checksum(bytes(header))
        header[10:12] = u16(checksum)
        return bytes(header)

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> Tuple["Ipv4Header", int]:
        """Parse at ``offset``; returns (header, offset of payload)."""
        if offset + IPV4_MIN_HEADER_LEN > len(data):
            raise TruncatedPacketError("IPv4 header truncated")
        version_ihl = data[offset]
        if version_ihl >> 4 != 4:
            raise PacketError(f"not IPv4 (version={version_ihl >> 4})")
        header_len = (version_ihl & 0xF) * 4
        if header_len < IPV4_MIN_HEADER_LEN:
            raise PacketError(f"bad IPv4 IHL: {header_len} bytes")
        if offset + header_len > len(data):
            raise TruncatedPacketError("IPv4 options truncated")
        flags_frag = read_u16(data, offset + 6)
        header = cls(
            src=ipv4_to_str(read_u32(data, offset + 12)),
            dst=ipv4_to_str(read_u32(data, offset + 16)),
            protocol=data[offset + 9],
            total_length=read_u16(data, offset + 2),
            ttl=data[offset + 8],
            identification=read_u16(data, offset + 4),
            dscp=data[offset + 1] >> 2,
            ecn=data[offset + 1] & 0x3,
            flags=flags_frag >> 13,
            fragment_offset=flags_frag & 0x1FFF,
            options=bytes(data[offset + IPV4_MIN_HEADER_LEN : offset + header_len]),
            checksum=read_u16(data, offset + 10),
        )
        return header, offset + header_len

    def verify_checksum(self, data: bytes, offset: int) -> bool:
        """True if the checksum of the header at ``offset`` is valid."""
        return internet_checksum(data[offset : offset + self.header_length]) == 0
