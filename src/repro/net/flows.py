"""Flow identification: 5-tuples and flow-key extraction."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .parser import DecodedPacket, decode


@dataclass(frozen=True)
class FiveTuple:
    """The classic (src ip, dst ip, proto, src port, dst port) key.

    Hashable and usable as a dict key. Ports are zero for protocols
    without them (e.g. ICMP).
    """

    src_ip: str
    dst_ip: str
    protocol: int
    src_port: int = 0
    dst_port: int = 0

    def reversed(self) -> "FiveTuple":
        """The same flow seen from the other direction."""
        return FiveTuple(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            protocol=self.protocol,
            src_port=self.dst_port,
            dst_port=self.src_port,
        )

    def __str__(self) -> str:
        return (
            f"{self.src_ip}:{self.src_port} -> "
            f"{self.dst_ip}:{self.dst_port} proto={self.protocol}"
        )


def extract_five_tuple(data_or_decoded) -> Optional[FiveTuple]:
    """5-tuple of a frame, or ``None`` for non-IP traffic.

    Accepts raw frame bytes or an already-:func:`~repro.net.parser.decode`\\ d
    packet, so hot paths can reuse their parse.
    """
    decoded = (
        data_or_decoded
        if isinstance(data_or_decoded, DecodedPacket)
        else decode(data_or_decoded)
    )
    if decoded.ipv4 is not None:
        src_ip, dst_ip = decoded.ipv4.src, decoded.ipv4.dst
        protocol = decoded.ipv4.protocol
    elif decoded.ipv6 is not None:
        src_ip, dst_ip = decoded.ipv6.src, decoded.ipv6.dst
        protocol = decoded.ipv6.next_header
    else:
        return None
    src_port = dst_port = 0
    if decoded.tcp is not None:
        src_port, dst_port = decoded.tcp.src_port, decoded.tcp.dst_port
    elif decoded.udp is not None:
        src_port, dst_port = decoded.udp.src_port, decoded.udp.dst_port
    return FiveTuple(src_ip, dst_ip, protocol, src_port, dst_port)
