"""UDP header build and parse."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import TruncatedPacketError
from .checksum import pseudo_header_checksum
from .fields import read_u16, u16

UDP_HEADER_LEN = 8
PROTO_UDP = 17


@dataclass
class UdpHeader:
    src_port: int
    dst_port: int
    length: int = 0  # includes the 8-byte header; filled on pack
    checksum: int = 0

    def pack(self, payload: bytes, src_addr: bytes = b"", dst_addr: bytes = b"") -> bytes:
        """Serialize header + payload; checksums when addresses given.

        If the packed addresses are omitted the checksum is left zero,
        which UDP-over-IPv4 permits ("no checksum").
        """
        length = UDP_HEADER_LEN + len(payload)
        header = u16(self.src_port) + u16(self.dst_port) + u16(length)
        if src_addr and dst_addr:
            checksum = pseudo_header_checksum(
                src_addr, dst_addr, PROTO_UDP, header + b"\x00\x00" + payload
            )
            if checksum == 0:
                checksum = 0xFFFF  # RFC 768: zero is "no checksum"
        else:
            checksum = 0
        return header + u16(checksum) + payload

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> Tuple["UdpHeader", int]:
        if offset + UDP_HEADER_LEN > len(data):
            raise TruncatedPacketError("UDP header truncated")
        header = cls(
            src_port=read_u16(data, offset),
            dst_port=read_u16(data, offset + 2),
            length=read_u16(data, offset + 4),
            checksum=read_u16(data, offset + 6),
        )
        return header, offset + UDP_HEADER_LEN
