"""IPv6 fixed header build and parse (extension headers not needed for
the tester's workloads, but next-header values pass through opaquely)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import PacketError, TruncatedPacketError
from .fields import ipv6_to_bytes, ipv6_to_str, read_u16, read_u32, u16, u32

IPV6_HEADER_LEN = 40


@dataclass
class Ipv6Header:
    src: str
    dst: str
    next_header: int
    payload_length: int = 0  # filled on pack
    traffic_class: int = 0
    flow_label: int = 0
    hop_limit: int = 64

    def pack(self, payload_length: int) -> bytes:
        if payload_length > 0xFFFF:
            raise PacketError("IPv6 payload too long (no jumbograms)")
        word0 = (6 << 28) | ((self.traffic_class & 0xFF) << 20) | (self.flow_label & 0xFFFFF)
        return (
            u32(word0)
            + u16(payload_length)
            + bytes([self.next_header, self.hop_limit])
            + ipv6_to_bytes(self.src)
            + ipv6_to_bytes(self.dst)
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> Tuple["Ipv6Header", int]:
        if offset + IPV6_HEADER_LEN > len(data):
            raise TruncatedPacketError("IPv6 header truncated")
        word0 = read_u32(data, offset)
        if word0 >> 28 != 6:
            raise PacketError(f"not IPv6 (version={word0 >> 28})")
        header = cls(
            src=ipv6_to_str(data[offset + 8 : offset + 24]),
            dst=ipv6_to_str(data[offset + 24 : offset + 40]),
            next_header=data[offset + 6],
            payload_length=read_u16(data, offset + 4),
            traffic_class=(word0 >> 20) & 0xFF,
            flow_label=word0 & 0xFFFFF,
            hop_limit=data[offset + 7],
        )
        return header, offset + IPV6_HEADER_LEN
