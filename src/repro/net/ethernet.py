"""Ethernet II and 802.1Q VLAN headers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import TruncatedPacketError
from .fields import mac_to_bytes, mac_to_str, read_u16, u16

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_VLAN = 0x8100
ETHERTYPE_IPV6 = 0x86DD

ETH_HEADER_LEN = 14
VLAN_TAG_LEN = 4


@dataclass
class EthernetHeader:
    """Ethernet II header: destination, source, EtherType."""

    dst: str
    src: str
    ethertype: int

    def pack(self) -> bytes:
        return mac_to_bytes(self.dst) + mac_to_bytes(self.src) + u16(self.ethertype)

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["EthernetHeader", int]:
        """Parse from the start of ``data``; returns (header, next offset)."""
        if len(data) < ETH_HEADER_LEN:
            raise TruncatedPacketError(
                f"Ethernet header needs {ETH_HEADER_LEN} bytes, got {len(data)}"
            )
        return (
            cls(
                dst=mac_to_str(data[0:6]),
                src=mac_to_str(data[6:12]),
                ethertype=read_u16(data, 12),
            ),
            ETH_HEADER_LEN,
        )


@dataclass
class VlanTag:
    """802.1Q tag (follows the MAC addresses when EtherType is 0x8100)."""

    pcp: int = 0
    dei: int = 0
    vid: int = 0
    inner_ethertype: int = ETHERTYPE_IPV4

    def pack(self) -> bytes:
        tci = ((self.pcp & 0x7) << 13) | ((self.dei & 0x1) << 12) | (self.vid & 0xFFF)
        return u16(tci) + u16(self.inner_ethertype)

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> Tuple["VlanTag", int]:
        tci = read_u16(data, offset)
        inner = read_u16(data, offset + 2)
        tag = cls(
            pcp=(tci >> 13) & 0x7,
            dei=(tci >> 12) & 0x1,
            vid=tci & 0xFFF,
            inner_ethertype=inner,
        )
        return tag, offset + VLAN_TAG_LEN
