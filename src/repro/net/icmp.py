"""ICMP (v4) echo messages — enough for ping-style test traffic."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import TruncatedPacketError
from .checksum import internet_checksum
from .fields import read_u16, u16

ICMP_HEADER_LEN = 8
TYPE_ECHO_REPLY = 0
TYPE_ECHO_REQUEST = 8


@dataclass
class IcmpHeader:
    type: int
    code: int = 0
    identifier: int = 0
    sequence: int = 0
    checksum: int = 0  # as parsed; recomputed on pack

    def pack(self, payload: bytes = b"") -> bytes:
        header = (
            bytes([self.type, self.code])
            + b"\x00\x00"
            + u16(self.identifier)
            + u16(self.sequence)
        )
        checksum = internet_checksum(header + payload)
        return header[:2] + u16(checksum) + header[4:] + payload

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> Tuple["IcmpHeader", int]:
        if offset + ICMP_HEADER_LEN > len(data):
            raise TruncatedPacketError("ICMP header truncated")
        header = cls(
            type=data[offset],
            code=data[offset + 1],
            checksum=read_u16(data, offset + 2),
            identifier=read_u16(data, offset + 4),
            sequence=read_u16(data, offset + 6),
        )
        return header, offset + ICMP_HEADER_LEN
