"""Checksums: the Internet (ones-complement) checksum and Ethernet FCS."""

from __future__ import annotations

import zlib

from .fields import u32


def internet_checksum(data: bytes) -> int:
    """RFC 1071 ones-complement checksum over ``data``.

    Odd-length input is padded with a zero byte, per the RFC.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for offset in range(0, len(data), 2):
        total += (data[offset] << 8) | data[offset + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def pseudo_header_checksum(
    src: bytes, dst: bytes, protocol: int, payload: bytes
) -> int:
    """Checksum of an IPv4/IPv6 pseudo-header plus an L4 segment.

    ``src``/``dst`` are the packed addresses (4 or 16 bytes each).
    """
    pseudo = src + dst + bytes([0, protocol]) + len(payload).to_bytes(2, "big")
    return internet_checksum(pseudo + payload)


def ethernet_fcs(frame: bytes) -> bytes:
    """Ethernet frame check sequence: CRC-32 appended little-endian.

    ``frame`` is the bytes from destination MAC through payload.
    """
    return zlib.crc32(frame).to_bytes(4, "little")


def verify_ethernet_fcs(frame_with_fcs: bytes) -> bool:
    """Check the trailing 4-byte FCS of a frame."""
    if len(frame_with_fcs) < 5:
        return False
    frame, fcs = frame_with_fcs[:-4], frame_with_fcs[-4:]
    return ethernet_fcs(frame) == fcs


def fletcher32(data: bytes) -> int:
    """Fletcher-32 over 16-bit words; used by the monitor's hash unit.

    Words are assembled low-byte-first, matching the published test
    vectors (``fletcher32(b"abcde") == 0xF04FC729``).
    """
    if len(data) % 2:
        data = data + b"\x00"
    sum1 = sum2 = 0
    for offset in range(0, len(data), 2):
        sum1 = (sum1 + (data[offset] | (data[offset + 1] << 8))) % 65535
        sum2 = (sum2 + sum1) % 65535
    return (sum2 << 16) | sum1


def crc32_hash(data: bytes) -> bytes:
    """CRC-32 digest as 4 big-endian bytes (monitor hash unit option)."""
    return u32(zlib.crc32(data) & 0xFFFFFFFF)
