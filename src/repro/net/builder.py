"""High-level packet construction for test traffic.

These helpers produce complete, checksummed frames sized exactly as
requested — the tester sweeps frame sizes, so ``frame_size`` (wire size
**including** FCS, matching how test equipment quotes sizes: a "64-byte
packet" is the minimum Ethernet frame) is the primary knob.
"""

from __future__ import annotations

from typing import Optional

from ..errors import PacketError
from ..units import ETH_FCS_BYTES, ETH_MAX_FRAME, ETH_MIN_FRAME
from .arp import ArpPacket
from .ethernet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    ETHERTYPE_VLAN,
    EthernetHeader,
    VlanTag,
)
from .fields import ipv4_to_bytes
from .icmp import IcmpHeader, TYPE_ECHO_REQUEST
from .ipv4 import PROTO_ICMP, PROTO_TCP, PROTO_UDP, Ipv4Header
from .packet import Packet
from .tcp import TcpHeader
from .udp import UdpHeader

#: Default addresses used by examples/benchmarks when not specified.
DEFAULT_SRC_MAC = "02:00:00:00:00:01"
DEFAULT_DST_MAC = "02:00:00:00:00:02"
DEFAULT_SRC_IP = "10.0.0.1"
DEFAULT_DST_IP = "10.0.0.2"

# Headers: 14 (eth) + 20 (ipv4) + 8 (udp) + 4 (fcs) = 46 bytes, so the
# smallest legal UDP test frame carries 18 payload bytes at 64 wire bytes.
_UDP_MIN_WIRE = 14 + 20 + 8 + ETH_FCS_BYTES


def _payload_for(frame_size: int, header_bytes: int, fill: bytes) -> bytes:
    """Payload bytes needed to hit ``frame_size`` wire bytes exactly."""
    if not ETH_MIN_FRAME <= frame_size <= ETH_MAX_FRAME:
        raise PacketError(
            f"frame_size {frame_size} outside [{ETH_MIN_FRAME}, {ETH_MAX_FRAME}]"
        )
    payload_len = frame_size - header_bytes - ETH_FCS_BYTES
    if payload_len < 0:
        raise PacketError(
            f"frame_size {frame_size} too small for {header_bytes} header bytes"
        )
    if not fill:
        fill = b"\x00"
    repeats = payload_len // len(fill) + 1
    return (fill * repeats)[:payload_len]


def build_udp(
    frame_size: int = ETH_MIN_FRAME,
    src_mac: str = DEFAULT_SRC_MAC,
    dst_mac: str = DEFAULT_DST_MAC,
    src_ip: str = DEFAULT_SRC_IP,
    dst_ip: str = DEFAULT_DST_IP,
    src_port: int = 5000,
    dst_port: int = 5001,
    payload: Optional[bytes] = None,
    fill: bytes = b"\x00",
    vlan: Optional[int] = None,
    ttl: int = 64,
) -> Packet:
    """Build a UDP/IPv4/Ethernet frame of exactly ``frame_size`` wire bytes.

    If ``payload`` is given it is used verbatim and ``frame_size`` is
    ignored; otherwise the payload is synthesised from ``fill``.
    """
    vlan_bytes = 4 if vlan is not None else 0
    if payload is None:
        payload = _payload_for(frame_size, 14 + vlan_bytes + 20 + 8, fill)
    udp = UdpHeader(src_port=src_port, dst_port=dst_port)
    segment = udp.pack(payload, ipv4_to_bytes(src_ip), ipv4_to_bytes(dst_ip))
    ip = Ipv4Header(src=src_ip, dst=dst_ip, protocol=PROTO_UDP, ttl=ttl)
    network = ip.pack(len(segment)) + segment
    return _frame(src_mac, dst_mac, ETHERTYPE_IPV4, network, vlan)


def build_tcp(
    frame_size: int = ETH_MIN_FRAME,
    src_mac: str = DEFAULT_SRC_MAC,
    dst_mac: str = DEFAULT_DST_MAC,
    src_ip: str = DEFAULT_SRC_IP,
    dst_ip: str = DEFAULT_DST_IP,
    src_port: int = 5000,
    dst_port: int = 80,
    seq: int = 0,
    flags: int = 0x10,
    payload: Optional[bytes] = None,
    fill: bytes = b"\x00",
    vlan: Optional[int] = None,
) -> Packet:
    """Build a TCP/IPv4/Ethernet frame of exactly ``frame_size`` wire bytes."""
    vlan_bytes = 4 if vlan is not None else 0
    if payload is None:
        payload = _payload_for(frame_size, 14 + vlan_bytes + 20 + 20, fill)
    tcp = TcpHeader(src_port=src_port, dst_port=dst_port, seq=seq, flags=flags)
    segment = tcp.pack(payload, ipv4_to_bytes(src_ip), ipv4_to_bytes(dst_ip))
    ip = Ipv4Header(src=src_ip, dst=dst_ip, protocol=PROTO_TCP)
    network = ip.pack(len(segment)) + segment
    return _frame(src_mac, dst_mac, ETHERTYPE_IPV4, network, vlan)


def build_icmp_echo(
    frame_size: int = ETH_MIN_FRAME,
    src_mac: str = DEFAULT_SRC_MAC,
    dst_mac: str = DEFAULT_DST_MAC,
    src_ip: str = DEFAULT_SRC_IP,
    dst_ip: str = DEFAULT_DST_IP,
    identifier: int = 1,
    sequence: int = 0,
) -> Packet:
    """Build an ICMP echo request frame of ``frame_size`` wire bytes."""
    payload = _payload_for(frame_size, 14 + 20 + 8, b"\xab")
    icmp = IcmpHeader(type=TYPE_ECHO_REQUEST, identifier=identifier, sequence=sequence)
    message = icmp.pack(payload)
    ip = Ipv4Header(src=src_ip, dst=dst_ip, protocol=PROTO_ICMP)
    network = ip.pack(len(message)) + message
    return _frame(src_mac, dst_mac, ETHERTYPE_IPV4, network, None)


def build_udp6(
    frame_size: int = 78,
    src_mac: str = DEFAULT_SRC_MAC,
    dst_mac: str = DEFAULT_DST_MAC,
    src_ip: str = "2001:db8::1",
    dst_ip: str = "2001:db8::2",
    src_port: int = 5000,
    dst_port: int = 5001,
    fill: bytes = b"\x00",
) -> Packet:
    """Build a UDP/IPv6/Ethernet frame of exactly ``frame_size`` wire bytes.

    The minimum IPv6 UDP frame is 14 + 40 + 8 + 4 = 66 wire bytes.
    """
    from .fields import ipv6_to_bytes
    from .ipv6 import Ipv6Header

    payload = _payload_for(frame_size, 14 + 40 + 8, fill)
    udp = UdpHeader(src_port=src_port, dst_port=dst_port)
    segment = udp.pack(payload, ipv6_to_bytes(src_ip), ipv6_to_bytes(dst_ip))
    ip6 = Ipv6Header(src=src_ip, dst=dst_ip, next_header=PROTO_UDP)
    network = ip6.pack(len(segment)) + segment
    return _frame(src_mac, dst_mac, ETHERTYPE_IPV6, network, None)


def build_arp_request(
    sender_mac: str = DEFAULT_SRC_MAC,
    sender_ip: str = DEFAULT_SRC_IP,
    target_ip: str = DEFAULT_DST_IP,
) -> Packet:
    """Build a broadcast ARP who-has frame."""
    arp = ArpPacket(
        operation=1,
        sender_mac=sender_mac,
        sender_ip=sender_ip,
        target_mac="00:00:00:00:00:00",
        target_ip=target_ip,
    )
    return _frame(sender_mac, "ff:ff:ff:ff:ff:ff", ETHERTYPE_ARP, arp.pack(), None)


def _frame(
    src_mac: str, dst_mac: str, ethertype: int, network: bytes, vlan: Optional[int]
) -> Packet:
    if vlan is not None:
        eth = EthernetHeader(dst=dst_mac, src=src_mac, ethertype=ETHERTYPE_VLAN)
        tag = VlanTag(vid=vlan, inner_ethertype=ethertype)
        data = eth.pack() + tag.pack() + network
    else:
        eth = EthernetHeader(dst=dst_mac, src=src_mac, ethertype=ethertype)
        data = eth.pack() + network
    # The MAC pads runt frames to the Ethernet minimum on the wire, but
    # building exact-size frames keeps checksums covering all bytes.
    return Packet(data)
