"""Classic libpcap file reading and writing.

Supports microsecond (magic ``0xa1b2c3d4``) and nanosecond
(``0xa1b23c4d``) timestamp resolution in either byte order on read, and
writes nanosecond little-endian files by default — matching the OSNT
software tools, which store high-resolution capture timestamps.

Timestamps cross the API as integer **picoseconds** (the simulator's
unit); they are truncated to the file's resolution on write.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, List, Optional, Union

from ..errors import PcapError
from ..units import PS_PER_NS, PS_PER_SEC, PS_PER_US
from .packet import Packet

MAGIC_USEC = 0xA1B2C3D4
MAGIC_NSEC = 0xA1B23C4D

LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = "IHHiIII"  # magic, major, minor, thiszone, sigfigs, snaplen, network
_RECORD_HEADER = "IIII"  # ts_sec, ts_subsec, incl_len, orig_len


@dataclass
class PcapRecord:
    """One captured frame: bytes plus capture metadata."""

    timestamp_ps: int
    data: bytes
    #: Original frame length if the capture was truncated (snaplen).
    orig_len: Optional[int] = None

    @property
    def original_length(self) -> int:
        return self.orig_len if self.orig_len is not None else len(self.data)


class PcapReader:
    """Iterate :class:`PcapRecord` objects from a pcap file or stream."""

    def __init__(self, source: Union[str, Path, BinaryIO]) -> None:
        if isinstance(source, (str, Path)):
            self._stream: BinaryIO = open(source, "rb")
            self._owns_stream = True
        else:
            self._stream = source
            self._owns_stream = False
        self._read_global_header()

    def _read_global_header(self) -> None:
        raw = self._stream.read(24)
        if len(raw) < 24:
            raise PcapError("file too short for a pcap global header")
        for endian in ("<", ">"):
            magic = struct.unpack(endian + "I", raw[:4])[0]
            if magic in (MAGIC_USEC, MAGIC_NSEC):
                self._endian = endian
                self._subsec_ps = PS_PER_NS if magic == MAGIC_NSEC else PS_PER_US
                break
        else:
            raise PcapError(f"bad pcap magic: {raw[:4].hex()}")
        fields = struct.unpack(self._endian + _GLOBAL_HEADER, raw)
        __, major, minor, __, __, self.snaplen, self.network = fields
        if (major, minor) != (2, 4):
            raise PcapError(f"unsupported pcap version {major}.{minor}")
        if self.network != LINKTYPE_ETHERNET:
            raise PcapError(f"unsupported linktype {self.network}")

    def __iter__(self) -> Iterator[PcapRecord]:
        return self

    def __next__(self) -> PcapRecord:
        header = self._stream.read(16)
        if not header:
            raise StopIteration
        if len(header) < 16:
            raise PcapError("truncated pcap record header")
        ts_sec, ts_subsec, incl_len, orig_len = struct.unpack(
            self._endian + _RECORD_HEADER, header
        )
        data = self._stream.read(incl_len)
        if len(data) < incl_len:
            raise PcapError("truncated pcap record body")
        timestamp_ps = ts_sec * PS_PER_SEC + ts_subsec * self._subsec_ps
        return PcapRecord(timestamp_ps=timestamp_ps, data=data, orig_len=orig_len)

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PcapWriter:
    """Write :class:`PcapRecord` objects to a pcap file or stream."""

    def __init__(
        self,
        target: Union[str, Path, BinaryIO],
        nanosecond: bool = True,
        snaplen: int = 65535,
    ) -> None:
        if isinstance(target, (str, Path)):
            self._stream: BinaryIO = open(target, "wb")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        self._subsec_ps = PS_PER_NS if nanosecond else PS_PER_US
        self._subsec_per_sec = PS_PER_SEC // self._subsec_ps
        magic = MAGIC_NSEC if nanosecond else MAGIC_USEC
        self._stream.write(
            struct.pack("<" + _GLOBAL_HEADER, magic, 2, 4, 0, 0, snaplen, LINKTYPE_ETHERNET)
        )
        self.records_written = 0

    def write(self, record: PcapRecord) -> None:
        ts_sec, remainder_ps = divmod(record.timestamp_ps, PS_PER_SEC)
        ts_subsec = remainder_ps // self._subsec_ps
        self._stream.write(
            struct.pack(
                "<" + _RECORD_HEADER,
                ts_sec,
                ts_subsec,
                len(record.data),
                record.original_length,
            )
        )
        self._stream.write(record.data)
        self.records_written += 1

    def write_packet(self, packet: Packet, timestamp_ps: int) -> None:
        """Convenience: write a simulator :class:`Packet` at a timestamp."""
        data = packet.data
        orig_len = len(data)
        if packet.capture_length is not None:
            data = data[: packet.capture_length]
        self.write(PcapRecord(timestamp_ps=timestamp_ps, data=data, orig_len=orig_len))

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_pcap(path: Union[str, Path]) -> List[PcapRecord]:
    """Read a whole pcap file into memory."""
    with PcapReader(path) as reader:
        return list(reader)


def write_pcap(
    path: Union[str, Path],
    records: Iterable[PcapRecord],
    nanosecond: bool = True,
) -> int:
    """Write records to ``path``; returns the number written."""
    with PcapWriter(path, nanosecond=nanosecond) as writer:
        for record in records:
            writer.write(record)
        return writer.records_written
