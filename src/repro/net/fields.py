"""Low-level field encode/decode helpers shared by the protocol modules.

All multi-byte integers on the wire are big-endian (network order).
Addresses have both a packed-bytes form (used in headers) and a human
string form (used in APIs and reports).
"""

from __future__ import annotations

import re

from ..errors import PacketError, TruncatedPacketError

# -- integers ----------------------------------------------------------------


def u8(value: int) -> bytes:
    return _pack(value, 1)


def u16(value: int) -> bytes:
    return _pack(value, 2)


def u32(value: int) -> bytes:
    return _pack(value, 4)


def u64(value: int) -> bytes:
    return _pack(value, 8)


def _pack(value: int, size: int) -> bytes:
    if not 0 <= value < (1 << (8 * size)):
        raise PacketError(f"value {value} does not fit in {size} byte(s)")
    return value.to_bytes(size, "big")


def read_u8(data: bytes, offset: int) -> int:
    return _read(data, offset, 1)


def read_u16(data: bytes, offset: int) -> int:
    return _read(data, offset, 2)


def read_u32(data: bytes, offset: int) -> int:
    return _read(data, offset, 4)


def read_u64(data: bytes, offset: int) -> int:
    return _read(data, offset, 8)


def _read(data: bytes, offset: int, size: int) -> int:
    if offset < 0 or offset + size > len(data):
        raise TruncatedPacketError(
            f"need {size} byte(s) at offset {offset}, packet is {len(data)} bytes"
        )
    return int.from_bytes(data[offset : offset + size], "big")


# -- MAC addresses -----------------------------------------------------------

_MAC_RE = re.compile(r"^([0-9a-f]{2}:){5}[0-9a-f]{2}$", re.IGNORECASE)


def mac_to_bytes(mac: str) -> bytes:
    """``"00:11:22:aa:bb:cc"`` → 6 packed bytes."""
    if not _MAC_RE.match(mac):
        raise PacketError(f"bad MAC address: {mac!r}")
    return bytes(int(part, 16) for part in mac.split(":"))


def mac_to_str(data: bytes) -> str:
    """6 packed bytes → ``"00:11:22:aa:bb:cc"``."""
    if len(data) != 6:
        raise PacketError(f"MAC address must be 6 bytes, got {len(data)}")
    return ":".join(f"{byte:02x}" for byte in data)


BROADCAST_MAC = "ff:ff:ff:ff:ff:ff"


def is_broadcast_mac(mac: str) -> bool:
    return mac.lower() == BROADCAST_MAC


def is_multicast_mac(mac: str) -> bool:
    """True for group-addressed MACs (low bit of the first octet set)."""
    return bool(int(mac.split(":", 1)[0], 16) & 1)


# -- IPv4 addresses -----------------------------------------------------------


def ipv4_to_int(address: str) -> int:
    """``"10.0.0.1"`` → 32-bit integer."""
    parts = address.split(".")
    if len(parts) != 4:
        raise PacketError(f"bad IPv4 address: {address!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or not 0 <= int(part) <= 255:
            raise PacketError(f"bad IPv4 address: {address!r}")
        value = (value << 8) | int(part)
    return value


def ipv4_to_str(value: int) -> str:
    """32-bit integer → dotted quad."""
    if not 0 <= value < (1 << 32):
        raise PacketError(f"bad IPv4 integer: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def ipv4_to_bytes(address: str) -> bytes:
    return u32(ipv4_to_int(address))


# -- IPv6 addresses -----------------------------------------------------------


def ipv6_to_bytes(address: str) -> bytes:
    """Parse an IPv6 address (supports ``::`` compression) to 16 bytes."""
    if address.count("::") > 1:
        raise PacketError(f"bad IPv6 address: {address!r}")
    if "::" in address:
        head, tail = address.split("::")
        head_groups = head.split(":") if head else []
        tail_groups = tail.split(":") if tail else []
        missing = 8 - len(head_groups) - len(tail_groups)
        if missing < 1:
            raise PacketError(f"bad IPv6 address: {address!r}")
        groups = head_groups + ["0"] * missing + tail_groups
    else:
        groups = address.split(":")
    if len(groups) != 8:
        raise PacketError(f"bad IPv6 address: {address!r}")
    try:
        values = [int(group, 16) for group in groups]
    except ValueError as exc:
        raise PacketError(f"bad IPv6 address: {address!r}") from exc
    if any(not 0 <= value <= 0xFFFF for value in values):
        raise PacketError(f"bad IPv6 address: {address!r}")
    return b"".join(u16(value) for value in values)


def ipv6_to_str(data: bytes) -> str:
    """16 packed bytes → canonical-ish IPv6 string (no ``::`` compression)."""
    if len(data) != 16:
        raise PacketError(f"IPv6 address must be 16 bytes, got {len(data)}")
    return ":".join(f"{read_u16(data, offset):x}" for offset in range(0, 16, 2))
