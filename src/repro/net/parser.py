"""Decode a frame into its header stack.

:func:`decode` walks Ethernet → (VLAN) → L3 → L4 and returns a
:class:`DecodedPacket` with whichever layers were present. Unknown or
truncated inner layers stop the walk gracefully — the tester must cope
with arbitrary traffic — but a frame too short for Ethernet raises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..errors import PacketError, TruncatedPacketError
from .arp import ArpPacket
from .ethernet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    ETHERTYPE_VLAN,
    EthernetHeader,
    VlanTag,
)
from .icmp import IcmpHeader
from .ipv4 import PROTO_ICMP, PROTO_TCP, PROTO_UDP, Ipv4Header
from .ipv6 import Ipv6Header
from .tcp import TcpHeader
from .udp import UdpHeader

L3Header = Union[Ipv4Header, Ipv6Header, ArpPacket]
L4Header = Union[TcpHeader, UdpHeader, IcmpHeader]


@dataclass
class DecodedPacket:
    """Result of :func:`decode`: the recognised layers of one frame."""

    ethernet: EthernetHeader
    vlan_tags: List[VlanTag] = field(default_factory=list)
    ipv4: Optional[Ipv4Header] = None
    ipv6: Optional[Ipv6Header] = None
    arp: Optional[ArpPacket] = None
    tcp: Optional[TcpHeader] = None
    udp: Optional[UdpHeader] = None
    icmp: Optional[IcmpHeader] = None
    payload: bytes = b""
    #: Offset of ``payload`` within the original frame bytes.
    payload_offset: int = 0

    @property
    def l3(self) -> Optional[L3Header]:
        return self.ipv4 or self.ipv6 or self.arp

    @property
    def l4(self) -> Optional[L4Header]:
        return self.tcp or self.udp or self.icmp


def decode(data: bytes) -> DecodedPacket:
    """Parse as many layers of ``data`` as possible."""
    ethernet, offset = EthernetHeader.unpack(data)
    decoded = DecodedPacket(ethernet=ethernet)

    ethertype = ethernet.ethertype
    while ethertype == ETHERTYPE_VLAN:
        try:
            tag, offset = VlanTag.unpack(data, offset)
        except TruncatedPacketError:
            return _finish(decoded, data, offset)
        decoded.vlan_tags.append(tag)
        ethertype = tag.inner_ethertype

    try:
        if ethertype == ETHERTYPE_IPV4:
            decoded.ipv4, offset = Ipv4Header.unpack(data, offset)
            offset = _decode_l4(decoded, data, offset, decoded.ipv4.protocol)
        elif ethertype == ETHERTYPE_IPV6:
            decoded.ipv6, offset = Ipv6Header.unpack(data, offset)
            offset = _decode_l4(decoded, data, offset, decoded.ipv6.next_header)
        elif ethertype == ETHERTYPE_ARP:
            decoded.arp, offset = ArpPacket.unpack(data, offset)
    except (TruncatedPacketError, PacketError):
        pass  # leave inner layers unset; payload is what remains
    return _finish(decoded, data, offset)


def _decode_l4(decoded: DecodedPacket, data: bytes, offset: int, protocol: int) -> int:
    if protocol == PROTO_TCP:
        decoded.tcp, offset = TcpHeader.unpack(data, offset)
    elif protocol == PROTO_UDP:
        decoded.udp, offset = UdpHeader.unpack(data, offset)
    elif protocol == PROTO_ICMP:
        decoded.icmp, offset = IcmpHeader.unpack(data, offset)
    return offset


def _finish(decoded: DecodedPacket, data: bytes, offset: int) -> DecodedPacket:
    decoded.payload = data[offset:]
    decoded.payload_offset = offset
    return decoded
