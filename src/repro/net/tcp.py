"""TCP header build and parse."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..errors import PacketError, TruncatedPacketError
from .checksum import pseudo_header_checksum
from .fields import read_u16, read_u32, u16, u32

TCP_MIN_HEADER_LEN = 20
PROTO_TCP = 6

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10
FLAG_URG = 0x20


@dataclass
class TcpHeader:
    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = FLAG_ACK
    window: int = 65535
    urgent: int = 0
    options: bytes = field(default=b"")
    checksum: int = 0  # as parsed; recomputed on pack

    @property
    def header_length(self) -> int:
        return TCP_MIN_HEADER_LEN + len(self.options)

    def pack(self, payload: bytes, src_addr: bytes = b"", dst_addr: bytes = b"") -> bytes:
        """Serialize header + payload; checksums when addresses given."""
        if len(self.options) % 4:
            raise PacketError("TCP options must pad to a 4-byte multiple")
        data_offset_words = self.header_length // 4
        if data_offset_words > 15:
            raise PacketError("TCP header too long")
        header = bytearray()
        header += u16(self.src_port) + u16(self.dst_port)
        header += u32(self.seq) + u32(self.ack)
        header.append(data_offset_words << 4)
        header.append(self.flags & 0x3F)
        header += u16(self.window)
        header += b"\x00\x00"  # checksum placeholder
        header += u16(self.urgent)
        header += self.options
        segment = bytes(header) + payload
        if src_addr and dst_addr:
            checksum = pseudo_header_checksum(src_addr, dst_addr, PROTO_TCP, segment)
            header[16:18] = u16(checksum)
        return bytes(header) + payload

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> Tuple["TcpHeader", int]:
        if offset + TCP_MIN_HEADER_LEN > len(data):
            raise TruncatedPacketError("TCP header truncated")
        header_len = (data[offset + 12] >> 4) * 4
        if header_len < TCP_MIN_HEADER_LEN:
            raise PacketError(f"bad TCP data offset: {header_len} bytes")
        if offset + header_len > len(data):
            raise TruncatedPacketError("TCP options truncated")
        header = cls(
            src_port=read_u16(data, offset),
            dst_port=read_u16(data, offset + 2),
            seq=read_u32(data, offset + 4),
            ack=read_u32(data, offset + 8),
            flags=data[offset + 13] & 0x3F,
            window=read_u16(data, offset + 14),
            urgent=read_u16(data, offset + 18),
            options=bytes(data[offset + TCP_MIN_HEADER_LEN : offset + header_len]),
            checksum=read_u16(data, offset + 16),
        )
        return header, offset + header_len
