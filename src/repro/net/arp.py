"""ARP (IPv4 over Ethernet) build and parse."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..errors import PacketError, TruncatedPacketError
from .fields import (
    ipv4_to_bytes,
    ipv4_to_str,
    mac_to_bytes,
    mac_to_str,
    read_u16,
    read_u32,
    u16,
)

ARP_LEN = 28
OP_REQUEST = 1
OP_REPLY = 2


@dataclass
class ArpPacket:
    operation: int
    sender_mac: str
    sender_ip: str
    target_mac: str
    target_ip: str

    def pack(self) -> bytes:
        return (
            u16(1)  # hardware type: Ethernet
            + u16(0x0800)  # protocol type: IPv4
            + bytes([6, 4])  # address lengths
            + u16(self.operation)
            + mac_to_bytes(self.sender_mac)
            + ipv4_to_bytes(self.sender_ip)
            + mac_to_bytes(self.target_mac)
            + ipv4_to_bytes(self.target_ip)
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int) -> Tuple["ArpPacket", int]:
        if offset + ARP_LEN > len(data):
            raise TruncatedPacketError("ARP packet truncated")
        if read_u16(data, offset) != 1 or read_u16(data, offset + 2) != 0x0800:
            raise PacketError("only Ethernet/IPv4 ARP is supported")
        packet = cls(
            operation=read_u16(data, offset + 6),
            sender_mac=mac_to_str(data[offset + 8 : offset + 14]),
            sender_ip=ipv4_to_str(read_u32(data, offset + 14)),
            target_mac=mac_to_str(data[offset + 18 : offset + 24]),
            target_ip=ipv4_to_str(read_u32(data, offset + 24)),
        )
        return packet, offset + ARP_LEN
