"""The :class:`Packet` object that moves through the simulated hardware.

``data`` holds the Ethernet frame from the destination MAC through the
payload, **excluding** preamble and FCS — the same view software gets
from a NIC. The MAC model accounts for FCS/preamble/IFG when computing
wire occupancy (see :func:`repro.units.frame_wire_bytes`).

Simulation-side annotations (ingress port, MAC timestamps) live in named
attributes, not in the bytes; OSNT's *embedded* TX timestamp is real
bytes written into the payload by the generator (see
:mod:`repro.osnt.generator.tx_timestamp`).
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..errors import PacketError
from ..units import ETH_FCS_BYTES, ETH_MIN_FRAME

_packet_ids = itertools.count(1)


class Packet:
    """A frame plus simulation metadata."""

    __slots__ = (
        "data",
        "packet_id",
        "ingress_port",
        "egress_port",
        "tx_timestamp",
        "rx_timestamp",
        "hash_value",
        "capture_length",
    )

    def __init__(self, data: bytes) -> None:
        if len(data) < 14:
            raise PacketError(f"frame too short for an Ethernet header: {len(data)}")
        self.data = bytes(data)
        #: Monotonic id for debugging/tracing; not on the wire.
        self.packet_id: int = next(_packet_ids)
        self.ingress_port: Optional[int] = None
        self.egress_port: Optional[int] = None
        #: Hardware TX timestamp (ps since epoch of the stamping clock).
        self.tx_timestamp: Optional[int] = None
        #: Hardware RX timestamp (ps since epoch of the stamping clock).
        self.rx_timestamp: Optional[int] = None
        #: Filled by the monitor's hash unit.
        self.hash_value: Optional[bytes] = None
        #: Bytes of ``data`` actually captured (snaplen); None = all.
        self.capture_length: Optional[int] = None

    def __len__(self) -> int:
        return len(self.data)

    @property
    def frame_length(self) -> int:
        """On-the-wire frame length including FCS and minimum padding."""
        return max(len(self.data) + ETH_FCS_BYTES, ETH_MIN_FRAME)

    def copy(self) -> "Packet":
        """Independent copy with fresh id; metadata is carried over."""
        clone = Packet(self.data)
        clone.ingress_port = self.ingress_port
        clone.egress_port = self.egress_port
        clone.tx_timestamp = self.tx_timestamp
        clone.rx_timestamp = self.rx_timestamp
        clone.hash_value = self.hash_value
        clone.capture_length = self.capture_length
        return clone

    def with_data(self, data: bytes) -> "Packet":
        """Copy of this packet carrying different bytes (e.g. rewritten)."""
        clone = Packet(data)
        clone.ingress_port = self.ingress_port
        clone.egress_port = self.egress_port
        clone.tx_timestamp = self.tx_timestamp
        clone.rx_timestamp = self.rx_timestamp
        clone.hash_value = self.hash_value
        clone.capture_length = self.capture_length
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Packet #{self.packet_id} len={len(self.data)}>"
