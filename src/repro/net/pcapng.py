"""pcapng (pcap-next-generation) reading and writing.

Modern capture tools default to pcapng; a tester's replay path must
read it. Supported blocks: Section Header (SHB), Interface Description
(IDB, with the ``if_tsresol`` option), Enhanced Packet (EPB) and Simple
Packet (SPB). Both byte orders are handled per section. Unknown block
types are skipped, as the format intends.

Timestamps cross the API as integer picoseconds, like the classic
:mod:`repro.net.pcap` module.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterable, List, Union

from ..errors import PcapError
from ..units import PS_PER_SEC
from .pcap import LINKTYPE_ETHERNET, PcapRecord

SHB_TYPE = 0x0A0D0D0A
IDB_TYPE = 0x00000001
SPB_TYPE = 0x00000003
EPB_TYPE = 0x00000006
BYTE_ORDER_MAGIC = 0x1A2B3C4D

OPT_ENDOFOPT = 0
OPT_IF_TSRESOL = 9


@dataclass
class _Interface:
    linktype: int
    snaplen: int
    #: Picoseconds per timestamp unit.
    unit_ps: int


class PcapngReader:
    """Iterates :class:`~repro.net.pcap.PcapRecord` from a pcapng file."""

    def __init__(self, source: Union[str, Path, BinaryIO]) -> None:
        if isinstance(source, (str, Path)):
            self._stream: BinaryIO = open(source, "rb")
            self._owns_stream = True
        else:
            self._stream = source
            self._owns_stream = False
        self._endian = "<"
        self._interfaces: List[_Interface] = []
        self._started = False

    # -- block-level reading ---------------------------------------------------

    def _read_exact(self, count: int) -> bytes:
        data = self._stream.read(count)
        if len(data) < count:
            raise PcapError("truncated pcapng block")
        return data

    def _next_block(self):
        head = self._stream.read(8)
        if not head:
            return None
        if len(head) < 8:
            raise PcapError("truncated pcapng block header")
        block_type = struct.unpack(self._endian + "I", head[:4])[0]
        if block_type == SHB_TYPE:
            # Endianness may change per section: peek the magic.
            magic_bytes = self._read_exact(4)
            for endian in ("<", ">"):
                if struct.unpack(endian + "I", magic_bytes)[0] == BYTE_ORDER_MAGIC:
                    self._endian = endian
                    break
            else:
                raise PcapError("bad pcapng byte-order magic")
            total_len = struct.unpack(self._endian + "I", head[4:])[0]
            if total_len < 28 or total_len % 4:
                raise PcapError(f"bad SHB length {total_len}")
            body = self._read_exact(total_len - 12)
            self._interfaces = []  # a new section resets interfaces
            self._started = True
            return (SHB_TYPE, body[:-4])
        if not self._started:
            raise PcapError("pcapng file does not start with a section header")
        total_len = struct.unpack(self._endian + "I", head[4:])[0]
        if total_len < 12 or total_len % 4:
            raise PcapError(f"bad block length {total_len}")
        body = self._read_exact(total_len - 8)
        return (block_type, body[:-4])

    def _parse_options(self, data: bytes):
        offset = 0
        while offset + 4 <= len(data):
            code, length = struct.unpack_from(self._endian + "HH", data, offset)
            offset += 4
            if code == OPT_ENDOFOPT:
                return
            value = data[offset : offset + length]
            offset += (length + 3) & ~3
            yield code, value

    def _handle_idb(self, body: bytes) -> None:
        if len(body) < 8:
            raise PcapError("short interface description block")
        linktype, __, snaplen = struct.unpack_from(self._endian + "HHI", body)
        unit_ps = PS_PER_SEC // 1_000_000  # default: microseconds
        for code, value in self._parse_options(body[8:]):
            if code == OPT_IF_TSRESOL and value:
                resolution = value[0]
                if resolution & 0x80:
                    unit_ps = max(1, round(PS_PER_SEC / (1 << (resolution & 0x7F))))
                else:
                    unit_ps = max(1, PS_PER_SEC // (10 ** resolution))
        self._interfaces.append(_Interface(linktype, snaplen, unit_ps))

    # -- iteration -------------------------------------------------------------

    def __iter__(self):
        return self

    def __next__(self) -> PcapRecord:
        while True:
            block = self._next_block()
            if block is None:
                raise StopIteration
            block_type, body = block
            if block_type == IDB_TYPE:
                self._handle_idb(body)
            elif block_type == EPB_TYPE:
                return self._parse_epb(body)
            elif block_type == SPB_TYPE:
                return self._parse_spb(body)
            # SHB and unknown blocks: continue scanning.

    def _interface(self, index: int) -> _Interface:
        if index >= len(self._interfaces):
            raise PcapError(f"packet references undefined interface {index}")
        return self._interfaces[index]

    def _parse_epb(self, body: bytes) -> PcapRecord:
        if len(body) < 20:
            raise PcapError("short enhanced packet block")
        iface_id, ts_high, ts_low, caplen, origlen = struct.unpack_from(
            self._endian + "IIIII", body
        )
        interface = self._interface(iface_id)
        if len(body) < 20 + caplen:
            raise PcapError("enhanced packet block shorter than caplen")
        data = body[20 : 20 + caplen]
        timestamp_units = (ts_high << 32) | ts_low
        return PcapRecord(
            timestamp_ps=timestamp_units * interface.unit_ps,
            data=data,
            orig_len=origlen,
        )

    def _parse_spb(self, body: bytes) -> PcapRecord:
        if len(body) < 4:
            raise PcapError("short simple packet block")
        origlen = struct.unpack_from(self._endian + "I", body)[0]
        interface = self._interface(0)
        caplen = min(origlen, interface.snaplen) if interface.snaplen else origlen
        if len(body) < 4 + caplen:
            raise PcapError("simple packet block shorter than caplen")
        return PcapRecord(timestamp_ps=0, data=body[4 : 4 + caplen], orig_len=origlen)

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "PcapngReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PcapngWriter:
    """Writes a single-section, single-interface pcapng file (EPBs)."""

    def __init__(
        self,
        target: Union[str, Path, BinaryIO],
        tsresol_decimal: int = 9,  # nanoseconds
        snaplen: int = 0,
    ) -> None:
        if isinstance(target, (str, Path)):
            self._stream: BinaryIO = open(target, "wb")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False
        if not 0 <= tsresol_decimal <= 12:
            raise PcapError("tsresol must be 0..12 decimal digits")
        self._unit_ps = PS_PER_SEC // (10 ** tsresol_decimal)
        self.records_written = 0
        self._write_block(
            SHB_TYPE,
            struct.pack("<IHHq", BYTE_ORDER_MAGIC, 1, 0, -1),
        )
        tsresol_option = struct.pack("<HHB3x", OPT_IF_TSRESOL, 1, tsresol_decimal)
        end_option = struct.pack("<HH", OPT_ENDOFOPT, 0)
        self._write_block(
            IDB_TYPE,
            struct.pack("<HHI", LINKTYPE_ETHERNET, 0, snaplen)
            + tsresol_option
            + end_option,
        )

    def _write_block(self, block_type: int, body: bytes) -> None:
        padding = (-len(body)) % 4
        total = 12 + len(body) + padding
        self._stream.write(struct.pack("<II", block_type, total))
        self._stream.write(body + b"\x00" * padding)
        self._stream.write(struct.pack("<I", total))

    def write(self, record: PcapRecord) -> None:
        units = record.timestamp_ps // self._unit_ps
        body = struct.pack(
            "<IIIII",
            0,  # interface id
            (units >> 32) & 0xFFFFFFFF,
            units & 0xFFFFFFFF,
            len(record.data),
            record.original_length,
        ) + record.data
        self._write_block(EPB_TYPE, body)
        self.records_written += 1

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "PcapngWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_pcapng(path: Union[str, Path]) -> List[PcapRecord]:
    with PcapngReader(path) as reader:
        return list(reader)


def write_pcapng(
    path: Union[str, Path],
    records: Iterable[PcapRecord],
    tsresol_decimal: int = 9,
) -> int:
    with PcapngWriter(path, tsresol_decimal=tsresol_decimal) as writer:
        for record in records:
            writer.write(record)
        return writer.records_written


def read_capture(path: Union[str, Path]) -> List[PcapRecord]:
    """Read a capture file, auto-detecting classic pcap vs pcapng."""
    with open(path, "rb") as stream:
        magic = stream.read(4)
    if magic == b"\x0a\x0d\x0d\x0a":
        return read_pcapng(path)
    from .pcap import read_pcap

    return read_pcap(path)
