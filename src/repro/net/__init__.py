"""Packet library: protocol headers, builders, parsing, flows, PCAP."""

from .builder import (
    build_arp_request,
    build_udp6,
    build_icmp_echo,
    build_tcp,
    build_udp,
)
from .ethernet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    ETHERTYPE_IPV6,
    ETHERTYPE_VLAN,
    EthernetHeader,
    VlanTag,
)
from .flows import FiveTuple, extract_five_tuple
from .icmp import IcmpHeader
from .ipv4 import PROTO_ICMP, PROTO_TCP, PROTO_UDP, Ipv4Header
from .ipv6 import Ipv6Header
from .packet import Packet
from .parser import DecodedPacket, decode
from .pcap import PcapReader, PcapRecord, PcapWriter, read_pcap, write_pcap
from .pcapng import PcapngReader, PcapngWriter, read_capture, read_pcapng, write_pcapng
from .tcp import TcpHeader
from .udp import UdpHeader

__all__ = [
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_IPV6",
    "ETHERTYPE_VLAN",
    "DecodedPacket",
    "EthernetHeader",
    "FiveTuple",
    "IcmpHeader",
    "Ipv4Header",
    "Ipv6Header",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "Packet",
    "PcapReader",
    "PcapRecord",
    "PcapWriter",
    "PcapngReader",
    "PcapngWriter",
    "TcpHeader",
    "UdpHeader",
    "VlanTag",
    "build_arp_request",
    "build_icmp_echo",
    "build_tcp",
    "build_udp",
    "build_udp6",
    "decode",
    "extract_five_tuple",
    "read_capture",
    "read_pcap",
    "read_pcapng",
    "write_pcap",
    "write_pcapng",
]
