"""Summary statistics, jitter and histograms for measurement results."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ConfigError


@dataclass
class SummaryStats:
    """Five-number-style summary of a sample set (times in ps)."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p90: float
    p99: float
    p999: float

    @classmethod
    def of(cls, samples: Sequence[float]) -> Optional["SummaryStats"]:
        """Summarise ``samples``; ``None`` for an empty set.

        A single sample yields a degenerate summary (std 0, every
        percentile equal to the sample) rather than an error, so
        callers can summarise whatever a run produced.
        """
        if not samples:
            return None
        ordered = sorted(samples)
        count = len(ordered)
        mean = sum(ordered) / count
        variance = sum((x - mean) ** 2 for x in ordered) / count
        return cls(
            count=count,
            mean=mean,
            std=math.sqrt(variance),
            minimum=ordered[0],
            maximum=ordered[-1],
            p50=percentile(ordered, 50, presorted=True),
            p90=percentile(ordered, 90, presorted=True),
            p99=percentile(ordered, 99, presorted=True),
            p999=percentile(ordered, 99.9, presorted=True),
        )


def percentile(
    samples: Sequence[float], pct: float, presorted: bool = False
) -> Optional[float]:
    """Linear-interpolation percentile (inclusive method).

    ``None`` for an empty sample set; a single sample is its own value
    at every percentile. An out-of-range ``pct`` is still a caller bug
    and raises.
    """
    if not 0 <= pct <= 100:
        raise ConfigError(f"percentile must be in [0, 100], got {pct}")
    if not samples:
        return None
    ordered = samples if presorted else sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * pct / 100
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(ordered[low])
    weight = rank - low
    # a + w*(b-a) rather than a*(1-w) + b*w: exact when a == b and never
    # leaves the [a, b] interval through rounding.
    return ordered[low] + weight * (ordered[high] - ordered[low])


def rfc3550_jitter(transit_times: Sequence[float]) -> float:
    """Smoothed interarrival jitter, as RTP receivers compute it.

    ``J += (|D(i-1, i)| - J) / 16`` where D is the change in one-way
    transit time between consecutive packets.
    """
    jitter = 0.0
    for previous, current in zip(transit_times, transit_times[1:]):
        jitter += (abs(current - previous) - jitter) / 16
    return jitter


def gap_jitter_std(timestamps: Sequence[int]) -> float:
    """Standard deviation of inter-arrival gaps (pacing jitter)."""
    gaps = [b - a for a, b in zip(timestamps, timestamps[1:])]
    if len(gaps) < 2:
        return 0.0
    mean = sum(gaps) / len(gaps)
    return math.sqrt(sum((g - mean) ** 2 for g in gaps) / len(gaps))


class Histogram:
    """Fixed-width-bin histogram with under/overflow buckets."""

    def __init__(self, low: float, high: float, bins: int) -> None:
        if bins < 1:
            raise ConfigError("histogram needs at least one bin")
        if high <= low:
            raise ConfigError("histogram range must be non-empty")
        self.low = low
        self.high = high
        self.bins = bins
        self.counts: List[int] = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self.total = 0
        self._width = (high - low) / bins

    def add(self, value: float) -> None:
        self.total += 1
        if value < self.low:
            self.underflow += 1
        elif value >= self.high:
            self.overflow += 1
        else:
            self.counts[int((value - self.low) / self._width)] += 1

    def add_all(self, values: Sequence[float]) -> None:
        for value in values:
            self.add(value)

    def bin_edges(self) -> List[float]:
        return [self.low + i * self._width for i in range(self.bins + 1)]

    def nonzero_rows(self) -> List[tuple]:
        """(low_edge, high_edge, count) for populated bins."""
        edges = self.bin_edges()
        return [
            (edges[i], edges[i + 1], count)
            for i, count in enumerate(self.counts)
            if count
        ]

    def mode_bin(self) -> Optional[tuple]:
        rows = self.nonzero_rows()
        if not rows:
            return None
        return max(rows, key=lambda row: row[2])


class RateEstimator:
    """Windowed packet/byte rate estimation from (timestamp, size) pairs."""

    def __init__(self, window_ps: int) -> None:
        if window_ps <= 0:
            raise ConfigError("rate window must be positive")
        self.window_ps = window_ps
        self._samples: List[tuple] = []

    def add(self, timestamp_ps: int, nbytes: int) -> None:
        self._samples.append((timestamp_ps, nbytes))

    def series(self) -> List[tuple]:
        """(window_start_ps, packets, bytes, bps) per window."""
        if not self._samples:
            return []
        start = self._samples[0][0]
        rows = []
        window_index = 0
        packets = 0
        nbytes = 0
        for timestamp, size in self._samples:
            index = (timestamp - start) // self.window_ps
            while index > window_index:
                rows.append(self._row(start, window_index, packets, nbytes))
                window_index += 1
                packets = 0
                nbytes = 0
            packets += 1
            nbytes += size
        rows.append(self._row(start, window_index, packets, nbytes))
        return rows

    def _row(self, start: int, index: int, packets: int, nbytes: int) -> tuple:
        window_start = start + index * self.window_ps
        bps = nbytes * 8 * 1e12 / self.window_ps
        return (window_start, packets, nbytes, bps)
