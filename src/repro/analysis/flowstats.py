"""Per-flow statistics over a capture.

The OSNT monitoring application aggregates captured packets into flows
for reporting — achievable bandwidth per flow, flow durations, top
talkers. This module turns a host capture buffer (or any packet
sequence with RX timestamps) into a per-5-tuple accounting table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..net.flows import FiveTuple, extract_five_tuple
from ..net.packet import Packet


@dataclass
class FlowRecord:
    """Accumulated state of one flow."""

    key: FiveTuple
    packets: int = 0
    bytes: int = 0  # frame bytes incl. FCS
    first_seen_ps: Optional[int] = None
    last_seen_ps: Optional[int] = None

    def note(self, packet: Packet) -> None:
        self.packets += 1
        self.bytes += packet.frame_length
        stamp = packet.rx_timestamp
        if stamp is not None:
            if self.first_seen_ps is None:
                self.first_seen_ps = stamp
            self.last_seen_ps = stamp

    @property
    def duration_ps(self) -> int:
        if self.first_seen_ps is None or self.last_seen_ps is None:
            return 0
        return self.last_seen_ps - self.first_seen_ps

    @property
    def mean_bps(self) -> float:
        if self.duration_ps <= 0:
            return 0.0
        return self.bytes * 8 * 1e12 / self.duration_ps


class FlowAccounting:
    """Aggregates packets into per-5-tuple flow records."""

    def __init__(self, bidirectional: bool = False) -> None:
        #: Fold both directions of a conversation into one record.
        self.bidirectional = bidirectional
        self.flows: Dict[FiveTuple, FlowRecord] = {}
        self.non_ip_packets = 0

    def add(self, packet: Packet) -> Optional[FlowRecord]:
        key = extract_five_tuple(packet.data)
        if key is None:
            self.non_ip_packets += 1
            return None
        if self.bidirectional and key.reversed() in self.flows:
            key = key.reversed()
        record = self.flows.get(key)
        if record is None:
            record = FlowRecord(key=key)
            self.flows[key] = record
        record.note(packet)
        return record

    def add_all(self, packets: Sequence[Packet]) -> "FlowAccounting":
        for packet in packets:
            self.add(packet)
        return self

    # -- reporting --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.flows)

    def top_talkers(self, count: int = 10) -> List[FlowRecord]:
        """Flows ordered by byte volume, largest first."""
        return sorted(self.flows.values(), key=lambda r: r.bytes, reverse=True)[:count]

    def total_bytes(self) -> int:
        return sum(record.bytes for record in self.flows.values())

    def total_packets(self) -> int:
        return sum(record.packets for record in self.flows.values())

    def table_rows(self, count: int = 10) -> List[list]:
        """Rows for :func:`repro.analysis.report.format_table`."""
        return [
            [
                str(record.key),
                record.packets,
                record.bytes,
                round(record.duration_ps / 1e9, 3),  # ms
                round(record.mean_bps / 1e6, 3),  # Mbps
            ]
            for record in self.top_talkers(count)
        ]


def flows_from_capture(
    packets: Sequence[Packet], bidirectional: bool = False
) -> FlowAccounting:
    """One-shot aggregation of a capture into flow records."""
    return FlowAccounting(bidirectional=bidirectional).add_all(packets)


def merge_captures(*captures, key=None):
    """Merge packet sequences from several monitors into one timeline.

    Packets are ordered by hardware RX timestamp (unstamped packets sort
    last); ``key`` overrides the sort key. Useful when an experiment
    observes multiple DUT egress ports and needs one event sequence —
    e.g. the forwarding-consistency analysis across old/new paths.
    """
    merged = [packet for capture in captures for packet in capture]
    merged.sort(key=key or (lambda p: (p.rx_timestamp is None, p.rx_timestamp or 0)))
    return merged
