"""Flow-completion-time analysis.

Reduces a list of :class:`~repro.flows.FlowCompletion` records — the
transport's per-flow outcomes — into the numbers loss-protection
papers argue with: the FCT distribution, per-flow goodput, and the
*effective* loss rate the transport experienced (retransmitted
segments over segments sent, i.e. loss after any link-local recovery).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .stats import SummaryStats


def _summary_dict(summary: Optional[SummaryStats], scale: float) -> Dict[str, float]:
    if summary is None:
        return {"count": 0}
    return {
        "count": summary.count,
        "mean": summary.mean * scale,
        "min": summary.minimum * scale,
        "max": summary.maximum * scale,
        "p50": summary.p50 * scale,
        "p90": summary.p90 * scale,
        "p99": summary.p99 * scale,
    }


def fct_report(records: List[Any]) -> Dict[str, Any]:
    """Summarise flow outcomes (see module docstring).

    Accepts any objects with the :class:`~repro.flows.FlowCompletion`
    fields. Incomplete flows (give-ups) are excluded from the FCT and
    goodput distributions but included in the loss accounting — a flow
    that died retransmitting is the strongest loss signal there is.
    """
    completed = [r for r in records if r.completed]
    segments_sent = sum(r.segments_sent for r in records)
    retransmits = sum(r.retransmits for r in records)
    fct = SummaryStats.of([r.fct_ps for r in completed])
    goodput = SummaryStats.of([r.goodput_bps for r in completed])
    return {
        "flows": len(records),
        "flows_completed": len(completed),
        "bytes_acked": sum(r.bytes_acked for r in records),
        "segments_sent": segments_sent,
        "retransmits": retransmits,
        "fast_retransmits": sum(r.fast_retransmits for r in records),
        "timeouts": sum(r.timeouts for r in records),
        # Loss as the transport saw it: every retransmitted segment
        # stands for a data segment (or its ACK) that never made it.
        "effective_loss_rate": retransmits / segments_sent if segments_sent else 0.0,
        "fct_us": _summary_dict(fct, 1e-6),
        "goodput_gbps": _summary_dict(goodput, 1e-9),
    }


__all__ = ["fct_report"]
