"""Plain-text tables for benchmark and experiment output."""

from __future__ import annotations

from typing import Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table (right-aligned numeric cells)."""
    cells = [[_render(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, text in enumerate(row):
            widths[index] = max(widths[index], len(text))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for original, row in zip(rows, cells):
        rendered = []
        for index, text in enumerate(row):
            if isinstance(original[index], (int, float)) and not isinstance(
                original[index], bool
            ):
                rendered.append(text.rjust(widths[index]))
            else:
                rendered.append(text.ljust(widths[index]))
        lines.append("  ".join(rendered))
    return "\n".join(lines)


def _render(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.6f}"
    return str(value)


def format_microseconds(ps: float) -> str:
    return f"{ps / 1e6:.3f}"


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> None:
    print(format_table(headers, rows, title=title))
    print()
