"""Measurement analysis: latency extraction, statistics, reports."""

from .fct import fct_report
from .flowstats import FlowAccounting, FlowRecord, flows_from_capture, merge_captures
from .latency import (
    LatencyResult,
    LossResult,
    arrival_jitter_ps,
    latency_from_capture,
    loss_from_sequence_numbers,
)
from .report import format_microseconds, format_table, print_table
from .stats import (
    Histogram,
    RateEstimator,
    SummaryStats,
    gap_jitter_std,
    percentile,
    rfc3550_jitter,
)

__all__ = [
    "FlowAccounting",
    "FlowRecord",
    "Histogram",
    "LatencyResult",
    "LossResult",
    "RateEstimator",
    "SummaryStats",
    "arrival_jitter_ps",
    "fct_report",
    "flows_from_capture",
    "format_microseconds",
    "format_table",
    "gap_jitter_std",
    "latency_from_capture",
    "merge_captures",
    "loss_from_sequence_numbers",
    "percentile",
    "print_table",
    "rfc3550_jitter",
]
