"""Latency extraction from OSNT captures.

The demo's Part I measurement: the generator embeds a TX timestamp in
each packet; the monitor timestamps on receipt; latency is the
difference — both stamps from the same GPS-disciplined clock, so no
cross-device synchronisation error. These helpers turn a host capture
buffer into latency samples, summaries and loss counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..errors import ReproError
from ..net.packet import Packet
from ..osnt.generator.tx_timestamp import DEFAULT_OFFSET, STAMP_BYTES, extract_ps
from .stats import SummaryStats, gap_jitter_std, rfc3550_jitter


@dataclass
class LatencyResult:
    """Per-run latency measurement output (times in ps)."""

    samples: List[int] = field(default_factory=list)
    skipped: int = 0  # packets without a readable stamp

    @property
    def summary(self) -> SummaryStats:
        return SummaryStats.of(self.samples)

    @property
    def jitter_rfc3550_ps(self) -> float:
        return rfc3550_jitter(self.samples)

    def as_microseconds(self) -> List[float]:
        return [sample / 1e6 for sample in self.samples]


def latency_from_capture(
    packets: Sequence[Packet],
    timestamp_offset: int = DEFAULT_OFFSET,
) -> LatencyResult:
    """Latency samples for every captured packet with an embedded stamp.

    Packets whose capture is too short to contain the stamp (cut before
    the offset) or that carry no RX timestamp are counted as skipped.
    """
    result = LatencyResult()
    for packet in packets:
        if packet.rx_timestamp is None:
            result.skipped += 1
            continue
        usable = (
            packet.capture_length
            if packet.capture_length is not None
            else len(packet.data)
        )
        if timestamp_offset + STAMP_BYTES > usable:
            result.skipped += 1
            continue
        tx_ps = extract_ps(packet.data, timestamp_offset)
        if tx_ps == 0:
            result.skipped += 1  # stamp field never written
            continue
        result.samples.append(packet.rx_timestamp - tx_ps)
    return result


@dataclass
class LossResult:
    """Sequence-number based loss/reorder accounting."""

    received: int = 0
    lost: int = 0
    reordered: int = 0
    duplicates: int = 0

    @property
    def loss_fraction(self) -> float:
        offered = self.received + self.lost
        return self.lost / offered if offered else 0.0


def loss_from_sequence_numbers(
    packets: Sequence[Packet],
    offset: int,
    expected_count: Optional[int] = None,
) -> LossResult:
    """Analyse 32-bit sequence numbers written by
    :class:`~repro.osnt.generator.field_modifiers.SequenceNumber`.

    If ``expected_count`` is given, trailing losses (sequence numbers
    never seen at all) are included.
    """
    result = LossResult()
    seen = set()
    highest = -1
    for packet in packets:
        if offset + 4 > len(packet.data):
            raise ReproError(
                f"sequence offset {offset} beyond {len(packet.data)}-byte capture"
            )
        seq = int.from_bytes(packet.data[offset : offset + 4], "big")
        result.received += 1
        if seq in seen:
            result.duplicates += 1
            continue
        if seq < highest:
            result.reordered += 1
        seen.add(seq)
        highest = max(highest, seq)
    unique = len(seen)
    if expected_count is not None:
        result.lost = expected_count - unique
    else:
        result.lost = (highest + 1) - unique if highest >= 0 else 0
    return result


def arrival_jitter_ps(packets: Sequence[Packet]) -> float:
    """Std-dev of RX inter-arrival gaps, from hardware RX timestamps."""
    stamps = [p.rx_timestamp for p in packets if p.rx_timestamp is not None]
    return gap_jitter_std(stamps)
