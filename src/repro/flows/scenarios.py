"""Closed-loop flow scenarios: FCT under corruption loss.

Three measurement points, each registered as a sweepable scenario in
:mod:`repro.runner.scenarios`:

* ``fct_vs_loss`` — the LinkGuardian headline experiment: a batch of
  flows across a corrupting link, with and without link-local
  protection. Protection recovers near-lossless FCT; the unprotected
  link's tail collapses into RTO territory.
* ``effective_loss_vs_speed`` — the loss rate the *transport* sees at
  different link speeds, protected vs raw.
* ``throughput_under_bursty_corruption`` — aggregate goodput when the
  corruption arrives in geometric bursts (the hard case for loss
  protection: consecutive local retransmits).

All three build their host–switch–host testbed through the declarative
:class:`repro.topology.Topology` builder, and compose with
:mod:`repro.faults` via an optional ``impairments`` list applied to the
clean (h1-side) link. Results carry a ``flow_digest`` — a SHA-256 over
the full per-flow outcome table — which the determinism tests compare
across worker counts, resume, and with observability armed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..analysis.fct import fct_report
from ..sim import Simulator
from ..topology import Topology
from ..units import rate_bps, us
from .protection import LinkGuardian
from .transport import Flow, FlowConfig, FlowEndpoint, completions_digest


def _arm_obs(sim: Simulator, observe: bool) -> None:
    """Optionally arm packet-lifecycle spans (repro.obs composition).

    Spans are a pure observation point: arming them must not perturb a
    single timestamp, so every scenario result stays byte-identical
    with ``observe`` on or off — the determinism tests assert exactly
    that.
    """
    if observe:
        from ..obs import SpanRecorder

        SpanRecorder().arm(sim)


def _pair_topology(link_rate, switch_seed: int) -> Topology:
    """h1 —(clean)— s1 —(dirty)— h2, both cables at ``link_rate``."""
    return (
        Topology(name="flow-pair")
        .host("h1", rate=link_rate)
        .host("h2", rate=link_rate)
        .node("s1", "legacy_switch", ports=2, rate=link_rate, seed=switch_seed)
        .link("h1", "s1:0", rate=link_rate)
        .link("s1:1", "h2", rate=link_rate)
    )


def _run_flows(
    sim: Simulator,
    src: FlowEndpoint,
    dst: FlowEndpoint,
    n_flows: int,
    flow_bytes: int,
    spacing_ps: int,
    config: FlowConfig,
) -> List[Flow]:
    flows = [
        src.flow_to(dst, size_bytes=flow_bytes, start_ps=i * spacing_ps, config=config)
        for i in range(n_flows)
    ]
    sim.run()
    return flows


def _apply_impairments(sim, impairments, link, seed: int):
    """Optional repro.faults composition on the clean link."""
    if not impairments:
        return None
    from ..faults.injector import FaultInjector
    from ..faults.spec import ImpairmentSpec

    injector = FaultInjector(sim, ImpairmentSpec.from_any(impairments), seed=seed)
    injector.bind(link=link).arm()
    return injector


def fct_vs_loss_point(
    corrupt_rate: float,
    protected: bool,
    n_flows: int = 64,
    flow_bytes: int = 60_000,
    link_rate="10Gbps",
    burst: float = 1.0,
    spacing_ps: int = us(50),
    seed: int = 0,
    switch_seed: int = 1,
    direction: Optional[str] = "a_to_b",
    impairments: Optional[List[Dict[str, Any]]] = None,
    observe: bool = False,
) -> Dict[str, Any]:
    """FCT distribution for a flow batch over a corrupting last hop.

    The guardian rides the s1→h2 cable, corrupting the data direction
    (``direction="a_to_b"``, like LinkGuardian's single-direction
    experiments; pass None to corrupt ACKs too). The corruption pattern
    is drawn identically whether ``protected`` is on or off — same seed
    → same corrupted frames, only their fate differs.
    """
    sim = Simulator()
    _arm_obs(sim, observe)
    built = _pair_topology(link_rate, switch_seed).build(sim)
    guardian = LinkGuardian(
        corrupt_rate=corrupt_rate,
        protected=protected,
        burst=burst,
        seed=seed,
        direction=direction,
    ).attach(built.link_between("s1", "h2"))
    injector = _apply_impairments(
        sim, impairments, built.link_between("h1", "s1"), seed
    )
    src, dst = FlowEndpoint(built.node("h1")), FlowEndpoint(built.node("h2"))
    flows = _run_flows(sim, src, dst, n_flows, flow_bytes, spacing_ps, FlowConfig())
    records = [flow.record for flow in flows]
    result = {
        "corrupt_rate": corrupt_rate,
        "protected": protected,
        "burst": burst,
        **fct_report(records),
        "link": guardian.counters(),
        "link_effective_loss_rate": guardian.effective_loss_rate,
        "flow_digest": completions_digest(records),
    }
    if injector is not None:
        result["fault_timeline_digest"] = injector.timeline_digest()
    return result


def effective_loss_vs_speed_point(
    link_rate,
    corrupt_rate: float = 1e-3,
    protected: bool = True,
    n_flows: int = 16,
    flow_bytes: int = 30_000,
    spacing_ps: int = us(50),
    seed: int = 0,
    switch_seed: int = 1,
    observe: bool = False,
) -> Dict[str, Any]:
    """Transport-visible loss rate at a given link speed.

    The corruption probability is per frame, so the *per-second*
    corruption rate scales with link speed — LinkGuardian's argument
    for why corruption loss gets worse beyond 10 Gbps. Reported per
    speed: the link's residual loss after protection and the effective
    loss rate the transport measured (retransmits / segments).
    """
    sim = Simulator()
    _arm_obs(sim, observe)
    built = _pair_topology(link_rate, switch_seed).build(sim)
    guardian = LinkGuardian(
        corrupt_rate=corrupt_rate, protected=protected, seed=seed
    ).attach(built.link_between("s1", "h2"))
    src, dst = FlowEndpoint(built.node("h1")), FlowEndpoint(built.node("h2"))
    flows = _run_flows(sim, src, dst, n_flows, flow_bytes, spacing_ps, FlowConfig())
    records = [flow.record for flow in flows]
    report = fct_report(records)
    return {
        "link_rate_bps": rate_bps(link_rate),
        "corrupt_rate": corrupt_rate,
        "protected": protected,
        **report,
        "link": guardian.counters(),
        "link_effective_loss_rate": guardian.effective_loss_rate,
        "flow_digest": completions_digest(records),
    }


def throughput_under_bursty_corruption_point(
    corrupt_rate: float,
    burst: float,
    protected: bool = True,
    n_flows: int = 8,
    flow_bytes: int = 120_000,
    link_rate="10Gbps",
    spacing_ps: int = us(20),
    seed: int = 0,
    switch_seed: int = 1,
    observe: bool = False,
) -> Dict[str, Any]:
    """Aggregate goodput when corruption arrives in geometric bursts.

    Bursts are the stress case for link-local retransmission: each
    corrupted frame needs its own recovery rounds, and back-to-back
    corruptions stack holdback delay. Compare the same ``corrupt_rate``
    at ``burst=1`` (i.i.d.) vs larger means.
    """
    sim = Simulator()
    _arm_obs(sim, observe)
    built = _pair_topology(link_rate, switch_seed).build(sim)
    guardian = LinkGuardian(
        corrupt_rate=corrupt_rate, protected=protected, burst=burst, seed=seed
    ).attach(built.link_between("s1", "h2"))
    src, dst = FlowEndpoint(built.node("h1")), FlowEndpoint(built.node("h2"))
    flows = _run_flows(sim, src, dst, n_flows, flow_bytes, spacing_ps, FlowConfig())
    records = [flow.record for flow in flows]
    report = fct_report(records)
    aggregate_bits = sum(r.bytes_acked for r in records) * 8
    span_ps = max((r.end_ps for r in records), default=0) - min(
        (r.start_ps for r in records), default=0
    )
    return {
        "corrupt_rate": corrupt_rate,
        "burst": burst,
        "protected": protected,
        **report,
        "aggregate_goodput_gbps": (
            aggregate_bits / (span_ps * 1e-12) / 1e9 if span_ps > 0 else 0.0
        ),
        "link": guardian.counters(),
        "flow_digest": completions_digest(records),
    }


__all__ = [
    "effective_loss_vs_speed_point",
    "fct_vs_loss_point",
    "throughput_under_bursty_corruption_point",
]
