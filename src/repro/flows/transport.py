"""A minimal TCP-ish transport over :class:`~repro.devices.SimpleHost`.

The paper's tester only ever *measures* open-loop packet streams; the
mechanisms worth evaluating beyond 10 Gbps (loss protection, shallow
buffers, control-plane churn) matter because real traffic is
closed-loop — it reacts to loss and delay. :class:`FlowEndpoint`
attaches that reaction to a host NIC:

* a sender (:class:`FlowSender`) with slow start + AIMD congestion
  control, fast retransmit on 3 duplicate ACKs with NewReno
  partial-ACK hole repair, and an RTO with exponential backoff and
  go-back-N recovery;
* per-flow RTT estimation per RFC 6298 (SRTT/RTTVAR, Karn's rule: no
  samples from retransmitted segments);
* a receiver (:class:`FlowReceiver`) with cumulative ACKs and an
  out-of-order reassembly buffer, ACKing every data segment so
  duplicate ACKs carry loss information.

The model is deliberately smaller than TCP: no handshake or FIN
exchange (flows are declared, not negotiated), no SACK, no delayed
ACKs, byte sequence numbers starting at zero. Everything is
deterministic — the transport draws no random numbers, so two runs
with the same topology and fault seed produce bit-identical
:class:`FlowCompletion` records at any worker count.

Scale note: simulated RTTs are microseconds (not the milliseconds the
RFC constants assume), so the timer defaults in :class:`FlowConfig`
are scaled down ~1000× — an RTO floor of 1 ms against ~10 µs RTTs
keeps the classic datacenter ratio (RTO_min ≈ 100× RTT) that makes
timeout recovery catastrophically slower than fast retransmit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..errors import FlowError
from ..net.builder import _frame  # module-internal helper reused deliberately
from ..net.ethernet import ETHERTYPE_IPV4
from ..net.ipv4 import Ipv4Header, PROTO_TCP
from ..net.tcp import FLAG_ACK, FLAG_PSH, TcpHeader
from ..units import ms, us

if TYPE_CHECKING:
    from ..devices.host import SimpleHost
    from ..net.parser import DecodedPacket

#: First ephemeral source port handed out by an endpoint.
EPHEMERAL_PORT_BASE = 49152
#: First service port handed out for receivers.
SERVICE_PORT_BASE = 5001


@dataclass
class FlowConfig:
    """Transport tuning knobs (defaults scaled to µs-class RTTs)."""

    mss: int = 1460
    initial_cwnd: float = 4.0
    dup_ack_threshold: int = 3
    ack_delay_ps: int = us(1)
    initial_rto_ps: int = ms(3)
    rto_min_ps: int = ms(1)
    rto_max_ps: int = ms(100)
    #: Consecutive RTO expiries before the flow gives up (records an
    #: incomplete :class:`FlowCompletion` instead of keeping an
    #: open-ended ``sim.run()`` alive forever).
    max_consecutive_timeouts: int = 8

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise FlowError(f"mss must be positive, got {self.mss}")
        if self.initial_cwnd < 1.0:
            raise FlowError("initial_cwnd must be >= 1 segment")
        if self.dup_ack_threshold < 1:
            raise FlowError("dup_ack_threshold must be >= 1")
        if not 0 < self.rto_min_ps <= self.rto_max_ps:
            raise FlowError("need 0 < rto_min_ps <= rto_max_ps")
        if self.max_consecutive_timeouts < 1:
            raise FlowError("max_consecutive_timeouts must be >= 1")


@dataclass
class FlowCompletion:
    """The outcome of one flow, recorded exactly once at completion
    (or at give-up, with ``completed=False``)."""

    flow_id: str
    src: str
    dst: str
    size_bytes: int
    start_ps: int
    end_ps: int
    completed: bool
    fct_ps: int
    segments_sent: int
    payload_bytes_sent: int
    bytes_acked: int
    retransmits: int
    fast_retransmits: int
    timeouts: int
    min_rtt_ps: Optional[int]
    srtt_ps: Optional[int]

    @property
    def goodput_bps(self) -> float:
        """Application bytes delivered per second of flow lifetime."""
        if self.fct_ps <= 0:
            return 0.0
        return self.bytes_acked * 8 / (self.fct_ps * 1e-12)


def completions_digest(records: List[FlowCompletion]) -> str:
    """SHA-256 over the full per-flow outcome table (order-sensitive).

    The determinism tests compare this across worker counts, resumes
    and observability arming — any behavioural divergence in the
    transport or the impairment timeline changes it.
    """
    canonical = json.dumps(
        [asdict(record) for record in records], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


class FlowEndpoint:
    """The transport attachment point on one :class:`SimpleHost`.

    Demultiplexes inbound TCP segments to per-flow handlers by
    ``(remote ip, remote port, local port)``. Create one per host, then
    open flows with :meth:`flow_to`; detach with :meth:`detach` when a
    testbed is reused for open-loop traffic.
    """

    def __init__(self, host: "SimpleHost") -> None:
        self.host = host
        self.sim = host.sim
        self._handlers: Dict[Tuple[str, int, int], object] = {}
        self._next_src_port = EPHEMERAL_PORT_BASE
        self._next_dst_port = SERVICE_PORT_BASE
        #: TCP segments addressed to this host that matched no flow.
        self.stray_segments = 0
        #: TCP segments seen but not addressed to this host (flooding).
        self.ignored_segments = 0
        #: Completed/aborted flow records, in completion order.
        self.completions: List[FlowCompletion] = []
        self._attached = False
        host.attach_transport(self)
        self._attached = True

    def detach(self) -> None:
        """Release the host NIC (idempotent)."""
        if self._attached:
            self.host.detach_transport(self)
            self._attached = False

    def flow_to(
        self,
        peer: "FlowEndpoint",
        size_bytes: int,
        start_ps: int = 0,
        config: Optional[FlowConfig] = None,
    ) -> "Flow":
        """Open a one-directional flow of ``size_bytes`` to ``peer``.

        The flow starts sending at ``start_ps`` (or now, whichever is
        later). Port numbers are allocated deterministically from each
        endpoint's counters, so flow identity depends only on creation
        order.
        """
        if not self._attached or not peer._attached:
            raise FlowError("both endpoints must be attached to open a flow")
        if peer is self:
            raise FlowError("cannot open a flow to the same endpoint")
        if size_bytes <= 0:
            raise FlowError(f"flow size must be positive, got {size_bytes}")
        config = config or FlowConfig()
        src_port = self._next_src_port
        self._next_src_port += 1
        dst_port = peer._next_dst_port
        peer._next_dst_port += 1
        flow = Flow(self, peer, size_bytes, start_ps, src_port, dst_port, config)
        # Inbound demux keys are (ipv4.src, tcp.src_port, tcp.dst_port)
        # of arriving frames: ACKs for the sender, data for the receiver.
        self._handlers[(peer.host.ip, dst_port, src_port)] = flow.sender
        peer._handlers[(self.host.ip, src_port, dst_port)] = flow.receiver
        return flow

    def _on_frame(self, decoded: "DecodedPacket") -> None:
        if decoded.ipv4 is None or decoded.ipv4.dst != self.host.ip:
            self.ignored_segments += 1  # flooded copy for someone else
            return
        tcp = decoded.tcp
        key = (decoded.ipv4.src, tcp.src_port, tcp.dst_port)
        handler = self._handlers.get(key)
        if handler is None:
            self.stray_segments += 1
            return
        handler._on_segment(decoded)

    def _record(self, completion: FlowCompletion) -> None:
        self.completions.append(completion)

    def _send_segment(
        self,
        peer: "FlowEndpoint",
        src_port: int,
        dst_port: int,
        seq: int,
        ack: int,
        flags: int,
        payload: bytes,
    ) -> bool:
        # Checksums are skipped on purpose (no addresses passed to
        # pack): the simulated wire never flips payload bits — faults
        # drop whole frames — and flows send millions of segments.
        tcp = TcpHeader(
            src_port=src_port, dst_port=dst_port, seq=seq, ack=ack, flags=flags
        )
        segment = tcp.pack(payload)
        ip = Ipv4Header(src=self.host.ip, dst=peer.host.ip, protocol=PROTO_TCP)
        network = ip.pack(len(segment)) + segment
        frame = _frame(self.host.mac, peer.host.mac, ETHERTYPE_IPV4, network, None)
        return self.host.port.send(frame)


class Flow:
    """One declared transfer: a sender/receiver pair plus its record."""

    def __init__(
        self,
        src: FlowEndpoint,
        dst: FlowEndpoint,
        size_bytes: int,
        start_ps: int,
        src_port: int,
        dst_port: int,
        config: FlowConfig,
    ) -> None:
        self.flow_id = f"{src.host.name}->{dst.host.name}:{src_port}"
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.config = config
        self.receiver = FlowReceiver(self, dst, src_port, dst_port)
        self.sender = FlowSender(self, src, dst, size_bytes, start_ps, src_port, dst_port)

    @property
    def record(self) -> Optional[FlowCompletion]:
        """The flow's outcome (None while still running)."""
        return self.sender.record

    @property
    def completed(self) -> bool:
        return self.sender.record is not None and self.sender.record.completed


class FlowSender:
    """Sender-side congestion control, retransmission and RTT state."""

    def __init__(
        self,
        flow: Flow,
        endpoint: FlowEndpoint,
        peer: FlowEndpoint,
        size_bytes: int,
        start_ps: int,
        src_port: int,
        dst_port: int,
    ) -> None:
        self.flow = flow
        self.endpoint = endpoint
        self.peer = peer
        self.sim = endpoint.sim
        self.size = size_bytes
        self.src_port = src_port
        self.dst_port = dst_port
        cfg = flow.config
        self.cfg = cfg

        self.snd_una = 0  # lowest unacknowledged byte
        self.snd_nxt = 0  # next new byte to send
        self.cwnd = cfg.initial_cwnd  # in segments (float: AIMD fractions)
        self.ssthresh = float("inf")
        self.dup_acks = 0
        self.in_recovery = False
        self.recover = 0  # NewReno: snd_nxt at loss detection
        #: start offset → (send time, was retransmitted) for in-flight
        #: segments; cleared wholesale on timeout (go-back-N).
        self._sent: Dict[int, Tuple[int, bool]] = {}
        #: Exclusive high-water mark of transmitted bytes. Any send
        #: below it is a retransmission even when it arrives via the
        #: normal window-fill path (go-back-N after an RTO) — it must
        #: be counted and is RTT-ambiguous under Karn's rule.
        self._max_sent = 0

        self.srtt_ps: Optional[int] = None
        self.rttvar_ps = 0
        self.min_rtt_ps: Optional[int] = None
        self.rto_ps = cfg.initial_rto_ps
        self._timer = None
        self._consecutive_timeouts = 0

        self.segments_sent = 0
        self.payload_bytes_sent = 0
        self.retransmits = 0
        self.fast_retransmits = 0
        self.timeouts = 0
        self.record: Optional[FlowCompletion] = None
        self.start_actual_ps: Optional[int] = None
        self._waves_cache = None

        # Foreground on purpose: a pending RTO must keep an open-ended
        # sim.run() alive, otherwise in-flight flows would be abandoned.
        self.sim.call_at(max(start_ps, self.sim.now), self._start)

    # -- transmission --------------------------------------------------------

    def _start(self) -> None:
        self.start_actual_ps = self.sim.now
        self._fill_window()
        self._rearm_timer()
        self._wave_probe()

    def _wave_probe(self) -> None:
        """Record cwnd and flight size when a waveform recorder is armed."""
        waves = self.sim.waves
        if waves is None:
            return
        cache = self._waves_cache
        if cache is None or cache[0] is not waves:
            flow_id = self.flow.flow_id
            cache = self._waves_cache = (
                waves,
                waves.series(f"flow.{flow_id}.cwnd", unit="segments"),
                waves.series(f"flow.{flow_id}.flight_bytes", unit="bytes"),
            )
        now = self.sim.now
        cache[1].record(now, self.cwnd)
        cache[2].record(now, self.snd_nxt - self.snd_una)

    def _fill_window(self) -> None:
        window_bytes = int(self.cwnd) * self.cfg.mss
        while (
            self.snd_nxt < self.size
            and self.snd_nxt - self.snd_una < window_bytes
        ):
            length = min(self.cfg.mss, self.size - self.snd_nxt)
            self._transmit(self.snd_nxt, length, retransmit=False)
            self.snd_nxt += length

    def _transmit(self, offset: int, length: int, retransmit: bool) -> None:
        self.endpoint._send_segment(
            self.peer,
            self.src_port,
            self.dst_port,
            seq=offset,
            ack=0,
            flags=FLAG_ACK | FLAG_PSH,
            payload=b"\x00" * length,
        )
        self.segments_sent += 1
        self.payload_bytes_sent += length
        is_retx = retransmit or offset < self._max_sent
        if is_retx:
            self.retransmits += 1
        self._sent[offset] = (self.sim.now, is_retx)
        self._max_sent = max(self._max_sent, offset + length)

    def _segment_length(self, offset: int) -> int:
        return min(self.cfg.mss, self.size - offset)

    # -- ACK processing ------------------------------------------------------

    def _on_segment(self, decoded: "DecodedPacket") -> None:
        if self.record is not None:
            return  # late ACK after completion/abort
        ack = decoded.tcp.ack
        if ack > self.snd_una:
            self._on_new_ack(ack)
        elif ack == self.snd_una and self.snd_nxt > self.snd_una:
            self._on_dup_ack()
        if self.record is None:
            self._wave_probe()

    def _on_new_ack(self, ack: int) -> None:
        newly_acked = ack - self.snd_una
        self._take_rtt_sample(ack)
        self.snd_una = ack
        self.dup_acks = 0
        self._consecutive_timeouts = 0
        if self.in_recovery:
            if ack >= self.recover:
                self.in_recovery = False
                self.cwnd = max(self.ssthresh, 1.0)
            else:
                # NewReno partial ACK: the next hole starts exactly at
                # ``ack`` — repair it now, deflate by what was acked.
                self._transmit(ack, self._segment_length(ack), retransmit=True)
                self.cwnd = max(self.cwnd - newly_acked / self.cfg.mss + 1.0, 1.0)
        else:
            acked_segments = newly_acked / self.cfg.mss
            if self.cwnd < self.ssthresh:
                self.cwnd += acked_segments  # slow start
            else:
                self.cwnd += acked_segments / self.cwnd  # AIMD increase
        if self.snd_una >= self.size:
            self._complete(completed=True)
            return
        self._rearm_timer()
        self._fill_window()

    def _on_dup_ack(self) -> None:
        self.dup_acks += 1
        if self.in_recovery:
            self.cwnd += 1.0  # window inflation per extra dup ACK
            self._fill_window()
            return
        if self.dup_acks == self.cfg.dup_ack_threshold:
            self.ssthresh = max(self.cwnd / 2.0, 2.0)
            self._transmit(
                self.snd_una, self._segment_length(self.snd_una), retransmit=True
            )
            self.fast_retransmits += 1
            self.in_recovery = True
            self.recover = self.snd_nxt
            self.cwnd = self.ssthresh + self.cfg.dup_ack_threshold
            self._rearm_timer()

    def _take_rtt_sample(self, ack: int) -> None:
        sample: Optional[Tuple[int, int]] = None  # (rtt, segment offset)
        for offset in [o for o in self._sent if o < ack]:
            sent_at, was_retx = self._sent.pop(offset)
            if not was_retx:  # Karn: retransmitted segments are ambiguous
                rtt = self.sim.now - sent_at
                if sample is None or offset > sample[1]:
                    sample = (rtt, offset)
        if sample is None:
            return
        rtt = sample[0]
        if self.min_rtt_ps is None or rtt < self.min_rtt_ps:
            self.min_rtt_ps = rtt
        if self.srtt_ps is None:
            self.srtt_ps = rtt
            self.rttvar_ps = rtt // 2
        else:
            self.rttvar_ps = (3 * self.rttvar_ps + abs(self.srtt_ps - rtt)) // 4
            self.srtt_ps = (7 * self.srtt_ps + rtt) // 8
        self.rto_ps = min(
            max(self.srtt_ps + 4 * self.rttvar_ps, self.cfg.rto_min_ps),
            self.cfg.rto_max_ps,
        )

    # -- retransmission timer ------------------------------------------------

    def _rearm_timer(self) -> None:
        if self._timer is not None:
            self.sim.cancel(self._timer)
        self._timer = self.sim.call_after(self.rto_ps, self._on_timeout)

    def _on_timeout(self) -> None:
        self._timer = None
        if self.record is not None:
            return
        self.timeouts += 1
        self._consecutive_timeouts += 1
        if self._consecutive_timeouts > self.cfg.max_consecutive_timeouts:
            self._complete(completed=False)
            return
        # Go-back-N: collapse the window, back the timer off, resend
        # from the hole. Everything in flight becomes ambiguous (Karn).
        inflight_segments = max(
            (self.snd_nxt - self.snd_una) / self.cfg.mss, 1.0
        )
        self.ssthresh = max(inflight_segments / 2.0, 2.0)
        self.cwnd = 1.0
        self.in_recovery = False
        self.dup_acks = 0
        self.snd_nxt = self.snd_una
        self._sent.clear()
        self.rto_ps = min(self.rto_ps * 2, self.cfg.rto_max_ps)
        length = self._segment_length(self.snd_una)
        self._transmit(self.snd_una, length, retransmit=True)
        self.snd_nxt = self.snd_una + length
        self._rearm_timer()
        self._wave_probe()

    # -- completion ----------------------------------------------------------

    def _complete(self, completed: bool) -> None:
        if self.record is not None:
            return
        if self._timer is not None:
            self.sim.cancel(self._timer)
            self._timer = None
        start = self.start_actual_ps if self.start_actual_ps is not None else self.sim.now
        self.record = FlowCompletion(
            flow_id=self.flow.flow_id,
            src=self.endpoint.host.name,
            dst=self.peer.host.name,
            size_bytes=self.size,
            start_ps=start,
            end_ps=self.sim.now,
            completed=completed,
            fct_ps=self.sim.now - start,
            segments_sent=self.segments_sent,
            payload_bytes_sent=self.payload_bytes_sent,
            bytes_acked=self.snd_una,
            retransmits=self.retransmits,
            fast_retransmits=self.fast_retransmits,
            timeouts=self.timeouts,
            min_rtt_ps=self.min_rtt_ps,
            srtt_ps=self.srtt_ps,
        )
        self.endpoint._record(self.record)


class FlowReceiver:
    """Receiver-side reassembly and cumulative ACK generation."""

    def __init__(
        self, flow: Flow, endpoint: FlowEndpoint, src_port: int, dst_port: int
    ) -> None:
        self.flow = flow
        self.endpoint = endpoint
        self.sim = endpoint.sim
        # Frames from the sender carry (src_port, dst_port); our ACKs
        # travel the reverse 4-tuple.
        self.sender_port = src_port
        self.local_port = dst_port
        self.rcv_nxt = 0
        #: Out-of-order segments: start offset → length (MSS-aligned,
        #: so equal offsets always describe the same bytes).
        self._out_of_order: Dict[int, int] = {}
        self.delivered_bytes = 0
        self.duplicate_bytes = 0
        self.acks_sent = 0

    def _on_segment(self, decoded: "DecodedPacket") -> None:
        offset = decoded.tcp.seq
        length = len(decoded.payload)
        if length == 0:
            return  # no pure-ACK traffic flows sender-ward; ignore
        if offset + length <= self.rcv_nxt:
            self.duplicate_bytes += length
        else:
            if offset < self.rcv_nxt:  # partial overlap with delivered data
                overlap = self.rcv_nxt - offset
                self.duplicate_bytes += overlap
                offset += overlap
                length -= overlap
            known = self._out_of_order.get(offset)
            if known is not None:
                self.duplicate_bytes += min(known, length)
            if known is None or length > known:
                self._out_of_order[offset] = length
            while self.rcv_nxt in self._out_of_order:
                advance = self._out_of_order.pop(self.rcv_nxt)
                self.rcv_nxt += advance
                self.delivered_bytes += advance
        # One ACK per data segment (even duplicates), after the stack
        # turnaround delay — duplicate ACKs are the loss signal. The
        # ACK value is snapshotted *now*: on a fast link several
        # segments arrive within one ack delay, and reading rcv_nxt at
        # send time would emit equal ACKs for in-order data — spurious
        # duplicate ACKs the sender would treat as loss.
        self.sim.call_after(self.flow.config.ack_delay_ps, self._send_ack, self.rcv_nxt)

    def _send_ack(self, ack: int) -> None:
        self.endpoint._send_segment(
            self.flow.src,
            src_port=self.local_port,
            dst_port=self.sender_port,
            seq=0,
            ack=ack,
            flags=FLAG_ACK,
            payload=b"",
        )
        self.acks_sent += 1


__all__ = [
    "EPHEMERAL_PORT_BASE",
    "SERVICE_PORT_BASE",
    "Flow",
    "FlowCompletion",
    "FlowConfig",
    "FlowEndpoint",
    "FlowReceiver",
    "FlowSender",
    "completions_digest",
]
