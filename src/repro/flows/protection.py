"""LinkGuardian-style link-local loss protection.

LinkGuardian's observation (PAPERS.md, ``NUS-SNL__linkguardian``): on
optical links the dominant loss mode is *corruption*, and because it is
link-local it can be repaired link-locally — a small retransmit buffer
on the upstream switch resends the corrupted frame in sub-RTT time, so
the transport never sees the loss and never pays an RTO or a cwnd
collapse. The same corrupting link without protection turns every
corrupted frame into a transport-visible drop.

:class:`LinkGuardian` models both sides of that comparison as a single
:meth:`Link impairment hook <repro.hw.port.Link.add_impairment>`:

* the *corruption pattern* is drawn from its own named RNG stream,
  with optional geometric bursts exactly like
  :class:`~repro.faults.models.LinkLossModel` — and it is drawn
  identically whether protection is on or off, so a protected and an
  unprotected run at the same seed corrupt the *same frames*;
* ``protected=False``: the corrupted frame is dropped at the far MAC
  (RX error + injected drop, like
  :class:`~repro.faults.models.LinkCorruptModel`);
* ``protected=True``: the frame is delivered late instead — each local
  retransmit attempt costs :attr:`retx_delay_ps` and can itself be
  corrupted (drawn from a *second* stream so retries never perturb the
  corruption pattern); after :attr:`max_retx` failed attempts the frame
  is genuinely lost (the *effective* loss rate, exponentially smaller
  than the corruption rate);
* recovered frames are released through a per-direction holdback gate
  so a recovery never reorders the link (LinkGuardian preserves FIFO
  by holding subsequent frames back too — here: by delaying them the
  minimum needed to keep arrival order).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import FlowError
from ..hw.port import DROP_FRAME, EthernetPort, Link
from ..sim import RandomStreams
from ..units import us


class LinkGuardian:
    """Corrupting link + optional switch-local retransmit protection."""

    def __init__(
        self,
        corrupt_rate: float,
        protected: bool = True,
        burst: float = 1.0,
        retx_delay_ps: int = us(2),
        max_retx: int = 3,
        seed: int = 0,
        direction: Optional[str] = None,
    ) -> None:
        if not 0.0 <= corrupt_rate < 1.0:
            raise FlowError(f"corrupt_rate must be in [0, 1), got {corrupt_rate}")
        if burst < 1.0:
            raise FlowError(f"burst must be >= 1, got {burst}")
        if retx_delay_ps <= 0:
            raise FlowError(f"retx_delay_ps must be positive, got {retx_delay_ps}")
        if max_retx < 1:
            raise FlowError(f"max_retx must be >= 1, got {max_retx}")
        if direction not in (None, "a_to_b", "b_to_a"):
            raise FlowError("direction must be 'a_to_b', 'b_to_a' or None")
        self.corrupt_rate = corrupt_rate
        self.protected = protected
        self.burst = burst
        self.retx_delay_ps = retx_delay_ps
        self.max_retx = max_retx
        self.direction = direction
        streams = RandomStreams(seed)
        # Two independent streams: the corruption pattern must be
        # bit-identical with protection on or off at the same seed, so
        # retry draws may never advance the corruption stream.
        self._corrupt_rng = streams.stream("linkguardian/corrupt")
        self._retx_rng = streams.stream("linkguardian/retx")
        self._burst_left = 0
        self.link: Optional[Link] = None
        #: Per-destination-port release gate (FIFO holdback), in ps.
        self._release_ps: Dict[str, int] = {}

        self.frames_seen = 0
        self.corrupted = 0
        self.recovered = 0
        self.lost = 0
        self.retx_attempts = 0

    def attach(self, link: Link) -> "LinkGuardian":
        """Hook this guardian onto a cable (once)."""
        if self.link is not None:
            raise FlowError("LinkGuardian is already attached to a link")
        self.link = link
        link.add_impairment(self._on_frame)
        return self

    # -- per-frame verdict ---------------------------------------------------

    def _on_frame(self, packet, destination: EthernetPort) -> Optional[object]:
        if self.direction is not None:
            wanted = (
                self.link.port_b if self.direction == "a_to_b" else self.link.port_a
            )
            if destination is not wanted:
                return None
        self.frames_seen += 1
        if self._corrupted_now():
            self.corrupted += 1
            if not self.protected:
                self.lost += 1
                self.link.frames_corrupted += 1
                destination.rx.stats.errors += 1
                destination.rx.stats.drops_injected += 1
                return DROP_FRAME
            delay = self._recovery_delay()
            if delay is None:  # every local retransmit failed too
                self.lost += 1
                self.link.frames_corrupted += 1
                destination.rx.stats.errors += 1
                destination.rx.stats.drops_injected += 1
                return DROP_FRAME
            self.recovered += 1
            return self._hold_fifo(destination, delay)
        return self._hold_fifo(destination, 0)

    def _corrupted_now(self) -> bool:
        if self._burst_left > 0:
            self._burst_left -= 1
            return True
        if self.corrupt_rate <= 0.0:
            return False
        enter = min(1.0, self.corrupt_rate / self.burst)
        if self._corrupt_rng.random() >= enter:
            return False
        # Geometric burst length with mean ``burst`` (this frame included).
        length = 1
        continue_p = 1.0 - 1.0 / self.burst
        while continue_p > 0.0 and self._corrupt_rng.random() < continue_p:
            length += 1
        self._burst_left = length - 1
        return True

    def _recovery_delay(self) -> Optional[int]:
        """Picoseconds until the local retransmit gets through, or None
        if all :attr:`max_retx` attempts were corrupted as well."""
        for attempt in range(1, self.max_retx + 1):
            self.retx_attempts += 1
            if self._retx_rng.random() >= self.corrupt_rate:
                return attempt * self.retx_delay_ps
        return None

    def _hold_fifo(self, destination: EthernetPort, delay: int) -> Optional[int]:
        """Stretch ``delay`` so this frame never overtakes an earlier
        one that is still being recovered (per direction)."""
        now = destination.rx.sim.now
        arrival = now + delay
        floor = self._release_ps.get(destination.name, 0)
        if arrival < floor:
            delay = floor - now
            arrival = floor
        self._release_ps[destination.name] = arrival
        return delay if delay > 0 else None

    # -- reporting -----------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return {
            "frames_seen": self.frames_seen,
            "corrupted": self.corrupted,
            "recovered": self.recovered,
            "lost": self.lost,
            "retx_attempts": self.retx_attempts,
        }

    @property
    def effective_loss_rate(self) -> float:
        """Fraction of frames lost *after* protection (the LinkGuardian
        headline metric)."""
        return self.lost / self.frames_seen if self.frames_seen else 0.0


__all__ = ["LinkGuardian"]
