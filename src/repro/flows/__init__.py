"""Closed-loop flows: TCP-ish transport + LinkGuardian loss protection.

See :mod:`repro.flows.transport` for the transport model,
:mod:`repro.flows.protection` for the corrupting-link / local-repair
device model, and :mod:`repro.flows.scenarios` for the registered
sweepable scenarios (``fct_vs_loss``, ``effective_loss_vs_speed``,
``throughput_under_bursty_corruption``).
"""

from .protection import LinkGuardian
from .scenarios import (
    effective_loss_vs_speed_point,
    fct_vs_loss_point,
    throughput_under_bursty_corruption_point,
)
from .transport import (
    Flow,
    FlowCompletion,
    FlowConfig,
    FlowEndpoint,
    FlowReceiver,
    FlowSender,
    completions_digest,
)

__all__ = [
    "Flow",
    "FlowCompletion",
    "FlowConfig",
    "FlowEndpoint",
    "FlowReceiver",
    "FlowSender",
    "LinkGuardian",
    "completions_digest",
    "effective_loss_vs_speed_point",
    "fct_vs_loss_point",
    "throughput_under_bursty_corruption_point",
]
