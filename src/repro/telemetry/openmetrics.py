"""OpenMetrics text exposition for :class:`MetricsRegistry` snapshots.

Turns a ``registry.snapshot()`` dict into the OpenMetrics text format
(the stricter successor of the Prometheus exposition format), so merged
sweep telemetry can be scraped, stored or diffed with standard tooling:

* counters and gauges become ``gauge`` samples (a snapshot is a point
  read — monotonicity is the registry's concern, not the wire's);
* histogram summaries (the ``{"count", "mean", "p50", ...}`` sub-dicts)
  become ``summary`` families with ``quantile`` labels plus the
  ``_count``/``_sum`` samples;
* non-numeric values (e.g. the ``"<error: ...>"`` strings a hardened
  snapshot records for dead gauges) are skipped, counted in the
  ``# skipped`` comment.

:func:`parse_openmetrics` is the matching strict line parser, used by
the tests and the CI smoke job to validate exporter output.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

#: Characters legal in an OpenMetrics metric name.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="([^"\\]*)"$')
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_]")

#: Histogram-summary keys exported as ``quantile`` samples.
SUMMARY_QUANTILES: Tuple[Tuple[str, str], ...] = (
    ("p50", "0.5"),
    ("p90", "0.9"),
    ("p99", "0.99"),
    ("p999", "0.999"),
)

_TYPES = frozenset({"gauge", "counter", "summary", "histogram", "info", "unknown"})


def metric_name(name: str, prefix: str = "") -> str:
    """A snapshot key as a legal OpenMetrics name (dots → underscores)."""
    full = f"{prefix}_{name}" if prefix else name
    sanitized = _SANITIZE_RE.sub("_", full)
    if not sanitized or not _NAME_RE.match(sanitized):
        sanitized = f"_{sanitized}"
    return sanitized


def _format_value(value: Union[int, float, bool]) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _is_summary_dict(value: Any) -> bool:
    return isinstance(value, dict) and "count" in value


def snapshot_to_openmetrics(snapshot: Dict[str, Any], prefix: str = "") -> str:
    """A snapshot dict in OpenMetrics text format (``# EOF`` included).

    Raises :class:`ValueError` if two distinct snapshot keys sanitize to
    the same metric name (families must not repeat or interleave).
    """
    lines: List[str] = []
    seen: Dict[str, str] = {}
    skipped = 0
    for name in sorted(snapshot):
        value = snapshot[name]
        om_name = metric_name(name, prefix)
        previous = seen.get(om_name)
        if previous is not None:
            raise ValueError(
                f"snapshot keys {previous!r} and {name!r} both sanitize to "
                f"OpenMetrics name {om_name!r}"
            )
        if _is_summary_dict(value):
            seen[om_name] = name
            lines.append(f"# TYPE {om_name} summary")
            for key, quantile in SUMMARY_QUANTILES:
                sample = value.get(key)
                if isinstance(sample, (int, float)) and not isinstance(sample, bool):
                    lines.append(
                        f'{om_name}{{quantile="{quantile}"}} {_format_value(sample)}'
                    )
            count = value.get("count", 0)
            mean = value.get("mean")
            total = mean * count if isinstance(mean, (int, float)) and count else 0
            lines.append(f"{om_name}_count {_format_value(count)}")
            lines.append(f"{om_name}_sum {_format_value(total)}")
        elif isinstance(value, (int, float)):  # bool is an int subclass
            seen[om_name] = name
            lines.append(f"# TYPE {om_name} gauge")
            lines.append(f"{om_name} {_format_value(value)}")
        else:
            skipped += 1
    if skipped:
        lines.append(f"# skipped {skipped} non-numeric metric(s)")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(
    path: Union[str, Path], snapshot: Dict[str, Any], prefix: str = ""
) -> None:
    """Write a snapshot in OpenMetrics text format."""
    Path(path).write_text(snapshot_to_openmetrics(snapshot, prefix=prefix))


def _parse_sample_name(sample: str) -> Tuple[str, Dict[str, str]]:
    """Split ``name{label="v",...}`` into (name, labels); strict."""
    if "{" not in sample:
        return sample, {}
    if not sample.endswith("}"):
        raise ValueError(f"malformed sample name {sample!r}")
    name, _, label_blob = sample.partition("{")
    labels: Dict[str, str] = {}
    body = label_blob[:-1]
    if body:
        for part in body.split(","):
            match = _LABEL_RE.match(part)
            if match is None:
                raise ValueError(f"malformed label {part!r} in {sample!r}")
            labels[match.group(1)] = match.group(2)
    return name, labels


def parse_openmetrics(text: str) -> Dict[str, Dict[str, Any]]:
    """Strictly parse/validate OpenMetrics text; raises ``ValueError``.

    Enforces: exactly one terminating ``# EOF`` line; every ``# TYPE``
    names a legal metric and a known type, declared once; every sample
    belongs to the most recently declared family (no interleaving; the
    ``_count``/``_sum``/``_bucket`` suffixes attach to their family);
    every value parses as a float. Returns ``{family: {"type": ...,
    "samples": [(name, labels, value)]}}``.
    """
    if not text.endswith("\n"):
        raise ValueError("document must end with a newline")
    lines = text.split("\n")[:-1]
    if not lines or lines[-1] != "# EOF":
        raise ValueError("document must terminate with a '# EOF' line")
    families: Dict[str, Dict[str, Any]] = {}
    current: str = ""
    for lineno, line in enumerate(lines[:-1], start=1):
        if line == "# EOF":
            raise ValueError(f"line {lineno}: '# EOF' before end of document")
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE line {line!r}")
            _, _, family, family_type = parts
            if not _NAME_RE.match(family):
                raise ValueError(f"line {lineno}: illegal metric name {family!r}")
            if family_type not in _TYPES:
                raise ValueError(f"line {lineno}: unknown type {family_type!r}")
            if family in families:
                raise ValueError(f"line {lineno}: family {family!r} declared twice")
            families[family] = {"type": family_type, "samples": []}
            current = family
            continue
        if line.startswith("#"):
            continue  # comments are legal anywhere
        if not line.strip():
            raise ValueError(f"line {lineno}: blank line is not allowed")
        try:
            sample_part, value_part = line.rsplit(" ", 1)
        except ValueError:
            raise ValueError(f"line {lineno}: malformed sample line {line!r}") from None
        name, labels = _parse_sample_name(sample_part)
        if not _NAME_RE.match(name):
            raise ValueError(f"line {lineno}: illegal sample name {name!r}")
        base = name
        for suffix in ("_count", "_sum", "_bucket"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                base = name[: -len(suffix)]
                break
        if base not in families:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE declaration")
        if base != current:
            raise ValueError(
                f"line {lineno}: sample {name!r} interleaves family {base!r} "
                f"(current family is {current!r})"
            )
        try:
            value = float(value_part)
        except ValueError:
            raise ValueError(
                f"line {lineno}: value {value_part!r} is not a number"
            ) from None
        families[base]["samples"].append((name, labels, value))
    return families
