"""The metrics registry: named counters, gauges and histograms.

MoonGen-style testers live and die by their stats plumbing: every layer
(MACs, DMA, capture pipelines, rate samplers, OFLOPS modules) must
publish into one place so a single read captures the whole card
coherently. :class:`MetricsRegistry` is that place.

Three metric kinds:

* :class:`Counter` — monotonically increasing int, owned by the
  registry (push model, for code without an existing stats object);
* :class:`Gauge` — a value *read at snapshot time*, either set
  explicitly or backed by a callable. Callable gauges are the main
  integration mechanism: existing hardware stats objects stay the
  single source of truth and cost nothing between snapshots;
* :class:`LogLinearHistogram` — registered directly; snapshots carry
  its percentile summary.

``snapshot()`` walks names in sorted order and returns a plain dict, so
two identical simulation runs produce byte-identical snapshots.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..errors import ConfigError
from .histogram import DEFAULT_SUBBUCKET_BITS, LogLinearHistogram


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value: set directly or computed from a source."""

    __slots__ = ("name", "_value", "_source")

    def __init__(self, name: str, source: Optional[Callable[[], Any]] = None) -> None:
        self.name = name
        self._value: Any = 0
        self._source = source

    def set(self, value: Any) -> None:
        if self._source is not None:
            raise ConfigError(f"gauge {self.name} is source-backed; cannot set()")
        self._value = value

    def value(self) -> Any:
        if self._source is not None:
            return self._source()
        return self._value


Metric = Union[Counter, Gauge, LogLinearHistogram]


class MetricsRegistry:
    """Flat namespace of metrics with deterministic snapshot semantics.

    Names are dot-paths (``"p0.rx.packets"``); :meth:`snapshot` nests
    nothing — flat names keep diffs and CSV trivial — but histograms
    expand to a summary sub-dict under their name.
    """

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._metrics: Dict[str, Metric] = {}

    # -- registration ------------------------------------------------------

    def _full(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def _add(self, name: str, metric: Metric) -> Metric:
        full = self._full(name)
        existing = self._metrics.get(full)
        if existing is not None:
            if type(existing) is not type(metric):
                raise ConfigError(
                    f"metric {full} already registered as {type(existing).__name__}"
                )
            return existing
        self._metrics[full] = metric
        return metric

    def counter(self, name: str) -> Counter:
        """Create (or fetch) a counter."""
        return self._add(name, Counter(self._full(name)))

    def gauge(self, name: str, source: Optional[Callable[[], Any]] = None) -> Gauge:
        """Create (or fetch) a gauge, optionally backed by ``source``."""
        return self._add(name, Gauge(self._full(name), source))

    def histogram(
        self,
        name: str,
        subbucket_bits: int = DEFAULT_SUBBUCKET_BITS,
        unit: str = "",
    ) -> LogLinearHistogram:
        """Create (or fetch) a registered histogram."""
        return self._add(name, LogLinearHistogram(subbucket_bits, unit=unit))

    def register_histogram(self, name: str, histogram: LogLinearHistogram) -> LogLinearHistogram:
        """Register an externally owned histogram (e.g. a pipeline's)."""
        return self._add(name, histogram)

    def unregister(self, name: str) -> None:
        self._metrics.pop(self._full(name), None)

    # -- reads -------------------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(self._full(name))

    def histograms(self) -> List[Tuple[str, LogLinearHistogram]]:
        return [
            (name, metric)
            for name, metric in sorted(self._metrics.items())
            if isinstance(metric, LogLinearHistogram)
        ]

    def snapshot(self) -> Dict[str, Any]:
        """One coherent read of every metric, keyed by sorted full name.

        Counters snapshot to ints, gauges to their current value,
        histograms to their :class:`~.histogram.HistogramSummary` dict.

        A source-backed gauge whose callable raises (a component torn
        down between registration and read) records the error as an
        ``"<error: ...>"`` string under its name instead of aborting
        the whole snapshot — one dead gauge must not blind the card.
        """
        result: Dict[str, Any] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                result[name] = metric.value
            elif isinstance(metric, Gauge):
                try:
                    result[name] = metric.value()
                except Exception as exc:  # noqa: BLE001 — recorded in-band
                    result[name] = f"<error: {type(exc).__name__}: {exc}>"
            else:
                result[name] = metric.summary().as_dict()
        return result

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return self._full(name) in self._metrics
