"""Serialization for telemetry: snapshot JSON/CSV and Chrome traces.

Everything here turns in-memory telemetry objects into the formats the
OSNT tooling ships: ``snapshot`` dicts (from
:meth:`~.metrics.MetricsRegistry.snapshot`) to JSON documents or flat
``name,value`` CSV, and :class:`~.trace.Tracer` buffers to Chrome
``trace_event`` JSON that loads directly in ``chrome://tracing`` /
Perfetto.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Any, Dict, Union

from .metrics import MetricsRegistry
from .trace import Tracer

PathLike = Union[str, Path]


# -- metrics snapshots -------------------------------------------------------


def snapshot_to_json(snapshot: Dict[str, Any], indent: int = 2) -> str:
    """A snapshot dict as a JSON document (keys already sorted)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def flatten_snapshot(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Expand histogram sub-dicts into dotted scalar entries.

    ``{"lat": {"p50": 3}}`` becomes ``{"lat.p50": 3}`` so the result is
    a flat name -> scalar mapping suitable for CSV or time-series sinks.
    """
    flat: Dict[str, Any] = {}
    for name, value in snapshot.items():
        if isinstance(value, dict):
            for key, sub in value.items():
                flat[f"{name}.{key}"] = sub
        else:
            flat[name] = value
    return flat


def snapshot_to_csv(snapshot: Dict[str, Any]) -> str:
    """A snapshot as ``metric,value`` CSV rows (header included)."""
    out = io.StringIO()
    out.write("metric,value\r\n")
    for name, value in sorted(flatten_snapshot(snapshot).items()):
        rendered = "" if value is None else value
        out.write(f"{name},{rendered}\r\n")
    return out.getvalue()


def write_snapshot_json(path: PathLike, snapshot: Dict[str, Any]) -> None:
    """Write a snapshot as a JSON document (trailing newline included)."""
    Path(path).write_text(snapshot_to_json(snapshot) + "\n")


def write_snapshot_csv(path: PathLike, snapshot: Dict[str, Any]) -> None:
    """Write a snapshot as flat ``metric,value`` CSV."""
    Path(path).write_text(snapshot_to_csv(snapshot))


def registry_histograms_to_dict(registry: MetricsRegistry) -> Dict[str, Any]:
    """Full-fidelity bucket dumps of every registered histogram."""
    return {
        name: histogram.to_dict() for name, histogram in registry.histograms()
    }


# -- Chrome traces -----------------------------------------------------------


def chrome_trace(
    tracer: Tracer, span_recorder=None, waves=None, registry=None
) -> Dict[str, Any]:
    """The tracer's buffer as a Chrome trace document (object form).

    The object form (``{"traceEvents": [...]}``) is what the trace
    viewers accept alongside the bare-array form, and it leaves room
    for metadata such as the eviction count.

    ``span_recorder`` (a :class:`repro.obs.SpanRecorder`) nests its
    packet-lifecycle spans into the same document: each span renders as
    its own begin/end track beside the tracer's instants, so causal
    packet stories and kernel events load in one Perfetto view.

    ``waves`` (a :class:`repro.telemetry.WaveformRecorder`) merges its
    sim-time waveforms as counter ("C"-phase) tracks — queue depths and
    utilization plotted under the spans that caused them. ``registry``
    (a :class:`MetricsRegistry`) opts in to one counter event per flat
    numeric snapshot metric, placed at the trace's final timestamp so
    end-of-run totals show as terminal counter values. Both default to
    off, leaving existing trace documents byte-identical.

    ``tracer`` may be None when exporting waveform/metric tracks alone
    (the ``osnt-telemetry timeline`` path).
    """
    if tracer is not None:
        events = tracer.chrome_events()
        other: Dict[str, Any] = {
            "recorded": tracer.recorded,
            "evicted": tracer.evicted,
            "capacity": tracer.capacity,
        }
    else:
        events = []
        other = {}
    if span_recorder is not None:
        events = events + span_recorder.chrome_events()
        other["spans"] = {
            "started": span_recorder.started,
            "evicted": span_recorder.evicted,
            "stamp_matches": span_recorder.stamp_matches,
        }
    if waves is not None:
        events = events + waves.chrome_events()
        other["waveforms"] = waves.counts()
    if registry is not None:
        end_ts = max((event["ts"] for event in events), default=0.0)
        emitted = 0
        for name, value in sorted(flatten_snapshot(registry.snapshot()).items()):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            events.append(
                {
                    "name": name,
                    "cat": "metric",
                    "ph": "C",
                    "ts": end_ts,
                    "pid": 0,
                    "tid": 0,
                    "args": {"value": value},
                }
            )
            emitted += 1
        other["metrics"] = {"count": emitted}
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def chrome_trace_json(
    tracer: Tracer, indent: int = None, span_recorder=None, waves=None, registry=None
) -> str:
    """The Chrome trace document serialized to a JSON string."""
    return json.dumps(
        chrome_trace(tracer, span_recorder=span_recorder, waves=waves, registry=registry),
        indent=indent,
    )


def write_chrome_trace(
    path: PathLike, tracer: Tracer, span_recorder=None, waves=None, registry=None
) -> int:
    """Write the trace JSON; returns the number of events written."""
    document = chrome_trace(
        tracer, span_recorder=span_recorder, waves=waves, registry=registry
    )
    Path(path).write_text(json.dumps(document))
    return len(document["traceEvents"])
