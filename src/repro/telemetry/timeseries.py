"""Deterministic sim-time waveforms: state series sampled on change.

Counters and histograms answer "how much"; a waveform answers "what did
the state look like *while* it happened" — the egress queue filling
during an incast collapse, a cwnd sawtooth, the DMA ring breathing.
:class:`WaveformRecorder` is the observability plane for exactly that:
armed on a :class:`~repro.sim.Simulator` (``sim.waves``), instrumented
components append integer-picosecond ``(sim_time, value)`` points to
named series **on state change only** — never on a timer, because a
recorder that schedules events would perturb the event order it is
meant to observe.

Two series kinds:

* :class:`Waveform` — a step series of a state variable (queue bytes,
  ring depth, cwnd). Change-suppressed (equal consecutive values are
  not re-committed), bounded by ``capacity`` retained points, and
  decimated deterministically: with ``keep_every=k`` each run of ``k``
  committed points collapses to at most three — the bucket's min, max
  and last — so burst peaks survive downsampling (the min/max
  envelope), and the retained stream is a pure function of the sample
  stream (no wall clock, no RNG).
* :class:`RateWaveform` — a windowed counter series (wire bytes per
  ``window_ps``), the "utilization over a sliding window" view. Samples
  are deltas; each completed window commits one ``(window_end, sum)``
  point, empty windows are skipped.

The burst datapath (:mod:`repro.hw.burst`) never walks frames one at a
time, so both classes also accept *closed-form runs*:
:meth:`Waveform.record_run` / :meth:`Waveform.record_toggle_run` /
:meth:`RateWaveform.record_run` are arithmetically exact equivalents of
the corresponding per-sample loops, costing ``O(points_retained)``
instead of ``O(samples)`` — that is how a burst lane reconstructs the
per-packet path's waveforms from parked scalar state, bit-identically
(proven by ``tests/test_datapath_equivalence.py``).

Exports: Chrome ``trace_event`` counter ("C"-phase) tracks that merge
into :func:`repro.telemetry.chrome_trace` beside span and kernel
tracks, CSV/JSONL timelines (the ``osnt-telemetry timeline``
subcommand), last-value gauges for the OpenMetrics exposition, and a
SHA-256 digest over the canonical JSON of every series — the value
sweeps fold per shard to prove merged timelines are byte-identical at
any worker count and across kill-and-resume.
"""

from __future__ import annotations

import hashlib
import io
import json
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import ConfigError

#: Default retained points per series (the ring bound).
DEFAULT_WAVEFORM_CAPACITY = 1 << 14
#: Default decimation: keep every committed point.
DEFAULT_KEEP_EVERY = 1
#: Default utilization window: 10 simulated µs per rate bucket.
DEFAULT_UTIL_WINDOW_PS = 10_000_000

#: "No value committed yet" sentinel — never equal to a sample value,
#: so the first sample of a series always commits.
_UNSET = object()


class Waveform:
    """One step series: ``(time_ps, value)`` committed on state change."""

    __slots__ = (
        "name",
        "unit",
        "capacity",
        "keep_every",
        "recorded",
        "committed",
        "retained",
        "_points",
        "_last",
        "_fill",
        "_min_v",
        "_min_t",
        "_min_i",
        "_max_v",
        "_max_t",
        "_max_i",
        "_last_t",
        "_last_v",
    )

    def __init__(
        self,
        name: str,
        unit: str = "",
        capacity: int = DEFAULT_WAVEFORM_CAPACITY,
        keep_every: int = DEFAULT_KEEP_EVERY,
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"waveform {name!r}: capacity must be >= 1")
        if keep_every < 1:
            raise ConfigError(f"waveform {name!r}: keep_every must be >= 1")
        self.name = name
        self.unit = unit
        self.capacity = capacity
        self.keep_every = keep_every
        self.recorded = 0  # raw samples offered
        self.committed = 0  # samples that changed the state
        self.retained = 0  # points ever appended to the ring
        self._points: deque = deque(maxlen=capacity)
        self._last: Any = _UNSET
        self._fill = 0  # committed points in the open decimation bucket

    # -- hot path ----------------------------------------------------------

    def record(self, t_ps: int, value) -> None:
        """Offer one sample; commits only when ``value`` changed."""
        self.recorded += 1
        if value == self._last:
            return
        self._last = value
        self.committed += 1
        if self.keep_every == 1:
            self._points.append((t_ps, value))
            self.retained += 1
        else:
            self._feed(t_ps, value)

    def _feed(self, t_ps: int, value) -> None:
        """Fold one committed point into the open decimation bucket."""
        f = self._fill
        if f == 0:
            self._min_v = self._max_v = value
            self._min_t = self._max_t = t_ps
            self._min_i = self._max_i = 0
        elif value < self._min_v:
            self._min_v, self._min_t, self._min_i = value, t_ps, f
        elif value > self._max_v:
            self._max_v, self._max_t, self._max_i = value, t_ps, f
        self._last_t, self._last_v = t_ps, value
        self._fill = f + 1
        if self._fill == self.keep_every:
            for point in self._bucket_entries():
                self._points.append(point)
                self.retained += 1
            self._fill = 0

    def _bucket_entries(self) -> List[Tuple[int, Any]]:
        """The open bucket's retained points (min/max/last, time order)."""
        entries = {
            self._min_i: (self._min_t, self._min_v),
            self._max_i: (self._max_t, self._max_v),
            self._fill - 1: (self._last_t, self._last_v),
        }
        return [entries[index] for index in sorted(entries)]

    # -- closed-form runs (the burst datapath's feed) ----------------------

    def record_run(self, t0: int, n: int, stride: int, v0, dv) -> None:
        """Exactly ``for i in range(n): record(t0+i*stride, v0+i*dv)``.

        For monotonic runs (``dv != 0``) the cost is proportional to the
        points *retained*, not to ``n`` — whole decimation buckets of a
        monotonic run keep only their first and last point.
        """
        if n <= 0:
            return
        self.recorded += n
        if dv == 0:
            # One state change at most: the run holds a single value.
            if v0 == self._last:
                return
            self.recorded -= 1  # record() re-counts this sample
            self.record(t0, v0)
            return
        skip = 1 if v0 == self._last else 0
        m = n - skip
        if m <= 0:
            return
        self.committed += m
        self._last = v0 + (n - 1) * dv
        k = self.keep_every
        points = self._points
        if k == 1:
            # Only the trailing ``capacity`` commits can survive the ring.
            start = skip + m - self.capacity if m > self.capacity else skip
            for i in range(start, n):
                points.append((t0 + i * stride, v0 + i * dv))
            self.retained += m
            return
        i = skip
        while i < n and self._fill:  # finish the open bucket per-point
            self._feed_run_point(t0, stride, v0, dv, i)
            i += 1
        whole = (n - i) // k
        if whole:
            # Monotonic whole bucket => min/max are its ends: retain
            # exactly (first, last). Skip buckets the ring would evict.
            b0 = whole - (self.capacity // 2 + 1) if 2 * whole > self.capacity else 0
            for b in range(b0, whole):
                first = i + b * k
                last = first + k - 1
                points.append((t0 + first * stride, v0 + first * dv))
                points.append((t0 + last * stride, v0 + last * dv))
            self.retained += 2 * whole
            i += whole * k
        while i < n:  # trailing partial bucket
            self._feed_run_point(t0, stride, v0, dv, i)
            i += 1

    def _feed_run_point(self, t0, stride, v0, dv, i) -> None:
        self._feed(t0 + i * stride, v0 + i * dv)

    def record_toggle_run(self, t0: int, n: int, stride: int, hi, lo) -> None:
        """Exactly ``for i in range(n): record(t, hi); record(t, lo)``.

        The never-queueing TX FIFO's shape under the per-packet path:
        each frame pushes (occupancy ``hi``) and immediately pops back
        to ``lo`` at the same instant. Cost is proportional to points
        retained — with ``keep_every >= 2`` that is ``O(n / keep_every)``.
        """
        if n <= 0:
            return
        if hi == lo:
            raise ConfigError(f"waveform {self.name!r}: toggle needs hi != lo")
        self.recorded += 2 * n
        skip = 1 if hi == self._last else 0
        m = 2 * n - skip
        self.committed += m
        self._last = lo

        def pt(o: int) -> Tuple[int, Any]:
            # Original sample index o: frame o>>1, hi on even, lo on odd.
            return (t0 + (o >> 1) * stride, lo if o & 1 else hi)

        k = self.keep_every
        end = 2 * n
        points = self._points
        if k == 1:
            start = skip + m - self.capacity if m > self.capacity else skip
            for o in range(start, end):
                points.append(pt(o))
            self.retained += m
            return
        o = skip
        while o < end and self._fill:
            self._feed(*pt(o))
            o += 1
        whole = (end - o) // k
        if whole:
            # Alternating bucket: min (first lo) and max (first hi) sit
            # at relative indices {0, 1}; the last point closes it.
            per_bucket = 2 if k == 2 else 3
            b0 = 0
            if per_bucket * whole > self.capacity:
                b0 = whole - (self.capacity // per_bucket + 1)
            for b in range(b0, whole):
                start_o = o + b * k
                entries = {0: pt(start_o), 1: pt(start_o + 1)}
                entries[k - 1] = pt(start_o + k - 1)
                for ri in sorted(entries):
                    points.append(entries[ri])
            self.retained += per_bucket * whole
            o += whole * k
        while o < end:
            self._feed(*pt(o))
            o += 1

    # -- export ------------------------------------------------------------

    @property
    def last(self):
        """Last committed value, or None before the first commit."""
        return None if self._last is _UNSET else self._last

    @property
    def evicted(self) -> int:
        return self.retained - len(self._points)

    def points(self) -> List[Tuple[int, Any]]:
        """Retained points plus the open bucket's pending envelope."""
        pts = list(self._points)
        if self.keep_every > 1 and self._fill:
            pts.extend(self._bucket_entries())
        return pts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "state",
            "name": self.name,
            "unit": self.unit,
            "capacity": self.capacity,
            "keep_every": self.keep_every,
            "recorded": self.recorded,
            "committed": self.committed,
            "retained": self.retained,
            "evicted": self.evicted,
            "points": [[t, v] for t, v in self.points()],
        }


class RateWaveform:
    """Windowed counter series: sum of deltas per ``window_ps`` bucket."""

    __slots__ = (
        "name",
        "unit",
        "capacity",
        "window_ps",
        "recorded",
        "retained",
        "_points",
        "_win",
        "_acc",
    )

    def __init__(
        self,
        name: str,
        unit: str = "bytes",
        capacity: int = DEFAULT_WAVEFORM_CAPACITY,
        window_ps: int = DEFAULT_UTIL_WINDOW_PS,
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"waveform {name!r}: capacity must be >= 1")
        if window_ps < 1:
            raise ConfigError(f"waveform {name!r}: window_ps must be >= 1")
        self.name = name
        self.unit = unit
        self.capacity = capacity
        self.window_ps = window_ps
        self.recorded = 0
        self.retained = 0
        self._points: deque = deque(maxlen=capacity)
        self._win: Optional[int] = None
        self._acc = 0

    def record(self, t_ps: int, delta) -> None:
        """Add ``delta`` into the window containing ``t_ps``."""
        self.recorded += 1
        w = t_ps // self.window_ps
        if w != self._win:
            self._close_window()
            self._win = w
        self._acc += delta

    def _close_window(self) -> None:
        if self._win is not None and self._acc:
            self._points.append(((self._win + 1) * self.window_ps, self._acc))
            self.retained += 1
        self._acc = 0

    def record_run(self, t0: int, n: int, stride: int, delta) -> None:
        """Exactly ``for i in range(n): record(t0+i*stride, delta)``.

        Cost is proportional to the number of windows the run touches.
        """
        if n <= 0:
            return
        if stride < 0:
            raise ConfigError(f"waveform {self.name!r}: run stride must be >= 0")
        self.recorded += n
        window = self.window_ps
        if stride == 0:
            w = t0 // window
            if w != self._win:
                self._close_window()
                self._win = w
            self._acc += n * delta
            return
        i = 0
        while i < n:
            w = (t0 + i * stride) // window
            if w != self._win:
                self._close_window()
                self._win = w
            # Last run index still inside window w.
            j = ((w + 1) * window - 1 - t0) // stride
            if j > n - 1:
                j = n - 1
            self._acc += (j - i + 1) * delta
            i = j + 1

    # -- export ------------------------------------------------------------

    @property
    def last(self):
        """The open window's sum, else the last committed sum, else None."""
        if self._win is not None and self._acc:
            return self._acc
        if self._points:
            return self._points[-1][1]
        return None

    @property
    def evicted(self) -> int:
        return self.retained - len(self._points)

    def points(self) -> List[Tuple[int, Any]]:
        pts = list(self._points)
        if self._win is not None and self._acc:
            pts.append(((self._win + 1) * self.window_ps, self._acc))
        return pts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "rate",
            "name": self.name,
            "unit": self.unit,
            "capacity": self.capacity,
            "window_ps": self.window_ps,
            "recorded": self.recorded,
            "retained": self.retained,
            "evicted": self.evicted,
            "points": [[t, v] for t, v in self.points()],
        }


AnyWaveform = Union[Waveform, RateWaveform]


class WaveformRecorder:
    """Named waveforms for one (or more) simulators' instrumented state.

    >>> waves = WaveformRecorder().arm(sim)
    >>> ...run the workload...
    >>> waves.write_csv("timeline.csv")

    Arming sets ``sim.waves``; every probe site reads that attribute, so
    the disarmed datapath pays one attribute load + ``None`` check (the
    ``sim.spans`` / tracer pattern). Unlike spans and tracers, an armed
    recorder does **not** disqualify burst-datapath lanes: burst lanes
    feed the same series closed-form at window edges (see
    :mod:`repro.hw.burst`), bit-identically to the per-packet probes.

    Recording never schedules events, never mutates packets and never
    touches RNG streams, so arming leaves every scenario result
    bit-identical — the guarantee ``tests/test_timeseries.py`` and the
    CI timeline smoke enforce.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_WAVEFORM_CAPACITY,
        keep_every: int = DEFAULT_KEEP_EVERY,
        window_ps: int = DEFAULT_UTIL_WINDOW_PS,
    ) -> None:
        if capacity < 1:
            raise ConfigError("waveform recorder: capacity must be >= 1")
        if keep_every < 1:
            raise ConfigError("waveform recorder: keep_every must be >= 1")
        if window_ps < 1:
            raise ConfigError("waveform recorder: window_ps must be >= 1")
        self.capacity = capacity
        self.keep_every = keep_every
        self.window_ps = window_ps
        self._series: Dict[str, AnyWaveform] = {}
        self._sim = None

    # -- arming ------------------------------------------------------------

    def arm(self, sim) -> "WaveformRecorder":
        """Attach to ``sim`` (re-arming moves the recorder; series kept)."""
        if self._sim is not None and self._sim is not sim:
            self.disarm()
        self._sim = sim
        sim.waves = self
        return self

    def disarm(self) -> "WaveformRecorder":
        """Detach from the current simulator (recorded series survive)."""
        if self._sim is not None:
            if getattr(self._sim, "waves", None) is self:
                self._sim.waves = None
            self._sim = None
        return self

    @property
    def armed(self) -> bool:
        return self._sim is not None

    # -- series registry ---------------------------------------------------

    def series(self, name: str, unit: str = "") -> Waveform:
        """The state waveform called ``name`` (created on first use)."""
        wf = self._series.get(name)
        if wf is None:
            wf = Waveform(
                name, unit=unit, capacity=self.capacity, keep_every=self.keep_every
            )
            self._series[name] = wf
        elif not isinstance(wf, Waveform):
            raise ConfigError(f"series {name!r} already exists as a rate series")
        return wf

    def rate_series(self, name: str, unit: str = "bytes") -> RateWaveform:
        """The windowed-rate waveform called ``name`` (created on use)."""
        wf = self._series.get(name)
        if wf is None:
            wf = RateWaveform(
                name, unit=unit, capacity=self.capacity, window_ps=self.window_ps
            )
            self._series[name] = wf
        elif not isinstance(wf, RateWaveform):
            raise ConfigError(f"series {name!r} already exists as a state series")
        return wf

    def sample(self, t_ps: int, name: str, value, unit: str = "") -> None:
        """Convenience one-shot: ``series(name).record(t_ps, value)``."""
        self.series(name, unit=unit).record(t_ps, value)

    def get(self, name: str) -> Optional[AnyWaveform]:
        return self._series.get(name)

    def names(self) -> List[str]:
        return sorted(self._series)

    def waveforms(self) -> List[AnyWaveform]:
        return [self._series[name] for name in self.names()]

    def __len__(self) -> int:
        return len(self._series)

    # -- export: documents and digests -------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "keep_every": self.keep_every,
            "window_ps": self.window_ps,
            "series": {wf.name: wf.to_dict() for wf in self.waveforms()},
        }

    def digest(self) -> str:
        """SHA-256 over the canonical JSON of every series.

        A pure function of the recorded sample streams: equal digests
        prove two runs produced byte-identical timelines (the property
        the datapath-equivalence tests and the sweep fold assert).
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    def summary(self) -> Dict[str, Any]:
        """Compact per-series facts + digest (what scenarios report)."""
        series: Dict[str, Any] = {}
        for wf in self.waveforms():
            pts = wf.points()
            values = [v for __, v in pts]
            series[wf.name] = {
                "points": len(pts),
                "recorded": wf.recorded,
                "evicted": wf.evicted,
                "min": min(values) if values else None,
                "max": max(values) if values else None,
                "last": wf.last,
            }
        return {"digest": self.digest(), "series": series}

    # -- export: Chrome counter tracks --------------------------------------

    def chrome_events(self) -> List[Dict[str, Any]]:
        """Every series as a Chrome ``trace_event`` counter track.

        "C"-phase events share the tracer/span timebase (1 simulated ps
        -> 1e-6 trace µs), so queue waveforms line up under the packet
        spans that caused them in one Perfetto view.
        """
        events: List[Dict[str, Any]] = []
        for wf in self.waveforms():
            name = wf.name
            for t_ps, value in wf.points():
                events.append(
                    {
                        "name": name,
                        "cat": "waveform",
                        "ph": "C",
                        "ts": t_ps / 1e6,
                        "pid": 0,
                        "tid": 0,
                        "args": {"value": value},
                    }
                )
        return events

    def counts(self) -> Dict[str, int]:
        """Operational totals for trace metadata."""
        return {
            "series": len(self._series),
            "recorded": sum(wf.recorded for wf in self._series.values()),
            "retained": sum(wf.retained for wf in self._series.values()),
            "evicted": sum(wf.evicted for wf in self._series.values()),
        }

    # -- export: flat timelines (CSV / JSONL) --------------------------------

    def timeline_rows(self) -> List[Tuple[str, int, Any]]:
        """``(series, time_ps, value)`` rows, series-sorted, time-ordered."""
        rows: List[Tuple[str, int, Any]] = []
        for wf in self.waveforms():
            name = wf.name
            for t_ps, value in wf.points():
                rows.append((name, t_ps, value))
        return rows

    def csv(self) -> str:
        """The timeline as ``series,time_ps,value`` CSV (CRLF rows)."""
        out = io.StringIO()
        out.write("series,time_ps,value\r\n")
        for name, t_ps, value in self.timeline_rows():
            out.write(f"{name},{t_ps},{value}\r\n")
        return out.getvalue()

    def jsonl(self) -> str:
        """The timeline as JSON Lines (one point per line)."""
        lines = [
            json.dumps(
                {"series": name, "t_ps": t_ps, "value": value}, sort_keys=True
            )
            for name, t_ps, value in self.timeline_rows()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_csv(self, path: Union[str, Path]) -> int:
        """Write the CSV timeline; returns the number of points."""
        Path(path).write_text(self.csv())
        return sum(len(wf.points()) for wf in self._series.values())

    def write_jsonl(self, path: Union[str, Path]) -> int:
        """Write the JSONL timeline; returns the number of points."""
        Path(path).write_text(self.jsonl())
        return sum(len(wf.points()) for wf in self._series.values())

    # -- export: last-value gauges ------------------------------------------

    def gauges(self) -> Dict[str, Any]:
        """``wave.<series>.last`` -> last value (series with data only).

        A flat scalar mapping, ready for
        :func:`repro.telemetry.snapshot_to_openmetrics`.
        """
        flat: Dict[str, Any] = {}
        for wf in self.waveforms():
            last = wf.last
            if last is not None:
                flat[f"wave.{wf.name}.last"] = last
        return flat

    def register_metrics(self, registry, prefix: str = "wave") -> None:
        """Publish each existing series' last value as a pull gauge."""
        for wf in self.waveforms():
            registry.gauge(f"{prefix}.{wf.name}.last", lambda wf=wf: wf.last)
