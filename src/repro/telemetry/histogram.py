"""Hardware-style log-linear histograms.

P4TG's histogram extension keeps RTT distributions *in the data plane*:
a fixed set of buckets, one O(1) increment per packet, and the host
reads aggregated counts instead of shipping every sample up. This
module models that structure in software: a
:class:`LogLinearHistogram` covers the full 64-bit range of positive
integer samples (picosecond latencies, frame sizes) with a bounded
relative error, supports O(1) :meth:`record`, lossless :meth:`merge`,
and percentile summaries read straight from the bucket counts.

Bucket layout (HdrHistogram-style log-linear):

* values below ``2 ** (subbucket_bits + 1)`` get exact width-1 buckets;
* above that, each power-of-two octave is split into
  ``2 ** subbucket_bits`` linear sub-buckets, bounding the relative
  quantization error by ``2 ** -subbucket_bits`` (~3% at the default 5
  bits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigError

DEFAULT_SUBBUCKET_BITS = 5


@dataclass
class HistogramSummary:
    """Percentile summary of one histogram (``None``-valued when empty)."""

    count: int
    minimum: Optional[int]
    maximum: Optional[int]
    mean: Optional[float]
    p50: Optional[float]
    p90: Optional[float]
    p99: Optional[float]
    p999: Optional[float]

    def as_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "p999": self.p999,
        }


class LogLinearHistogram:
    """Fixed-cost histogram over non-negative integers.

    ``record`` is one bit-length, one shift and one dict increment —
    cheap enough to sit in the capture path's per-packet hot loop, as
    the hardware equivalent sits in the data plane.
    """

    __slots__ = (
        "subbucket_bits",
        "unit",
        "_base",
        "_counts",
        "count",
        "total",
        "minimum",
        "maximum",
        "rejected",
    )

    def __init__(self, subbucket_bits: int = DEFAULT_SUBBUCKET_BITS, unit: str = "") -> None:
        if not 0 <= subbucket_bits <= 16:
            raise ConfigError(f"subbucket_bits must be 0..16, got {subbucket_bits}")
        self.subbucket_bits = subbucket_bits
        self.unit = unit
        self._base = 1 << subbucket_bits
        self._counts: Dict[int, int] = {}
        self.count = 0
        self.total = 0
        self.minimum: Optional[int] = None
        self.maximum: Optional[int] = None
        #: Samples refused (negative): counted, never binned.
        self.rejected = 0

    # -- recording ---------------------------------------------------------

    def _index_of(self, value: int) -> int:
        base = self._base
        if value < base:
            return value
        octave = value.bit_length() - 1
        offset = (value >> (octave - self.subbucket_bits)) & (base - 1)
        return (octave - self.subbucket_bits + 1) * base + offset

    def record(self, value: int) -> None:
        """O(1): bump the bucket containing ``value``."""
        if value < 0:
            self.rejected += 1
            return
        value = int(value)
        index = self._index_of(value)
        counts = self._counts
        counts[index] = counts.get(index, 0) + 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def record_many(self, values: Iterable[int]) -> None:
        for value in values:
            self.record(value)

    def record_repeat(self, value: int, repeat: int) -> None:
        """O(1): record the same value ``repeat`` times.

        Exactly equivalent to calling :meth:`record` ``repeat`` times —
        the batched datapath uses this for constant-size frame runs.
        """
        if repeat <= 0:
            return
        if value < 0:
            self.rejected += repeat
            return
        value = int(value)
        index = self._index_of(value)
        counts = self._counts
        counts[index] = counts.get(index, 0) + repeat
        self.count += repeat
        self.total += value * repeat
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    # -- bucket geometry ---------------------------------------------------

    def bucket_bounds(self, index: int) -> Tuple[int, int]:
        """Half-open ``[low, high)`` value range of bucket ``index``."""
        base = self._base
        if index < 2 * base:
            return index, index + 1
        octave = index // base + self.subbucket_bits - 1
        offset = index % base
        width_shift = octave - self.subbucket_bits
        low = (base + offset) << width_shift
        return low, low + (1 << width_shift)

    def bucket_rows(self) -> List[Tuple[int, int, int]]:
        """Sorted ``(low, high, count)`` rows for populated buckets."""
        return [
            (*self.bucket_bounds(index), count)
            for index, count in sorted(self._counts.items())
        ]

    # -- queries -----------------------------------------------------------

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    def percentile(self, pct: float) -> Optional[float]:
        """Value at the given percentile, exact to bucket resolution.

        Returns the midpoint of the bucket holding the rank, clamped to
        the exactly-tracked ``[minimum, maximum]`` envelope; ``None``
        for an empty histogram.
        """
        if not 0 <= pct <= 100:
            raise ConfigError(f"percentile must be in [0, 100], got {pct}")
        if self.count == 0:
            return None
        rank = pct / 100 * self.count
        seen = 0
        for index in sorted(self._counts):
            seen += self._counts[index]
            if seen >= rank:
                low, high = self.bucket_bounds(index)
                mid = (low + high - 1) / 2
                return float(min(max(mid, self.minimum), self.maximum))
        return float(self.maximum)  # pragma: no cover - rank <= count always

    def summary(self) -> HistogramSummary:
        return HistogramSummary(
            count=self.count,
            minimum=self.minimum,
            maximum=self.maximum,
            mean=self.mean,
            p50=self.percentile(50),
            p90=self.percentile(90),
            p99=self.percentile(99),
            p999=self.percentile(99.9),
        )

    # -- merge / serialize -------------------------------------------------

    def merge(self, other: "LogLinearHistogram") -> "LogLinearHistogram":
        """Fold ``other``'s counts into this histogram (lossless)."""
        if other.subbucket_bits != self.subbucket_bits:
            raise ConfigError(
                "cannot merge histograms with different subbucket_bits "
                f"({self.subbucket_bits} vs {other.subbucket_bits})"
            )
        counts = self._counts
        for index, count in other._counts.items():
            counts[index] = counts.get(index, 0) + count
        self.count += other.count
        self.total += other.total
        self.rejected += other.rejected
        if other.minimum is not None:
            self.minimum = (
                other.minimum if self.minimum is None else min(self.minimum, other.minimum)
            )
        if other.maximum is not None:
            self.maximum = (
                other.maximum if self.maximum is None else max(self.maximum, other.maximum)
            )
        return self

    def to_dict(self) -> Dict[str, object]:
        """Full-fidelity serialization (JSON-safe; see ``from_dict``)."""
        return {
            "subbucket_bits": self.subbucket_bits,
            "unit": self.unit,
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "rejected": self.rejected,
            "buckets": {str(index): count for index, count in sorted(self._counts.items())},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "LogLinearHistogram":
        histogram = cls(
            subbucket_bits=int(payload["subbucket_bits"]),
            unit=str(payload.get("unit", "")),
        )
        histogram._counts = {
            int(index): int(count) for index, count in payload["buckets"].items()
        }
        histogram.count = int(payload["count"])
        histogram.total = int(payload["total"])
        histogram.minimum = None if payload["min"] is None else int(payload["min"])
        histogram.maximum = None if payload["max"] is None else int(payload["max"])
        histogram.rejected = int(payload.get("rejected", 0))
        return histogram

    def clear(self) -> None:
        self._counts.clear()
        self.count = 0
        self.total = 0
        self.minimum = None
        self.maximum = None
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogLinearHistogram(count={self.count}, min={self.minimum}, "
            f"max={self.maximum}, buckets={len(self._counts)})"
        )


class HistogramBank:
    """A keyed family of log-linear histograms (per-flow RTT, P4TG-style).

    One bounded dict of histograms, one O(1) increment per sample.  The
    key is whatever the caller hashes a packet down to (a destination
    port, a source IP, a five-tuple string).  Once ``max_keys`` distinct
    keys exist, further new keys fold into a shared ``"(overflow)"``
    histogram — counts are never silently dropped, only coarsened, the
    way a hardware register file would saturate.
    """

    OVERFLOW_KEY = "(overflow)"

    def __init__(
        self,
        subbucket_bits: int = DEFAULT_SUBBUCKET_BITS,
        unit: str = "",
        max_keys: int = 4096,
    ) -> None:
        if max_keys < 1:
            raise ConfigError(f"max_keys must be >= 1, got {max_keys}")
        self.subbucket_bits = subbucket_bits
        self.unit = unit
        self.max_keys = max_keys
        self._histograms: Dict[object, LogLinearHistogram] = {}
        self.overflowed = 0  # samples routed to the overflow histogram

    def _histogram_for(self, key: object) -> LogLinearHistogram:
        histograms = self._histograms
        histogram = histograms.get(key)
        if histogram is None:
            if len(histograms) >= self.max_keys and key != self.OVERFLOW_KEY:
                self.overflowed += 1
                return self._histogram_for(self.OVERFLOW_KEY)
            histogram = LogLinearHistogram(self.subbucket_bits, unit=self.unit)
            histograms[key] = histogram
        return histogram

    def record(self, key: object, value: int) -> None:
        self._histogram_for(key).record(value)

    def record_repeat(self, key: object, value: int, repeat: int) -> None:
        self._histogram_for(key).record_repeat(value, repeat)

    def get(self, key: object) -> Optional[LogLinearHistogram]:
        return self._histograms.get(key)

    def keys(self) -> List[object]:
        return sorted(self._histograms, key=str)

    def __len__(self) -> int:
        return len(self._histograms)

    def __contains__(self, key: object) -> bool:
        return key in self._histograms

    def items(self) -> List[Tuple[object, LogLinearHistogram]]:
        """Histograms in deterministic (stringified-key) order."""
        return [(key, self._histograms[key]) for key in self.keys()]

    def aggregate(self) -> LogLinearHistogram:
        """Merge every keyed histogram into one (lossless)."""
        merged = LogLinearHistogram(self.subbucket_bits, unit=self.unit)
        for _, histogram in self.items():
            merged.merge(histogram)
        return merged

    def summary_rows(self) -> List[Dict[str, object]]:
        """One percentile row per key, deterministically ordered."""
        rows = []
        for key, histogram in self.items():
            row: Dict[str, object] = {"key": key}
            row.update(histogram.summary().as_dict())
            rows.append(row)
        return rows

    def merge(self, other: "HistogramBank") -> "HistogramBank":
        """Fold ``other``'s keyed histograms into this bank (lossless)."""
        if other.subbucket_bits != self.subbucket_bits:
            raise ConfigError(
                "cannot merge banks with different subbucket_bits "
                f"({self.subbucket_bits} vs {other.subbucket_bits})"
            )
        for key, histogram in other.items():
            mine = self._histograms.get(key)
            if mine is None:
                mine = self._histogram_for(key)
            mine.merge(histogram)
        self.overflowed += other.overflowed
        return self

    def to_dict(self) -> Dict[str, object]:
        """Full-fidelity serialization (string keys; see ``from_dict``)."""
        return {
            "subbucket_bits": self.subbucket_bits,
            "unit": self.unit,
            "max_keys": self.max_keys,
            "overflowed": self.overflowed,
            "histograms": {
                str(key): histogram.to_dict() for key, histogram in self.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "HistogramBank":
        bank = cls(
            subbucket_bits=int(payload["subbucket_bits"]),
            unit=str(payload.get("unit", "")),
            max_keys=int(payload.get("max_keys", 4096)),
        )
        bank.overflowed = int(payload.get("overflowed", 0))
        for key, entry in payload["histograms"].items():
            bank._histograms[key] = LogLinearHistogram.from_dict(entry)
        return bank

    def clear(self) -> None:
        self._histograms.clear()
        self.overflowed = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HistogramBank(keys={len(self._histograms)}, unit={self.unit!r})"
