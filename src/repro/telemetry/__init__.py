"""Telemetry & tracing: in-band histograms, event traces, metrics export.

The observability layer shared by the tester's datapaths, dashboard,
CLI, benchmarks and OFLOPS modules:

* :class:`LogLinearHistogram` — hardware-style latency/size histograms
  fed in-band by the capture and TX paths (O(1) record, mergeable,
  bounded-error percentiles), after P4TG's data-plane RTT histograms;
* :class:`Tracer` / :class:`TraceBuffer` — bounded ring of simulation
  trace records (kernel event scheduling/firing, per-packet datapath
  milestones), exportable as Chrome ``trace_event`` JSON;
* :class:`MetricsRegistry` — named counters/gauges/histograms with
  deterministic ``snapshot()`` semantics; one call reads the whole card;
* :class:`WaveformRecorder` — deterministic sim-time waveforms (queue
  occupancy, cwnd, windowed utilization) sampled on state change, with
  min/max-envelope decimation, Chrome counter tracks and CSV/JSONL
  timelines (see :mod:`~repro.telemetry.timeseries`);
* :mod:`~repro.telemetry.export` — JSON/CSV snapshot serialization and
  Chrome trace files;
* :mod:`~repro.telemetry.openmetrics` — OpenMetrics text exposition of
  any snapshot (plus the strict parser the CI smoke uses to check it).

Attach a tracer with ``sim.set_tracer(Tracer())``; read a card with
``device.snapshot()`` after ``device.start_telemetry()``.
"""

from .export import (
    chrome_trace,
    chrome_trace_json,
    flatten_snapshot,
    registry_histograms_to_dict,
    snapshot_to_csv,
    snapshot_to_json,
    write_chrome_trace,
    write_snapshot_csv,
    write_snapshot_json,
)
from .histogram import (
    DEFAULT_SUBBUCKET_BITS,
    HistogramBank,
    HistogramSummary,
    LogLinearHistogram,
)
from .metrics import Counter, Gauge, MetricsRegistry
from .openmetrics import (
    metric_name,
    parse_openmetrics,
    snapshot_to_openmetrics,
    write_openmetrics,
)
from .timeseries import (
    DEFAULT_KEEP_EVERY,
    DEFAULT_UTIL_WINDOW_PS,
    DEFAULT_WAVEFORM_CAPACITY,
    RateWaveform,
    Waveform,
    WaveformRecorder,
)
from .trace import DEFAULT_CAPACITY, TraceBuffer, Tracer, resolve_tracer

__all__ = [
    "Counter",
    "DEFAULT_CAPACITY",
    "DEFAULT_KEEP_EVERY",
    "DEFAULT_SUBBUCKET_BITS",
    "DEFAULT_UTIL_WINDOW_PS",
    "DEFAULT_WAVEFORM_CAPACITY",
    "Gauge",
    "HistogramBank",
    "HistogramSummary",
    "LogLinearHistogram",
    "MetricsRegistry",
    "RateWaveform",
    "TraceBuffer",
    "Tracer",
    "Waveform",
    "WaveformRecorder",
    "chrome_trace",
    "chrome_trace_json",
    "flatten_snapshot",
    "metric_name",
    "parse_openmetrics",
    "registry_histograms_to_dict",
    "resolve_tracer",
    "snapshot_to_csv",
    "snapshot_to_json",
    "snapshot_to_openmetrics",
    "write_chrome_trace",
    "write_openmetrics",
    "write_snapshot_csv",
    "write_snapshot_json",
]
