"""Event tracing: bounded ring buffers of simulation trace records.

The datapath models emit *instant* records — ``(time_ps, category,
name, detail)`` tuples — into a :class:`TraceBuffer` via
:meth:`Tracer.instant`. The sim kernel is hotter (two records per
event), so it bypasses Python entirely: :meth:`Tracer.attach_kernel`
hands it the raw C-level ``deque.append`` of two dedicated rings — one
holding ``(scheduled_at_ps, Event)`` pairs, one holding fired ``Event``
objects — and totals come from the kernel's own counters rather than
per-record increments. When no tracer is attached the only cost
anywhere is a ``None`` check. The hooks attach to the kernel's
schedule/fire path, *above* the event queue, so they cost the same one
C-level append per event under both queue implementations (timing
wheel and binary heap — see :mod:`repro.sim.wheel`).

The buffer renders as Chrome ``trace_event`` JSON (load it at
``chrome://tracing`` or https://ui.perfetto.dev) with simulated
picoseconds mapped onto the trace timebase's microseconds, so one
simulated µs reads as one trace µs.

Categories used by the built-in instrumentation:

* ``kernel`` — event ``schedule`` / ``fire`` (detail: the Event),
* ``packet`` — ``tx``, ``rx``, ``captured``, ``dma``, ``drop``,
  ``host`` (detail: a small dict),
* ``oflops`` — measurement-module lifecycle.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigError

DEFAULT_CAPACITY = 1 << 16

#: One trace record: (time_ps, category, name, detail). ``detail`` may
#: be None, a dict of Chrome ``args``, or a kernel Event (resolved at
#: export time so the hot path never formats strings).
TraceRecord = Tuple[int, str, str, Any]


class TraceBuffer:
    """Bounded ring of :data:`TraceRecord`; oldest entries are evicted.

    ``_events`` and ``recorded`` are written directly by
    :meth:`Tracer.instant` (hot-path inlining); go through
    :meth:`append` everywhere else.
    """

    __slots__ = ("capacity", "recorded", "_events")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigError("trace buffer needs at least one slot")
        self.capacity = capacity
        self.recorded = 0  # total ever appended, evicted or not
        self._events: deque = deque(maxlen=capacity)

    def append(self, record: TraceRecord) -> None:
        self.recorded += 1
        self._events.append(record)

    @property
    def evicted(self) -> int:
        """Records pushed out of the ring by later arrivals."""
        return self.recorded - len(self._events)

    def records(self) -> List[TraceRecord]:
        """The retained records, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.recorded = 0

    def __len__(self) -> int:
        return len(self._events)


class Tracer:
    """The handle components talk to; owns the trace rings.

    Attach with :meth:`repro.sim.Simulator.set_tracer`; the kernel then
    reports event scheduling/firing into the dedicated kernel rings,
    and every instrumented model (MACs, DMA, capture pipelines, OFLOPS
    runner) records milestones through :meth:`instant`.
    """

    __slots__ = (
        "buffer",
        "_sched_ring",
        "_fire_ring",
        "_sim",
        "_base_scheduled",
        "_base_fired",
    )

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.buffer = TraceBuffer(capacity)
        self._sched_ring: deque = deque(maxlen=capacity)
        self._fire_ring: deque = deque(maxlen=capacity)
        self._sim = None
        self._base_scheduled = 0
        self._base_fired = 0

    def instant(self, time_ps: int, category: str, name: str, detail: Any = None) -> None:
        """Record one instant event; the per-call cost the budget guards.

        Deliberately inlines :meth:`TraceBuffer.append` — this runs
        once per datapath milestone, so one saved method call is a
        measurable share of the overhead budget.
        """
        buffer = self.buffer
        buffer.recorded += 1
        buffer._events.append((time_ps, category, name, detail))

    def attach_kernel(self, sim: Any) -> Tuple[Any, Any]:
        """Give the kernel its two hot-path appenders.

        Called by :meth:`repro.sim.Simulator.set_tracer`. Returns the
        raw ``deque.append`` bound methods for the schedule ring (fed
        ``(now_ps, Event)`` pairs) and the fire ring (fed ``Event``
        objects) — no Python frame is entered per record. Totals are
        reconstructed from the kernel's event counters relative to the
        baselines captured here.
        """
        self._sim = sim
        self._base_scheduled = sim.events_scheduled
        self._base_fired = sim.events_processed
        return self._sched_ring.append, self._fire_ring.append

    # -- accounting --------------------------------------------------------

    @property
    def kernel_scheduled_recorded(self) -> int:
        """Schedule records ever made (retained or evicted)."""
        if self._sim is not None:
            return self._sim.events_scheduled - self._base_scheduled
        return len(self._sched_ring)

    @property
    def kernel_fired_recorded(self) -> int:
        """Fire records ever made (retained or evicted)."""
        if self._sim is not None:
            return self._sim.events_processed - self._base_fired
        return len(self._fire_ring)

    @property
    def recorded(self) -> int:
        """Total records ever made across all rings."""
        return (
            self.buffer.recorded
            + self.kernel_scheduled_recorded
            + self.kernel_fired_recorded
        )

    @property
    def evicted(self) -> int:
        """Records pushed out of any ring by later arrivals."""
        return self.recorded - len(self)

    @property
    def capacity(self) -> int:
        return self.buffer.capacity

    def records(self) -> List[TraceRecord]:
        """All retained records as uniform tuples, ordered by time.

        Kernel ring entries are expanded into the common
        ``(time_ps, category, name, detail)`` shape here, at export
        time, so the hot path never builds them.
        """
        merged: List[TraceRecord] = list(self.buffer.records())
        merged.extend(
            (now_ps, "kernel", "schedule", event)
            for now_ps, event in self._sched_ring
        )
        merged.extend(
            (event.time, "kernel", "fire", event) for event in self._fire_ring
        )
        merged.sort(key=lambda record: record[0])
        return merged

    def clear(self) -> None:
        self.buffer.clear()
        self._sched_ring.clear()
        self._fire_ring.clear()
        if self._sim is not None:
            self._base_scheduled = self._sim.events_scheduled
            self._base_fired = self._sim.events_processed

    # -- export ------------------------------------------------------------

    def chrome_events(self) -> List[Dict[str, Any]]:
        """All retained records as a Chrome ``trace_event`` array."""
        events = []
        for time_ps, category, name, detail in self.records():
            events.append(
                {
                    "name": name,
                    "cat": category,
                    "ph": "i",
                    "s": "g",
                    # 1 simulated ps -> 1e-6 trace µs: timelines read in
                    # real simulated time.
                    "ts": time_ps / 1e6,
                    "pid": 0,
                    "tid": 0,
                    "args": _detail_args(detail),
                }
            )
        return events

    def __len__(self) -> int:
        return len(self.buffer) + len(self._sched_ring) + len(self._fire_ring)


def _detail_args(detail: Any) -> Dict[str, Any]:
    """Normalise a record's detail into JSON-safe Chrome ``args``."""
    if detail is None:
        return {}
    if isinstance(detail, dict):
        return detail
    callback = getattr(detail, "callback", None)
    if callback is not None:  # a kernel Event
        return {
            "seq": detail.seq,
            "at_ps": detail.time,
            "callback": getattr(
                callback, "__qualname__", getattr(callback, "__name__", repr(callback))
            ),
        }
    return {"detail": repr(detail)}


def resolve_tracer(sim) -> Optional[Tracer]:
    """The tracer attached to a simulator, if any (for instrumentation)."""
    return getattr(sim, "tracer", None)
