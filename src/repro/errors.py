"""Exception hierarchy for the OSNT reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at an API boundary. Subsystems raise the most
specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly.

    Examples: scheduling an event in the past, running a stopped
    simulator, or cancelling an event that already fired (cancelling a
    pending event twice is an idempotent no-op, not an error).
    """


class PacketError(ReproError):
    """A packet could not be built or parsed."""


class TruncatedPacketError(PacketError):
    """A parse ran off the end of the packet bytes."""


class ChecksumError(PacketError):
    """A verified checksum (L3/L4 or Ethernet FCS) did not match."""


class PcapError(ReproError):
    """A PCAP file was malformed or used an unsupported feature."""


class RegisterError(ReproError):
    """A hardware register access was invalid (bad address or value)."""


class ConfigError(ReproError, ValueError):
    """A component was configured with inconsistent or invalid values.

    Also a :class:`ValueError`: malformed user input (rate strings,
    durations, spec fields) can be caught generically at API boundaries.
    """


class LinkError(ReproError):
    """A port/link was wired incorrectly (double-connect, no peer...)."""


class CaptureError(ReproError):
    """The monitor capture path was misused."""


class GeneratorError(ReproError):
    """The traffic generator was misconfigured or misused."""


class OpenFlowError(ReproError):
    """An OpenFlow message could not be encoded or decoded."""


class OflopsError(ReproError):
    """An OFLOPS-turbo measurement module failed or was misconfigured."""


class SweepError(ReproError):
    """An experiment sweep could not be expanded, executed or resumed."""


class FaultError(ReproError):
    """A fault-injection spec was invalid or could not be attached."""


class SnmpError(ReproError):
    """An SNMP request named an unknown OID or used a bad operation."""


class TopologyError(ReproError, ValueError):
    """A declarative topology was malformed or could not be built.

    Also a :class:`ValueError` for the same reason :class:`ConfigError`
    is: topology documents are user input.
    """


class FlowError(ReproError):
    """A flow transport was misconfigured or misused."""
