"""Declarative topology construction.

A :class:`Topology` is to device wiring what
:class:`~repro.runner.ExperimentSpec` is to measurement campaigns and
:class:`~repro.faults.ImpairmentSpec` is to fault injection: a
plain-data, JSON-round-trip description of *which* devices exist and
*how* their ports are cabled. Scenarios declare the shape once —

    >>> topo = (Topology(name="pair")
    ...         .host("h1").host("h2").switch("s1", ports=2)
    ...         .link("h1", "s1", rate="10Gbps", delay="5ns")
    ...         .link("s1", "h2"))
    >>> built = topo.build(Simulator())          # doctest: +SKIP

— and :meth:`Topology.build` instantiates the devices **in declaration
order** (construction order is part of the determinism contract: it
fixes RNG stream creation and daemon-event scheduling order) and wires
the cables in declaration order.

Node kinds and their ``params`` (all optional, human units accepted):

* ``host`` — :class:`~repro.devices.host.SimpleHost`; ``ip``/``mac``
  (auto-assigned ``10.0.0.N`` / ``02:00:00:00:00:NN`` by host index
  when omitted), ``rate``, ``reply_delay``.
* ``legacy_switch`` (builder alias :meth:`Topology.switch`) —
  :class:`~repro.devices.legacy_switch.LegacySwitch`; ``ports``,
  ``rate``, ``latency``, ``jitter``, ``buffer_bytes``, ``mac_table``,
  ``fabric_rate``, ``seed`` (per-switch jitter RNG).
* ``openflow_switch`` — a
  :class:`~repro.openflow.connection.ControlChannel` plus an
  :class:`~repro.devices.openflow_switch.OpenFlowSwitch` on its switch
  end; ``ports``, ``rate``, ``control_latency``, ``control_bandwidth``,
  ``profile`` (a name from :data:`repro.devices.PROFILES`, a dict of
  :class:`~repro.devices.SwitchProfile` fields, or an instance),
  ``datapath_id``. The channel is reachable via
  :meth:`BuiltTopology.control_channel`.
* ``osnt`` — an :class:`~repro.osnt.OSNT` tester card; params are
  passed through to the device (``root_seed`` etc.).
* ``snmp`` — an :class:`~repro.devices.SnmpAgent` serving the ports of
  the switch named by ``switch``.

Link endpoints are ``"name"`` (a host's single NIC, or the device's
first *unconnected* port) or ``"name:N"`` (explicit port index).
A link's ``rate`` (when given) reprograms both endpoint ports before
cabling; ``delay`` is the propagation delay and ``bit_error_rate``
models a dirty fibre exactly like
:func:`repro.hw.port.connect`.

Pre-built devices (a switch with a pinned RNG, a shared tester) are
injected at build time with ``build(sim, devices={"s1": switch})`` —
the spec stays serializable, the injected object is used as-is.
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .errors import TopologyError
from .hw.port import DEFAULT_PROPAGATION_PS, EthernetPort, Link, connect
from .units import duration_ps, rate_bps

#: Registered node kinds (see module docstring).
NODE_KINDS = ("host", "legacy_switch", "openflow_switch", "osnt", "snmp")

_NODE_FIELDS = ("name", "kind", "params")
_LINK_FIELDS = ("a", "b", "delay", "rate", "bit_error_rate")


@dataclass
class NodeSpec:
    """One device declaration: a unique name, a kind, its parameters."""

    name: str
    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("node needs a non-empty name")
        if ":" in self.name:
            raise TopologyError(
                f"node name {self.name!r} may not contain ':' "
                "(reserved for port references)"
            )
        if self.kind not in NODE_KINDS:
            raise TopologyError(
                f"unknown node kind {self.kind!r}; choose from {sorted(NODE_KINDS)}"
            )
        if not isinstance(self.params, dict):
            raise TopologyError(
                f"node {self.name!r}: params must be a dict, "
                f"got {type(self.params).__name__}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {name: copy.deepcopy(getattr(self, name)) for name in _NODE_FIELDS}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "NodeSpec":
        if not isinstance(data, dict):
            raise TopologyError(f"node must be a JSON object, got {type(data).__name__}")
        unknown = set(data) - set(_NODE_FIELDS)
        if unknown:
            raise TopologyError(f"unknown node field(s): {', '.join(sorted(unknown))}")
        if "name" not in data or "kind" not in data:
            raise TopologyError("node needs at least 'name' and 'kind'")
        return cls(**copy.deepcopy(data))


@dataclass
class LinkSpec:
    """One cable: two port references plus the wire's properties."""

    a: str
    b: str
    delay: Union[int, str] = DEFAULT_PROPAGATION_PS
    rate: Optional[Union[float, str]] = None
    bit_error_rate: float = 0.0

    def __post_init__(self) -> None:
        if not self.a or not self.b:
            raise TopologyError("link needs two endpoint references")
        if not 0.0 <= self.bit_error_rate < 1.0:
            raise TopologyError(
                f"link {self.a!r}–{self.b!r}: bit_error_rate must be in [0, 1)"
            )

    @property
    def delay_ps(self) -> int:
        return duration_ps(self.delay)

    @property
    def rate_bps(self) -> Optional[float]:
        return None if self.rate is None else rate_bps(self.rate)

    def to_dict(self) -> Dict[str, Any]:
        return {name: copy.deepcopy(getattr(self, name)) for name in _LINK_FIELDS}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LinkSpec":
        if not isinstance(data, dict):
            raise TopologyError(f"link must be a JSON object, got {type(data).__name__}")
        unknown = set(data) - set(_LINK_FIELDS)
        if unknown:
            raise TopologyError(f"unknown link field(s): {', '.join(sorted(unknown))}")
        if "a" not in data or "b" not in data:
            raise TopologyError("link needs at least 'a' and 'b'")
        return cls(**copy.deepcopy(data))


def _parse_endpoint(ref: str) -> Tuple[str, Optional[int]]:
    """Split ``"name"`` / ``"name:3"`` into (node name, port index)."""
    if ":" not in ref:
        return ref, None
    name, _, index = ref.rpartition(":")
    if not name or not index.isdigit():
        raise TopologyError(f"bad endpoint reference {ref!r} (want 'name' or 'name:N')")
    return name, int(index)


class Topology:
    """Chainable builder of a :class:`NodeSpec`/:class:`LinkSpec` plan."""

    def __init__(
        self,
        name: str = "topology",
        nodes: Sequence[Union[NodeSpec, dict]] = (),
        links: Sequence[Union[LinkSpec, dict]] = (),
    ) -> None:
        self.name = name
        self.nodes: List[NodeSpec] = []
        self.links: List[LinkSpec] = []
        for node in nodes:
            self._add_node(node if isinstance(node, NodeSpec) else NodeSpec.from_dict(node))
        for entry in links:
            self.links.append(entry if isinstance(entry, LinkSpec) else LinkSpec.from_dict(entry))

    # -- declaration ---------------------------------------------------------

    def _add_node(self, node: NodeSpec) -> "Topology":
        if any(existing.name == node.name for existing in self.nodes):
            raise TopologyError(f"duplicate node name {node.name!r}")
        self.nodes.append(node)
        return self

    def node(self, name: str, kind: str, **params: Any) -> "Topology":
        """Declare a device of any registered ``kind``."""
        return self._add_node(NodeSpec(name=name, kind=kind, params=params))

    def host(self, name: str, **params: Any) -> "Topology":
        """Declare a :class:`~repro.devices.SimpleHost` endpoint."""
        return self.node(name, "host", **params)

    def switch(self, name: str, kind: str = "legacy", **params: Any) -> "Topology":
        """Declare a switch (``kind="legacy"`` or ``"openflow"``)."""
        kinds = {"legacy": "legacy_switch", "openflow": "openflow_switch"}
        if kind not in kinds:
            raise TopologyError(
                f"unknown switch kind {kind!r}; choose from {sorted(kinds)}"
            )
        return self.node(name, kinds[kind], **params)

    def tester(self, name: str = "osnt", **params: Any) -> "Topology":
        """Declare an :class:`~repro.osnt.OSNT` tester card."""
        return self.node(name, "osnt", **params)

    def snmp(self, name: str, switch: str, **params: Any) -> "Topology":
        """Declare an SNMP agent over a declared switch's ports."""
        return self.node(name, "snmp", switch=switch, **params)

    def link(
        self,
        a: str,
        b: str,
        delay: Union[int, str] = DEFAULT_PROPAGATION_PS,
        rate: Optional[Union[float, str]] = None,
        bit_error_rate: float = 0.0,
    ) -> "Topology":
        """Declare a cable between two endpoint references."""
        self.links.append(
            LinkSpec(a=a, b=b, delay=delay, rate=rate, bit_error_rate=bit_error_rate)
        )
        return self

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "nodes": [node.to_dict() for node in self.nodes],
            "links": [link.to_dict() for link in self.links],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Topology":
        if not isinstance(data, dict):
            raise TopologyError(f"topology must be a JSON object, got {type(data).__name__}")
        unknown = set(data) - {"name", "nodes", "links"}
        if unknown:
            raise TopologyError(
                f"unknown topology field(s): {', '.join(sorted(unknown))}"
            )
        return cls(
            name=data.get("name", "topology"),
            nodes=list(data.get("nodes", ())),
            links=list(data.get("links", ())),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=(indent is None))

    @classmethod
    def from_json(cls, document: str) -> "Topology":
        try:
            data = json.loads(document)
        except json.JSONDecodeError as exc:
            raise TopologyError(f"topology is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_any(
        cls, value: Union[None, "Topology", Dict[str, Any], str]
    ) -> "Topology":
        """Coerce any accepted representation into a :class:`Topology`."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.from_json(value)
        if isinstance(value, dict):
            return cls.from_dict(value)
        raise TopologyError(f"cannot build a Topology from {type(value).__name__}")

    def fingerprint(self) -> str:
        """Content hash: equal topologies → equal fingerprints."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    # -- construction --------------------------------------------------------

    def build(
        self,
        sim=None,
        devices: Optional[Dict[str, Any]] = None,
    ) -> "BuiltTopology":
        """Instantiate devices and wire cables, in declaration order.

        ``devices`` maps node names to pre-built device objects that are
        used instead of constructing new ones (their declared params are
        ignored). Returns a :class:`BuiltTopology`.
        """
        from .sim import Simulator

        if sim is None:
            sim = Simulator()
        injected = dict(devices or {})
        unknown = set(injected) - {node.name for node in self.nodes}
        if unknown:
            raise TopologyError(
                f"injected device(s) not declared in the topology: "
                f"{', '.join(sorted(unknown))}"
            )
        built = BuiltTopology(sim, self)
        host_index = 0
        for node in self.nodes:
            if node.kind == "host":
                host_index += 1
            device = injected.get(node.name)
            if device is None:
                device = self._build_node(built, sim, node, host_index)
            built.devices[node.name] = device
        for spec in self.links:
            built.links.append(self._build_link(built, spec))
        return built

    def _build_node(self, built: "BuiltTopology", sim, node: NodeSpec, host_index: int):
        params = dict(node.params)
        try:
            if node.kind == "host":
                return self._build_host(sim, node, params, host_index)
            if node.kind == "legacy_switch":
                return self._build_legacy_switch(sim, node, params)
            if node.kind == "openflow_switch":
                return self._build_openflow_switch(built, sim, node, params)
            if node.kind == "osnt":
                from .osnt.api import OSNT

                return OSNT(sim, **params)
            if node.kind == "snmp":
                return self._build_snmp(built, sim, node, params)
        except TopologyError:
            raise
        except TypeError as exc:
            raise TopologyError(f"node {node.name!r} ({node.kind}): {exc}") from exc
        raise TopologyError(f"unknown node kind {node.kind!r}")  # pragma: no cover

    @staticmethod
    def _build_host(sim, node: NodeSpec, params: Dict[str, Any], host_index: int):
        from .devices.host import SimpleHost

        kwargs: Dict[str, Any] = {
            "mac": params.pop("mac", None) or f"02:00:00:00:00:{host_index:02x}",
            "ip": params.pop("ip", None) or f"10.0.0.{host_index}",
        }
        if "rate" in params:
            kwargs["rate_bps"] = rate_bps(params.pop("rate"))
        if "reply_delay" in params:
            kwargs["reply_delay_ps"] = duration_ps(params.pop("reply_delay"))
        if params:
            raise TopologyError(
                f"host {node.name!r}: unknown param(s) {', '.join(sorted(params))}"
            )
        return SimpleHost(sim, node.name, **kwargs)

    @staticmethod
    def _build_legacy_switch(sim, node: NodeSpec, params: Dict[str, Any]):
        from .devices.legacy_switch import LegacySwitch
        from .sim import RandomStreams

        kwargs: Dict[str, Any] = {"name": params.pop("device_name", node.name)}
        if "ports" in params:
            kwargs["num_ports"] = int(params.pop("ports"))
        if "rate" in params:
            kwargs["port_rate_bps"] = rate_bps(params.pop("rate"))
        if "latency" in params:
            kwargs["switching_latency_ps"] = duration_ps(params.pop("latency"))
        if "jitter" in params:
            kwargs["latency_jitter_ps"] = duration_ps(params.pop("jitter"))
        if "buffer_bytes" in params:
            kwargs["buffer_bytes_per_port"] = int(params.pop("buffer_bytes"))
        if "mac_table" in params:
            kwargs["mac_table_capacity"] = int(params.pop("mac_table"))
        if "fabric_rate" in params:
            fabric = params.pop("fabric_rate")
            kwargs["fabric_rate_bps"] = None if fabric is None else rate_bps(fabric)
        if "seed" in params:
            kwargs["rng"] = RandomStreams(int(params.pop("seed"))).stream("sw")
        if params:
            raise TopologyError(
                f"switch {node.name!r}: unknown param(s) {', '.join(sorted(params))}"
            )
        return LegacySwitch(sim, **kwargs)

    @staticmethod
    def _build_openflow_switch(built: "BuiltTopology", sim, node: NodeSpec, params):
        from .devices.openflow_switch import PROFILES, SwitchProfile, OpenFlowSwitch
        from .openflow.connection import ControlChannel

        channel_kwargs: Dict[str, Any] = {}
        if "control_latency" in params:
            channel_kwargs["latency_ps"] = duration_ps(params.pop("control_latency"))
        if "control_bandwidth" in params:
            channel_kwargs["bandwidth_bps"] = rate_bps(params.pop("control_bandwidth"))
        profile = params.pop("profile", None)
        if isinstance(profile, str):
            if profile not in PROFILES:
                raise TopologyError(
                    f"switch {node.name!r}: unknown profile {profile!r}; "
                    f"known: {', '.join(sorted(PROFILES))}"
                )
            profile = PROFILES[profile]
        elif isinstance(profile, dict):
            profile = SwitchProfile(**profile)
        kwargs: Dict[str, Any] = {
            "name": params.pop("device_name", node.name),
            "profile": profile,
        }
        if "ports" in params:
            kwargs["num_ports"] = int(params.pop("ports"))
        if "rate" in params:
            kwargs["port_rate_bps"] = rate_bps(params.pop("rate"))
        if "datapath_id" in params:
            kwargs["datapath_id"] = int(params.pop("datapath_id"))
        if params:
            raise TopologyError(
                f"switch {node.name!r}: unknown param(s) {', '.join(sorted(params))}"
            )
        channel = ControlChannel(sim, **channel_kwargs)
        built.control_channels[node.name] = channel
        return OpenFlowSwitch(sim, channel.switch, **kwargs)

    @staticmethod
    def _build_snmp(built: "BuiltTopology", sim, node: NodeSpec, params):
        from .devices.snmp_agent import SnmpAgent

        switch_name = params.pop("switch", None)
        if switch_name is None:
            raise TopologyError(f"snmp node {node.name!r} needs a 'switch' param")
        switch = built.devices.get(switch_name)
        if switch is None:
            raise TopologyError(
                f"snmp node {node.name!r}: switch {switch_name!r} must be "
                "declared before it"
            )
        return SnmpAgent(sim, switch.ports, **params)

    def _build_link(self, built: "BuiltTopology", spec: LinkSpec) -> Link:
        port_a = built.endpoint(spec.a)
        port_b = built.endpoint(spec.b)
        rate = spec.rate_bps
        if rate is not None:
            for port in (port_a, port_b):
                port.rate_bps = rate
                port.tx.rate_bps = rate
        return connect(
            port_a,
            port_b,
            propagation_ps=spec.delay_ps,
            bit_error_rate=spec.bit_error_rate,
        )


class BuiltTopology:
    """The instantiated devices and cables of one :meth:`Topology.build`."""

    def __init__(self, sim, topology: Topology) -> None:
        self.sim = sim
        self.topology = topology
        #: name → device, in declaration order.
        self.devices: Dict[str, Any] = {}
        #: :class:`~repro.hw.port.Link` objects, in declaration order.
        self.links: List[Link] = []
        #: OpenFlow control channels, keyed by their switch's node name.
        self.control_channels: Dict[str, Any] = {}

    def __getitem__(self, name: str):
        return self.node(name)

    def node(self, name: str):
        """The built device for a declared node name."""
        device = self.devices.get(name)
        if device is None:
            raise TopologyError(f"no node named {name!r} in the topology")
        return device

    def control_channel(self, name: str):
        """The control channel of a declared OpenFlow switch."""
        channel = self.control_channels.get(name)
        if channel is None:
            raise TopologyError(f"node {name!r} is not an OpenFlow switch")
        return channel

    def endpoint(self, ref: str) -> EthernetPort:
        """Resolve ``"name"`` / ``"name:N"`` to an Ethernet port.

        Without an index a host resolves to its single NIC and a
        multi-port device to its first unconnected port (deterministic:
        ports are scanned in index order).
        """
        name, index = _parse_endpoint(ref)
        device = self.node(name)
        port_attr = getattr(device, "port", None)
        if isinstance(port_attr, EthernetPort):  # SimpleHost-style: one NIC
            if index not in (None, 0):
                raise TopologyError(f"host {name!r} has a single port; got {ref!r}")
            return port_attr
        if not callable(port_attr):
            raise TopologyError(f"node {name!r} has no attachable ports")
        if index is not None:
            try:
                return port_attr(index)
            except (IndexError, KeyError) as exc:
                raise TopologyError(f"node {name!r} has no port {index}") from exc
        ports = getattr(device, "ports", None)
        if ports is None and hasattr(device, "device"):  # the OSNT facade
            ports = getattr(device.device, "ports", None)
        if not ports:
            raise TopologyError(
                f"cannot auto-pick a port on {name!r}; use an explicit {name}:N"
            )
        for port in ports:
            if port.link is None:
                return port
        raise TopologyError(f"all ports of {name!r} are already connected")

    def link_between(self, a: str, b: str) -> Link:
        """The first declared link between two node names (either order)."""
        targets = {a, b}
        for spec, link in zip(self.topology.links, self.links):
            names = {_parse_endpoint(spec.a)[0], _parse_endpoint(spec.b)[0]}
            if names == targets:
                return link
        raise TopologyError(f"no link between {a!r} and {b!r}")


__all__ = [
    "BuiltTopology",
    "LinkSpec",
    "NODE_KINDS",
    "NodeSpec",
    "Topology",
]
