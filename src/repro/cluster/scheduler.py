"""Pluggable shard schedulers: one contract, local and remote backends.

The :class:`~repro.runner.SweepRunner` used to *be* its worker pool.
This module lifts that loop behind a small interface so the execution
topology is a choice, not an architecture:

* :class:`LocalScheduler` — the original forked worker pool, verbatim:
  per-attempt subprocesses, wall-clock timeouts, bounded retry.
* :class:`SocketScheduler` — dispatches shards to remote worker
  processes (``osnt-worker``) over a length-prefixed JSON protocol
  (:mod:`repro.cluster.protocol`): pull-based work stealing (idle
  workers request shards, so fast hosts naturally take more), per-shard
  heartbeats in the flight-recorder format (a live
  :class:`~repro.obs.FlightTailer` shows remote progress exactly like
  local), heartbeat-timeout dead-worker detection with shard
  reassignment bounded by the spec's retry budget, and graceful drain.

Both backends report terminal :class:`~repro.runner.ShardResult`\\ s
through one ``on_record`` callback and never influence shard *content*
— a result depends only on ``(spec, shard)`` — so merged reports are
bit-identical across backends, worker counts and failure histories.
"""

from __future__ import annotations

import json
import os
import selectors
import socket
import subprocess
import sys
import tempfile
import time
from abc import ABC, abstractmethod
from collections import deque
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional

from ..errors import SweepError
from ..obs.flight import DEFAULT_HEARTBEAT_S, DEFAULT_STALL_FACTOR, heartbeat_path
from ..runner.report import STATUS_FAILED, STATUS_OK, ShardResult
from ..runner.spec import ExperimentSpec, Shard
from .protocol import FrameDecoder, encode_frame

#: How often schedulers poll for progress, seconds.
POLL_S = 0.01
#: Default wall-clock budget for the first worker to connect.
DEFAULT_CONNECT_TIMEOUT_S = 30.0
#: Grace given to draining workers before their sockets are closed.
DEFAULT_DRAIN_TIMEOUT_S = 5.0

OnRecord = Callable[[ShardResult], None]
OnCycle = Optional[Callable[[Dict[int, Dict[str, Any]]], None]]


class Scheduler(ABC):
    """Drives every shard in ``todo`` to a terminal :class:`ShardResult`.

    Contract: call ``on_record`` exactly once per shard with a terminal
    record (ok or failed), honor ``spec.timeout_s`` per attempt and
    ``spec.retries`` as the total retry budget (attempts =
    ``retries + 1``, however attempts end — failure, timeout or worker
    death), and never alter what a shard computes. ``tailer``, when
    given, is fed per-attempt heartbeat files for stall detection;
    ``on_cycle`` is invoked every poll cycle with the tailer's status
    map (empty when untailed) for live progress rendering.
    """

    name = "scheduler"

    @abstractmethod
    def run(
        self,
        spec: ExperimentSpec,
        todo: List[Shard],
        *,
        on_record: OnRecord,
        tailer=None,
        on_cycle: OnCycle = None,
    ) -> None:
        """Execute ``todo`` (in any order/topology) to completion."""

    def stats(self) -> Dict[str, Any]:
        """Operational counters from the most recent :meth:`run`."""
        return {"backend": self.name}

    def telemetry_snapshots(self) -> Dict[str, Dict[str, Any]]:
        """Per-worker telemetry from the most recent :meth:`run`."""
        return {}


class LocalScheduler(Scheduler):
    """The forked worker pool (the pre-cluster behavior, unchanged).

    Workers are forked per attempt from this process, write their
    outcome file atomically and exit; the parent polls, enforces
    timeouts, retries and collects. See
    :mod:`repro.runner.execution` for the worker entry point.
    """

    name = "local"

    def __init__(
        self,
        workers: int = 2,
        start_method: Optional[str] = None,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    ) -> None:
        import multiprocessing

        if workers < 1:
            raise SweepError(f"LocalScheduler needs workers >= 1, got {workers}")
        self.workers = workers
        self.heartbeat_s = heartbeat_s
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        self._executed = 0
        self._retried = 0

    def run(
        self,
        spec: ExperimentSpec,
        todo: List[Shard],
        *,
        on_record: OnRecord,
        tailer=None,
        on_cycle: OnCycle = None,
    ) -> None:
        from ..runner.execution import _Attempt

        self._executed = 0
        self._retried = 0
        with tempfile.TemporaryDirectory(prefix="repro-sweep-") as scratch:
            pending: Deque[Shard] = deque(todo)
            attempts_used: Dict[int, int] = {shard.index: 0 for shard in todo}
            started_at: Dict[int, float] = {}
            running: List[Any] = []
            try:
                while pending or running:
                    while pending and len(running) < self.workers:
                        shard = pending.popleft()
                        started_at.setdefault(shard.index, time.monotonic())
                        attempts_used[shard.index] += 1
                        out = os.path.join(
                            scratch,
                            f"shard-{shard.index:05d}-a{attempts_used[shard.index]}.json",
                        )
                        flight_path = None
                        if tailer is not None:
                            flight_path = str(
                                heartbeat_path(
                                    tailer.directory,
                                    shard.index,
                                    attempts_used[shard.index],
                                )
                            )
                            tailer.track(shard.index, attempts_used[shard.index])
                        running.append(
                            _Attempt(
                                self._ctx,
                                spec,
                                shard,
                                out,
                                flight_path=flight_path,
                                attempt=attempts_used[shard.index],
                                heartbeat_s=self.heartbeat_s,
                            )
                        )
                    still_running: List[Any] = []
                    for attempt in running:
                        payload = attempt.outcome(spec.timeout_s)
                        if payload is None:
                            still_running.append(attempt)
                            continue
                        shard = attempt.shard
                        self._executed += 1
                        if tailer is not None:
                            tailer.untrack(shard.index)
                        if payload["status"] == STATUS_OK:
                            on_record(
                                ShardResult(
                                    index=shard.index,
                                    params=shard.params,
                                    seed=shard.seed,
                                    status=STATUS_OK,
                                    result=payload.get("result"),
                                    attempts=attempts_used[shard.index],
                                    elapsed_s=time.monotonic()
                                    - started_at[shard.index],
                                )
                            )
                        elif attempts_used[shard.index] <= spec.retries:
                            self._retried += 1
                            pending.append(shard)  # retry at the back of the queue
                        else:
                            on_record(
                                ShardResult(
                                    index=shard.index,
                                    params=shard.params,
                                    seed=shard.seed,
                                    status=STATUS_FAILED,
                                    error=payload.get("error", "unknown failure"),
                                    attempts=attempts_used[shard.index],
                                    elapsed_s=time.monotonic()
                                    - started_at[shard.index],
                                )
                            )
                    running = still_running
                    if on_cycle is not None:
                        on_cycle(tailer.poll() if tailer is not None else {})
                    elif tailer is not None:
                        tailer.poll()
                    if running:
                        time.sleep(POLL_S)
            finally:
                for attempt in running:
                    attempt.terminate()

    def stats(self) -> Dict[str, Any]:
        return {
            "backend": self.name,
            "workers": self.workers,
            "executed": self._executed,
            "retried": self._retried,
        }


class _WorkerConn:
    """Parent-side state for one connected remote worker."""

    __slots__ = (
        "sock",
        "addr",
        "decoder",
        "name",
        "welcomed",
        "idle",
        "assigned",
        "last_seen",
        "executed",
        "telemetry",
        "draining",
    )

    def __init__(self, sock: socket.socket, addr) -> None:
        self.sock = sock
        self.addr = addr
        self.decoder = FrameDecoder()
        self.name: Optional[str] = None
        self.welcomed = False
        self.idle = False
        self.assigned: Optional[Dict[str, Any]] = None
        self.last_seen = time.monotonic()
        self.executed = 0
        self.telemetry: Optional[Dict[str, Any]] = None
        self.draining = False

    @property
    def label(self) -> str:
        return self.name or f"{self.addr[0]}:{self.addr[1]}"


class SocketScheduler(Scheduler):
    """Dispatch shards to remote ``osnt-worker`` processes over TCP.

    The scheduler listens (``host:port``, port 0 = ephemeral — read
    :attr:`address` after construction); workers connect, handshake
    and then *pull*: an idle worker requests a shard, which is
    work stealing without any balancing logic — fast or idle hosts
    simply ask more often. Failure semantics:

    * **no heartbeat** from a busy worker within
      ``heartbeat_timeout_s`` → the worker is declared dead, its
      connection closed and its shard reassigned (the attempt counts
      against ``spec.retries``, so a shard that kills workers cannot
      loop forever);
    * **connection loss** (EOF, reset, send failure) → same
      reassignment path, immediately;
    * **per-shard timeout** (``spec.timeout_s``) → the attempt fails
      exactly like a local hung worker and the stuck worker is
      disconnected;
    * **drain** — once every shard is terminal, workers receive
      ``drain``, answer with a telemetry snapshot and ``bye``, and the
      per-worker snapshots are exposed via
      :meth:`telemetry_snapshots` for OpenMetrics aggregation.

    ``spawn_workers=N`` forks N loopback ``osnt-worker`` subprocesses
    at run start (convenience for CI/single-host use); any externally
    started worker may connect as well, at any time during the run.
    """

    name = "socket"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn_workers: int = 0,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        heartbeat_timeout_s: Optional[float] = None,
        connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S,
        drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
    ) -> None:
        if heartbeat_s <= 0:
            raise SweepError(f"heartbeat_s must be > 0, got {heartbeat_s}")
        self.heartbeat_s = heartbeat_s
        self.heartbeat_timeout_s = (
            heartbeat_timeout_s
            if heartbeat_timeout_s is not None
            else DEFAULT_STALL_FACTOR * heartbeat_s
        )
        if self.heartbeat_timeout_s <= 0:
            raise SweepError(
                f"heartbeat_timeout_s must be > 0, got {self.heartbeat_timeout_s}"
            )
        self.spawn_workers = spawn_workers
        self.connect_timeout_s = connect_timeout_s
        self.drain_timeout_s = drain_timeout_s
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        #: The (host, port) workers should connect to.
        self.address = self._listener.getsockname()[:2]
        self.spawned: List[subprocess.Popen] = []
        self._conns: List[_WorkerConn] = []
        self._deaths = 0
        self._reassigned = 0
        self._executed = 0
        self._per_worker: Dict[str, int] = {}
        self._telemetry: Dict[str, Dict[str, Any]] = {}

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self, count: int) -> None:
        import repro

        host, port = self.address
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        for i in range(count):
            self.spawned.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-c",
                        # not `-m repro.cluster.worker`: the package
                        # __init__ imports .worker, and runpy warns when
                        # re-executing an already-imported module.
                        "from repro.cluster.worker import main; "
                        "import sys; sys.exit(main(sys.argv[1:]))",
                        "--connect",
                        f"{host}:{port}",
                        "--name",
                        f"spawn-{i}",
                    ],
                    env=env,
                    stdout=subprocess.DEVNULL,
                )
            )

    def close(self) -> None:
        """Close the listener and every connection; reap spawned workers."""
        for conn in self._conns:
            try:
                conn.sock.close()
            except OSError:
                pass
        self._conns = []
        try:
            self._listener.close()
        except OSError:
            pass
        for proc in self.spawned:
            try:
                proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=2.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        self.spawned = []

    # -- the event loop ------------------------------------------------------

    def run(
        self,
        spec: ExperimentSpec,
        todo: List[Shard],
        *,
        on_record: OnRecord,
        tailer=None,
        on_cycle: OnCycle = None,
    ) -> None:
        self._deaths = 0
        self._reassigned = 0
        self._executed = 0
        self._per_worker = {}
        self._telemetry = {}
        if not todo:
            return
        if self.spawn_workers and not self.spawned:
            self._spawn(self.spawn_workers)
        pending: Deque[Shard] = deque(todo)
        attempts_used: Dict[int, int] = {s.index: 0 for s in todo}
        started_at: Dict[int, float] = {}
        outstanding = {s.index for s in todo}
        shards_by_index = {s.index: s for s in todo}
        selector = selectors.DefaultSelector()
        selector.register(self._listener, selectors.EVENT_READ, None)
        started = time.monotonic()
        ever_connected = False
        last_alive = started

        def finalize(shard: Shard, payload: Dict[str, Any], worker: str) -> None:
            """Terminal-or-retry decision for one finished attempt."""
            self._executed += 1
            if tailer is not None:
                tailer.untrack(shard.index)
            if payload["status"] == STATUS_OK:
                outstanding.discard(shard.index)
                on_record(
                    ShardResult(
                        index=shard.index,
                        params=shard.params,
                        seed=shard.seed,
                        status=STATUS_OK,
                        result=payload.get("result"),
                        attempts=attempts_used[shard.index],
                        elapsed_s=time.monotonic() - started_at[shard.index],
                        worker=worker,
                    )
                )
            elif attempts_used[shard.index] <= spec.retries:
                self._reassigned += 1
                pending.append(shard)
            else:
                outstanding.discard(shard.index)
                on_record(
                    ShardResult(
                        index=shard.index,
                        params=shard.params,
                        seed=shard.seed,
                        status=STATUS_FAILED,
                        error=payload.get("error", "unknown failure"),
                        attempts=attempts_used[shard.index],
                        elapsed_s=time.monotonic() - started_at[shard.index],
                        worker=worker,
                    )
                )

        def disconnect(conn: _WorkerConn, reason: str) -> None:
            """Drop a worker; its in-flight shard goes back to the queue."""
            if conn not in self._conns:
                return
            self._conns.remove(conn)
            try:
                selector.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
            try:
                conn.sock.close()
            except OSError:
                pass
            assignment = conn.assigned
            conn.assigned = None
            if assignment is not None:
                self._deaths += 1
                shard = assignment["shard"]
                finalize(
                    shard,
                    {
                        "status": STATUS_FAILED,
                        "error": f"worker {conn.label} died: {reason}",
                    },
                    conn.label,
                )

        def send(conn: _WorkerConn, message: Dict[str, Any]) -> bool:
            try:
                conn.sock.sendall(encode_frame(message))
                return True
            except OSError as exc:
                disconnect(conn, f"send failed ({exc})")
                return False

        def handle(conn: _WorkerConn, msg: Dict[str, Any]) -> None:
            conn.last_seen = time.monotonic()
            kind = msg.get("type")
            if kind == "hello":
                conn.name = str(msg.get("worker") or conn.label)
                conn.welcomed = send(
                    conn,
                    {
                        "type": "welcome",
                        "spec": spec.to_dict(),
                        "heartbeat_s": self.heartbeat_s,
                    },
                )
            elif kind == "request":
                conn.idle = True
            elif kind == "beat":
                line = msg.get("line")
                if tailer is not None and isinstance(line, dict):
                    path = heartbeat_path(
                        tailer.directory,
                        int(line.get("shard", -1)),
                        int(line.get("attempt", 1)),
                    )
                    path.parent.mkdir(parents=True, exist_ok=True)
                    with open(path, "a") as handle_:
                        handle_.write(json.dumps(line, sort_keys=True) + "\n")
            elif kind == "result":
                assignment = conn.assigned
                if (
                    assignment is None
                    or assignment["shard"].index != msg.get("shard")
                    or assignment["attempt"] != msg.get("attempt")
                ):
                    return  # stale result from a reassigned shard: ignore
                conn.assigned = None
                conn.executed += 1
                self._per_worker[conn.label] = self._per_worker.get(conn.label, 0) + 1
                finalize(assignment["shard"], msg.get("payload") or {}, conn.label)
            elif kind == "telemetry":
                snapshot = msg.get("snapshot")
                if isinstance(snapshot, dict):
                    conn.telemetry = snapshot
                    self._telemetry[conn.label] = snapshot
            elif kind == "bye":
                conn.assigned = None
                disconnect(conn, "bye")

        try:
            while outstanding:
                for key, _ in selector.select(timeout=POLL_S):
                    if key.data is None:  # the listener
                        try:
                            sock, addr = self._listener.accept()
                        except OSError:
                            continue
                        conn = _WorkerConn(sock, addr)
                        selector.register(sock, selectors.EVENT_READ, conn)
                        self._conns.append(conn)
                        ever_connected = True
                        continue
                    conn = key.data
                    try:
                        data = conn.sock.recv(1 << 16)
                    except OSError as exc:
                        disconnect(conn, f"recv failed ({exc})")
                        continue
                    if not data:
                        disconnect(conn, "connection closed")
                        continue
                    try:
                        messages = conn.decoder.feed(data)
                    except (SweepError, ValueError) as exc:
                        disconnect(conn, f"protocol error ({exc})")
                        continue
                    for msg in messages:
                        handle(conn, msg)
                        if conn not in self._conns:
                            break

                now = time.monotonic()
                # Dead-worker detection: a busy worker must beat.
                for conn in list(self._conns):
                    assignment = conn.assigned
                    if assignment is None:
                        continue
                    if now - conn.last_seen > self.heartbeat_timeout_s:
                        disconnect(
                            conn,
                            f"no heartbeat within {self.heartbeat_timeout_s:.1f}s",
                        )
                        continue
                    if (
                        spec.timeout_s is not None
                        and now - assignment["started"] > spec.timeout_s
                    ):
                        shard = assignment["shard"]
                        conn.assigned = None  # consume before disconnecting
                        finalize(
                            shard,
                            {
                                "status": STATUS_FAILED,
                                "error": (
                                    f"shard timed out after {spec.timeout_s}s "
                                    f"(worker {conn.label} disconnected)"
                                ),
                            },
                            conn.label,
                        )
                        disconnect(conn, "shard timeout")

                # Pull-based dispatch: serve parked requests.
                for conn in list(self._conns):
                    if not pending:
                        break
                    if not (conn.idle and conn.welcomed and conn.assigned is None):
                        continue
                    shard = pending.popleft()
                    started_at.setdefault(shard.index, now)
                    attempts_used[shard.index] += 1
                    attempt = attempts_used[shard.index]
                    if tailer is not None:
                        tailer.track(shard.index, attempt)
                    if not send(
                        conn,
                        {
                            "type": "shard",
                            "shard": shard.to_dict(),
                            "attempt": attempt,
                        },
                    ):
                        # send() disconnected the worker but the shard was
                        # never assigned to it — requeue without burning
                        # the attempt.
                        attempts_used[shard.index] -= 1
                        if tailer is not None:
                            tailer.untrack(shard.index)
                        pending.appendleft(shard)
                        continue
                    conn.idle = False
                    conn.assigned = {
                        "shard": shard,
                        "attempt": attempt,
                        "started": now,
                    }

                if self._conns:
                    last_alive = now
                elif outstanding:
                    window = self.connect_timeout_s
                    since = now - (last_alive if ever_connected else started)
                    if since > window:
                        raise SweepError(
                            f"socket scheduler: no live worker for {since:.1f}s "
                            f"(listening on {self.address[0]}:{self.address[1]}, "
                            f"{len(outstanding)} shard(s) outstanding)"
                        )

                if on_cycle is not None:
                    on_cycle(tailer.poll() if tailer is not None else {})
                elif tailer is not None:
                    tailer.poll()

            self._drain(selector)
        finally:
            try:
                selector.close()
            except Exception:
                pass
            self.close()

    def _drain(self, selector) -> None:
        """Tell every worker the sweep is over; collect telemetry/byes."""
        for conn in list(self._conns):
            conn.draining = True
            try:
                conn.sock.sendall(encode_frame({"type": "drain"}))
            except OSError:
                pass
        deadline = time.monotonic() + self.drain_timeout_s
        while self._conns and time.monotonic() < deadline:
            for key, _ in selector.select(timeout=POLL_S):
                conn = key.data
                if conn is None:
                    continue
                try:
                    data = conn.sock.recv(1 << 16)
                except OSError:
                    data = b""
                if not data:
                    self._drop(selector, conn)
                    continue
                try:
                    messages = conn.decoder.feed(data)
                except (SweepError, ValueError):
                    messages = []
                for msg in messages:
                    if msg.get("type") == "telemetry" and isinstance(
                        msg.get("snapshot"), dict
                    ):
                        self._telemetry[conn.label] = msg["snapshot"]
                    elif msg.get("type") == "bye":
                        self._drop(selector, conn)
                        break

    def _drop(self, selector, conn: _WorkerConn) -> None:
        conn.assigned = None
        if conn in self._conns:
            self._conns.remove(conn)
        try:
            selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    # -- reporting -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "backend": self.name,
            "executed": self._executed,
            "deaths": self._deaths,
            "reassigned": self._reassigned,
            "per_worker": dict(self._per_worker),
        }

    def telemetry_snapshots(self) -> Dict[str, Dict[str, Any]]:
        return dict(self._telemetry)
