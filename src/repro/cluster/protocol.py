"""Length-prefixed JSON framing for the sweep scheduler's socket backend.

One frame = a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON (an object with a ``"type"`` key). Small, explicit
and debuggable with ``nc``/``xxd`` — the protocol moves shard
descriptions and heartbeat lines, not packet data, so framing overhead
is irrelevant.

Message types (``v`` = :data:`PROTOCOL_VERSION` in every frame):

========== ========= ====================================================
type       direction meaning
========== ========= ====================================================
hello      w -> s    worker announces itself (name, pid, code version)
welcome    s -> w    spec + heartbeat interval; worker may now pull
request    w -> s    pull-based work stealing: "give me a shard"
shard      s -> w    one shard assignment (shard dict + attempt number)
beat       w -> s    flight-recorder heartbeat line (PR-5 format + worker)
result     w -> s    terminal outcome payload for an assignment
drain      s -> w    no more work — send telemetry/bye and exit
telemetry  w -> s    worker's metrics snapshot (sent while draining)
bye        w -> s    clean goodbye; the socket closes after this
========== ========= ====================================================

The blocking helpers (:func:`send_frame`/:func:`recv_frame`) serve the
worker; the parent multiplexes many workers with a :class:`FrameDecoder`
fed from non-blocking reads.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, List, Optional

from ..errors import SweepError

#: Protocol version stamped into every frame.
PROTOCOL_VERSION = 1
#: Refuse frames larger than this (a corrupt length prefix otherwise
#: asks us to allocate gigabytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


def encode_frame(message: Dict[str, Any]) -> bytes:
    """One message as wire bytes (length prefix + JSON)."""
    message.setdefault("v", PROTOCOL_VERSION)
    payload = json.dumps(message, sort_keys=True).encode()
    if len(payload) > MAX_FRAME_BYTES:
        raise SweepError(f"frame of {len(payload)} bytes exceeds the protocol limit")
    return _LEN.pack(len(payload)) + payload


def send_frame(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Send one message on a blocking socket."""
    sock.sendall(encode_frame(message))


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Receive one message from a blocking socket; None on clean EOF."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise SweepError(f"incoming frame of {length} bytes exceeds the protocol limit")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise SweepError("connection closed mid-frame")
    return json.loads(payload.decode())


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Exactly ``count`` bytes, or None on EOF at a frame boundary.

    EOF *inside* a frame also returns None when nothing was read yet;
    a partial read followed by EOF raises — the stream is torn.
    """
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None
            raise SweepError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class FrameDecoder:
    """Incremental decoder for the parent's non-blocking reads.

    Feed it whatever ``recv`` returned; it yields every complete
    message and buffers the partial tail.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        self._buffer.extend(data)
        messages: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < _LEN.size:
                return messages
            (length,) = _LEN.unpack(self._buffer[: _LEN.size])
            if length > MAX_FRAME_BYTES:
                raise SweepError(
                    f"incoming frame of {length} bytes exceeds the protocol limit"
                )
            end = _LEN.size + length
            if len(self._buffer) < end:
                return messages
            payload = bytes(self._buffer[_LEN.size : end])
            del self._buffer[:end]
            messages.append(json.loads(payload.decode()))
