"""Sweep distribution: content-addressed result caching + remote workers.

``repro.cluster`` turns the sharded sweep runner into a system that
scales past one process and one lifetime:

* **never compute the same shard twice** — :class:`ResultStore` is a
  shared on-disk content-addressed store of shard results keyed by
  :func:`shard_cache_key` (scenario + shard params + seed + code
  version). Overlapping sweeps execute only their new shards; a warm
  rerun executes none. Cache-served results are byte-identical to a
  cold run by construction.
* **run shards wherever there are cores** — the :class:`Scheduler`
  interface abstracts the runner's execution topology:
  :class:`LocalScheduler` is the classic forked pool,
  :class:`SocketScheduler` dispatches to remote ``osnt-worker``
  processes over TCP with pull-based work stealing, heartbeat-timeout
  dead-worker reassignment and graceful drain.
* **observe the whole fleet** — remote heartbeats feed the existing
  flight recorder, and :func:`workers_openmetrics` folds per-worker
  telemetry snapshots into one OpenMetrics exposition with a
  ``worker`` label.

The invariant everything here preserves: a merged sweep report is
**bit-identical** across {cold, warm cache} x {local, socket} x any
worker count x any kill/resume/reassignment history.

    from repro.cluster import ResultStore, SocketScheduler
    from repro.runner import ExperimentSpec, SweepRunner

    spec = ExperimentSpec(name="fleet", scenario="line_rate",
                          axes={"frame_size": [64, 512, 1518]})
    scheduler = SocketScheduler(spawn_workers=4)
    report = SweepRunner(spec, scheduler=scheduler,
                         cache_dir="~/.cache/osnt-results").run()
"""

from .aggregate import WORKER_PREFIX, workers_openmetrics
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
    recv_frame,
    send_frame,
)
from .scheduler import LocalScheduler, Scheduler, SocketScheduler
from .store import ResultStore, StoreStats, parse_age_s, result_digest, shard_cache_key
from .version import code_version, source_digest
from .worker import serve as worker_serve

__all__ = [
    "FrameDecoder",
    "LocalScheduler",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ResultStore",
    "Scheduler",
    "SocketScheduler",
    "StoreStats",
    "WORKER_PREFIX",
    "code_version",
    "encode_frame",
    "parse_age_s",
    "recv_frame",
    "result_digest",
    "send_frame",
    "shard_cache_key",
    "source_digest",
    "worker_serve",
    "workers_openmetrics",
]
