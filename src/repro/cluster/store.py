"""Content-addressed result store: never run the same shard twice.

At fleet scale most submitted experiments are near-duplicates — a
sweep re-run with one more axis value, a campaign resumed on another
host, two users measuring the same operating point. The store turns
every completed shard into a shared, verifiable artifact keyed by
*what was computed*, not where or when:

    key = SHA-256(scenario, collect, imports, shard params, shard seed,
                  code version)

Everything that can change a shard's result is in the key; nothing
else is. Sweep-level bookkeeping (campaign name, axis layout, retry
budget, timeouts) is deliberately excluded, so two **overlapping**
sweeps share cache entries for their common shards. The code version
(:func:`repro.cluster.code_version`) keys out results produced by an
older source tree.

Layout of a store directory::

    store/
      index.jsonl              # one append-only line per put (advisory)
      objects/ab/ab12...ef.json  # the entry, fan-out by key prefix

Entries are written atomically (temp file + fsync + rename) and carry
an internal SHA-256 of their canonical result JSON; :meth:`ResultStore.get`
re-verifies it and treats any corrupt or truncated entry as a miss
(quarantining it), so a crashed writer can never poison a sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..errors import SweepError
from ..runner.spec import ExperimentSpec, Shard, canonical_json
from .version import code_version

_OBJECTS = "objects"
_INDEX = "index.jsonl"
#: Store format version, embedded in every entry.
STORE_VERSION = 1

_AGE_RE = re.compile(r"^\s*([0-9]+(?:\.[0-9]+)?)\s*(s|m|h|d|w)?\s*$")
_AGE_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0, "w": 604800.0}


def parse_age_s(text: Union[str, int, float]) -> float:
    """A human age ('90s', '15m', '12h', '7d', '2w') in seconds."""
    if isinstance(text, (int, float)):
        return float(text)
    match = _AGE_RE.match(text)
    if match is None:
        raise SweepError(
            f"bad age {text!r} (expected e.g. '90s', '15m', '12h', '7d')"
        )
    return float(match.group(1)) * _AGE_UNITS[match.group(2) or "s"]


def result_digest(result: Dict[str, Any]) -> str:
    """SHA-256 of the canonical JSON of a shard result."""
    return hashlib.sha256(canonical_json(result).encode()).hexdigest()


def shard_cache_key(
    spec: ExperimentSpec, shard: Shard, code: Optional[str] = None
) -> str:
    """The content address of one shard's result (64 hex chars).

    Covers exactly what determines the result: the scenario and its
    collection plan, the helper imports, the shard's full expanded
    params and derived seed, and the code version. Campaign name,
    axis layout and execution policy are excluded so overlapping
    sweeps hit each other's entries.
    """
    material = canonical_json(
        {
            "scenario": spec.scenario,
            "collect": spec.collect,
            "imports": spec.imports,
            "params": shard.params,
            "seed": shard.seed,
            "code": code if code is not None else code_version(),
        }
    )
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass
class StoreStats:
    """What :meth:`ResultStore.stats` found on disk."""

    entries: int = 0
    total_bytes: int = 0
    oldest_s: Optional[float] = None
    newest_s: Optional[float] = None
    by_scenario: Dict[str, int] = field(default_factory=dict)
    corrupt: int = 0

    def summary(self) -> str:
        """Human-readable multi-line rendering (for ``cache stats``)."""
        lines = [
            f"entries:     {self.entries}",
            f"total bytes: {self.total_bytes}",
        ]
        if self.oldest_s is not None:
            lines.append(f"oldest:      {self.oldest_s:.0f}s ago")
        if self.newest_s is not None:
            lines.append(f"newest:      {self.newest_s:.0f}s ago")
        for scenario in sorted(self.by_scenario):
            lines.append(f"  {scenario}: {self.by_scenario[scenario]}")
        if self.corrupt:
            lines.append(f"corrupt:     {self.corrupt} (ignored)")
        return "\n".join(lines)


class ResultStore:
    """A shared on-disk content-addressed store of shard results.

    Safe for concurrent writers on one filesystem: every entry is
    written to a temp file, fsynced and renamed into place, and a
    duplicate put is a no-op (first writer wins — both writers hold
    the same bytes by construction).
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.objects = self.directory / _OBJECTS
        self.index_path = self.directory / _INDEX
        self.objects.mkdir(parents=True, exist_ok=True)
        #: Process-local counters (operational; reset per instance).
        self.hits = 0
        self.misses = 0

    # -- addressing ----------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        if len(key) != 64 or any(c not in "0123456789abcdef" for c in key):
            raise SweepError(f"bad store key {key!r} (want 64 hex chars)")
        return self.objects / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._entry_path(key).exists()

    # -- write ---------------------------------------------------------------

    def put(
        self,
        key: str,
        result: Dict[str, Any],
        scenario: str = "",
        code: Optional[str] = None,
    ) -> bool:
        """Store one shard result under ``key``; False if already present."""
        path = self._entry_path(key)
        if path.exists():
            return False
        entry = {
            "v": STORE_VERSION,
            "key": key,
            "digest": result_digest(result),
            "scenario": scenario,
            "code": code if code is not None else code_version(),
            "created_s": time.time(),
            "result": result,
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{key}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(entry, handle, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        self._index_append(
            {
                "key": key,
                "scenario": scenario,
                "created_s": entry["created_s"],
                "bytes": path.stat().st_size,
            }
        )
        return True

    def _index_append(self, line: Dict[str, Any]) -> None:
        # O_APPEND single-line writes are atomic enough for an advisory
        # index; gc() rewrites it from the objects (the ground truth).
        with open(self.index_path, "a") as handle:
            handle.write(json.dumps(line, sort_keys=True) + "\n")

    # -- read ----------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored result for ``key``, or None (miss/corrupt entry).

        Integrity is verified on every read: the entry's recorded
        digest must match a recomputation over the result it carries.
        A mismatch (torn write, bit rot, hand-edited file) quarantines
        the entry by renaming it to ``*.corrupt`` and reports a miss.
        """
        path = self._entry_path(key)
        try:
            entry = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, OSError):
            self._quarantine(path)
            self.misses += 1
            return None
        result = entry.get("result")
        if (
            not isinstance(result, dict)
            or entry.get("key") != key
            or entry.get("digest") != result_digest(result)
        ):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _quarantine(self, path: Path) -> None:
        try:
            path.rename(path.with_suffix(".corrupt"))
        except OSError:
            pass

    # -- maintenance ---------------------------------------------------------

    def _iter_entries(self):
        for path in sorted(self.objects.glob("??/*.json")):
            yield path

    def stats(self) -> StoreStats:
        """Scan the objects tree (not the advisory index) and summarize."""
        stats = StoreStats()
        now = time.time()
        for path in self._iter_entries():
            try:
                entry = json.loads(path.read_text())
                created = float(entry["created_s"])
                scenario = str(entry.get("scenario", ""))
            except (json.JSONDecodeError, KeyError, ValueError, OSError):
                stats.corrupt += 1
                continue
            stats.entries += 1
            stats.total_bytes += path.stat().st_size
            age = now - created
            if stats.oldest_s is None or age > stats.oldest_s:
                stats.oldest_s = age
            if stats.newest_s is None or age < stats.newest_s:
                stats.newest_s = age
            stats.by_scenario[scenario] = stats.by_scenario.get(scenario, 0) + 1
        return stats

    def gc(
        self, older_than_s: Union[str, int, float], dry_run: bool = False
    ) -> List[str]:
        """Delete entries older than the given age; returns removed keys.

        Corrupt/quarantined entries are always removed. The advisory
        index is rewritten from the surviving objects afterwards.
        """
        cutoff = time.time() - parse_age_s(older_than_s)
        removed: List[str] = []
        survivors: List[Dict[str, Any]] = []
        for path in self._iter_entries():
            try:
                entry = json.loads(path.read_text())
                created = float(entry["created_s"])
            except (json.JSONDecodeError, KeyError, ValueError, OSError):
                removed.append(path.stem)
                if not dry_run:
                    path.unlink(missing_ok=True)
                continue
            if created < cutoff:
                removed.append(entry.get("key", path.stem))
                if not dry_run:
                    path.unlink(missing_ok=True)
            else:
                survivors.append(
                    {
                        "key": entry.get("key", path.stem),
                        "scenario": entry.get("scenario", ""),
                        "created_s": created,
                        "bytes": path.stat().st_size,
                    }
                )
        if not dry_run:
            for stale in self.objects.glob("??/*.corrupt"):
                stale.unlink(missing_ok=True)
            tmp = self.directory / f".{_INDEX}.tmp.{os.getpid()}"
            with open(tmp, "w") as handle:
                for line in survivors:
                    handle.write(json.dumps(line, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.index_path)
        return removed
