"""``osnt-worker`` — a remote shard-execution process.

A worker is the dumbest possible cluster member: it connects to a
:class:`~repro.cluster.SocketScheduler`, introduces itself, and then
pulls — request a shard, run it with the same
:func:`repro.runner.run_shard` the local pool uses, stream
flight-recorder heartbeats back over the socket while it runs, report
the result, request the next. Work stealing therefore needs no
balancer: a fast host finishes sooner and simply asks again.

The worker keeps no sweep state. Determinism lives entirely in
``(spec, shard)`` — the scheduler may hand the same shard to three
different workers across retries and get byte-identical results. On
``drain`` it reports a telemetry snapshot (operational counters plus
the numeric fold of every shard telemetry it produced) and exits; if
the scheduler vanishes mid-run it exits on the dead socket instead of
lingering.

Run one with::

    osnt-worker --connect HOST:PORT [--name NAME] [--max-shards N]
    python -m repro.cluster.worker --connect HOST:PORT
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time
import traceback
from typing import Any, Dict, List, Optional

from ..errors import SweepError
from ..obs.flight import HeartbeatWriter
from ..runner.report import STATUS_FAILED, STATUS_OK, _merge_numeric
from ..runner.spec import ExperimentSpec, Shard
from .protocol import recv_frame, send_frame
from .version import code_version


def _parse_endpoint(text: str) -> tuple:
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise SweepError(f"bad endpoint {text!r} (want HOST:PORT)")
    try:
        return host, int(port)
    except ValueError:
        raise SweepError(f"bad port in endpoint {text!r}") from None


class _Locked:
    """Serializes frame sends between the main and heartbeat threads."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.lock = threading.Lock()

    def send(self, message: Dict[str, Any]) -> None:
        with self.lock:
            send_frame(self.sock, message)

    def send_quiet(self, message: Dict[str, Any]) -> None:
        try:
            self.send(message)
        except OSError:
            pass  # the scheduler is gone; the main loop will notice


def serve(
    host: str,
    port: int,
    name: Optional[str] = None,
    max_shards: Optional[int] = None,
    connect_timeout_s: float = 30.0,
) -> int:
    """Connect, pull shards until drained, return a process exit code."""
    from ..runner.execution import run_shard

    worker_name = name or f"{socket.gethostname()}-{os.getpid()}"
    sock = socket.create_connection((host, port), timeout=connect_timeout_s)
    sock.settimeout(None)
    channel = _Locked(sock)
    channel.send(
        {
            "type": "hello",
            "worker": worker_name,
            "pid": os.getpid(),
            "code": code_version(),
        }
    )
    welcome = recv_frame(sock)
    if welcome is None or welcome.get("type") != "welcome":
        raise SweepError(f"expected a welcome frame, got {welcome!r}")
    spec = ExperimentSpec.from_dict(welcome["spec"])
    heartbeat_s = float(welcome.get("heartbeat_s", 0.25))
    started = time.monotonic()
    counters = {"shards_ok": 0, "shards_failed": 0, "beats": 0}
    folded_telemetry: Dict[str, Any] = {}

    def snapshot() -> Dict[str, Any]:
        merged: Dict[str, Any] = dict(folded_telemetry)
        merged.update(counters)
        merged["wall_s"] = round(time.monotonic() - started, 3)
        return merged

    channel.send({"type": "request"})
    try:
        while True:
            message = recv_frame(sock)
            if message is None:
                return 0  # scheduler went away cleanly
            kind = message.get("type")
            if kind == "drain":
                channel.send_quiet({"type": "telemetry", "snapshot": snapshot()})
                channel.send_quiet({"type": "bye"})
                return 0
            if kind != "shard":
                continue
            body = message["shard"]
            shard = Shard(
                index=int(body["index"]),
                params=body["params"],
                seed=int(body["seed"]),
                repeat=int(body.get("repeat", 0)),
            )
            attempt = int(message.get("attempt", 1))

            def beat_sink(line: Dict[str, Any]) -> None:
                counters["beats"] += 1
                line = dict(line)
                line["worker"] = worker_name
                channel.send_quiet({"type": "beat", "line": line})

            writer = HeartbeatWriter(
                None,
                shard.index,
                attempt=attempt,
                interval_s=heartbeat_s,
                sink=beat_sink,
            ).start()
            try:
                result = run_shard(spec, shard)
                payload: Dict[str, Any] = {"status": STATUS_OK, "result": result}
                writer.stop("done")
                counters["shards_ok"] += 1
                telemetry = result.get("telemetry")
                if isinstance(telemetry, dict):
                    _merge_numeric(folded_telemetry, telemetry)
            except BaseException as exc:  # noqa: BLE001 — report, keep serving
                payload = {
                    "status": STATUS_FAILED,
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                }
                writer.stop("failed")
                counters["shards_failed"] += 1
            channel.send(
                {
                    "type": "result",
                    "shard": shard.index,
                    "attempt": attempt,
                    "payload": payload,
                }
            )
            executed = counters["shards_ok"] + counters["shards_failed"]
            if max_shards is not None and executed >= max_shards:
                channel.send_quiet({"type": "telemetry", "snapshot": snapshot()})
                channel.send_quiet({"type": "bye"})
                return 0
            channel.send({"type": "request"})
    finally:
        try:
            sock.close()
        except OSError:
            pass


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="osnt-worker",
        description="remote shard-execution worker for osnt-sweep socket scheduling",
    )
    parser.add_argument(
        "--connect", metavar="HOST:PORT", required=True,
        help="scheduler endpoint to pull shards from",
    )
    parser.add_argument("--name", default=None, help="worker name (default host-pid)")
    parser.add_argument(
        "--max-shards", type=int, default=None,
        help="exit after executing N shards (default: serve until drained)",
    )
    args = parser.parse_args(argv)
    try:
        host, port = _parse_endpoint(args.connect)
        return serve(host, port, name=args.name, max_shards=args.max_shards)
    except (SweepError, OSError) as exc:
        print(f"osnt-worker: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover — exercised via subprocess
    sys.exit(main())
