"""Code-version identification for caches and checkpoints.

A shard result is only reusable if the code that produced it still
behaves the same. :func:`code_version` condenses "which code is this"
into a short provenance string — the package version plus a content
hash of every ``.py`` file under :mod:`repro` — that the result store
mixes into cache keys and the runner writes into ``spec.json``, so a
stale cache or checkpoint from an older tree is *detected* instead of
silently reused.

The hash covers file *contents* (sorted by package-relative path), not
mtimes or the working directory, so two identical checkouts agree and
any edit to the source tree changes the version.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional

#: Hex digits of the content digest kept in the version string.
_DIGEST_CHARS = 10

_cached: Optional[str] = None


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def source_digest(root: Optional[Path] = None) -> str:
    """Content hash (first ``_DIGEST_CHARS`` hex) of the package source.

    SHA-256 over every ``.py`` file under ``root`` (default: the
    installed :mod:`repro` package), each framed by its sorted
    package-relative path and size so renames and boundary shifts
    change the digest.
    """
    base = root if root is not None else _package_root()
    digest = hashlib.sha256()
    for path in sorted(base.rglob("*.py")):
        data = path.read_bytes()
        rel = path.relative_to(base).as_posix()
        digest.update(f"{rel}\x00{len(data)}\x00".encode())
        digest.update(data)
    return digest.hexdigest()[:_DIGEST_CHARS]


def code_version(refresh: bool = False) -> str:
    """``<package version>+<source digest>``, cached per process.

    >>> code_version()           # doctest: +SKIP
    '1.0.0+a3f29c01de'
    """
    global _cached
    if _cached is None or refresh:
        import repro

        release = getattr(repro, "__version__", "0")
        _cached = f"{release}+{source_digest()}"
    return _cached
