"""Fold per-worker telemetry snapshots into one OpenMetrics exposition.

Each remote worker reports a metrics snapshot while draining (its
operational counters plus the numeric fold of the shard telemetry it
produced). :func:`workers_openmetrics` merges those per-worker dicts
into a single valid OpenMetrics document in which every sample carries
a ``worker`` label — one scrape shows the whole fleet, per host:

    osnt_worker_shards_ok{worker="spawn-0"} 5
    osnt_worker_shards_ok{worker="spawn-1"} 3

Families are grouped (one ``# TYPE`` line each, all worker samples
beneath it), so the output passes the strict
:func:`repro.telemetry.parse_openmetrics` validator. Histogram
summaries (sub-dicts with ``count``/``mean``/``p50``...) become
``summary`` families with ``quantile`` + ``worker`` labels.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..telemetry.openmetrics import (
    SUMMARY_QUANTILES,
    _format_value,
    _is_summary_dict,
    metric_name,
)

#: Default metric-name prefix for worker snapshots.
WORKER_PREFIX = "osnt_worker"


def _escape(value: str) -> str:
    return value.replace("\\", "_").replace('"', "_").replace("\n", "_")


def workers_openmetrics(
    snapshots: Dict[str, Dict[str, Any]], prefix: str = WORKER_PREFIX
) -> str:
    """One OpenMetrics document over ``{worker_name: snapshot}`` dicts.

    Raises :class:`ValueError` when two distinct snapshot keys sanitize
    to the same metric name (the exposition would be ambiguous).
    """
    by_metric: Dict[str, Dict[str, Any]] = {}
    origin: Dict[str, str] = {}
    for worker in sorted(snapshots):
        snapshot = snapshots[worker] or {}
        for key in sorted(snapshot):
            value = snapshot[key]
            is_summary = _is_summary_dict(value)
            if not is_summary and not isinstance(value, (int, float)):
                continue  # non-numeric diagnostic values are not exported
            name = metric_name(key, prefix)
            recorded = origin.get(name)
            if recorded is not None and recorded != key:
                raise ValueError(
                    f"snapshot keys {recorded!r} and {key!r} both sanitize to "
                    f"OpenMetrics name {name!r}"
                )
            origin[name] = key
            family = by_metric.setdefault(
                name, {"type": "summary" if is_summary else "gauge", "samples": {}}
            )
            family["samples"][worker] = value
    lines: List[str] = []
    for name in sorted(by_metric):
        family = by_metric[name]
        lines.append(f"# TYPE {name} {family['type']}")
        if family["type"] == "gauge":
            for worker, value in family["samples"].items():
                lines.append(
                    f'{name}{{worker="{_escape(worker)}"}} {_format_value(value)}'
                )
        else:
            for worker, value in family["samples"].items():
                label = f'worker="{_escape(worker)}"'
                for key, quantile in SUMMARY_QUANTILES:
                    sample = value.get(key)
                    if isinstance(sample, (int, float)) and not isinstance(
                        sample, bool
                    ):
                        lines.append(
                            f'{name}{{quantile="{quantile}",{label}}} '
                            f"{_format_value(sample)}"
                        )
                count = value.get("count", 0)
                mean = value.get("mean")
                total = mean * count if isinstance(mean, (int, float)) and count else 0
                lines.append(f"{name}_count{{{label}}} {_format_value(count)}")
                lines.append(f"{name}_sum{{{label}}} {_format_value(total)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"
