"""OSNT reproduction: open-source network tester on a simulated NetFPGA-10G.

Reproduces "Enabling Performance Evaluation Beyond 10 Gbps"
(Antichi, Rotsos, Moore - SIGCOMM 2015): the OSNT traffic generator and
monitor, their software control APIs, and the OFLOPS-turbo OpenFlow
switch evaluation framework - all running on a deterministic
discrete-event model of the NetFPGA-10G hardware.

Typical entry points:

* :class:`repro.osnt.OSNTDevice` - a four-port tester card.
* :class:`repro.testbed.Testbed` - tester + device-under-test wiring.
* :mod:`repro.oflops` - OpenFlow switch measurement modules.
"""

__version__ = "1.0.0"

# Convenience re-exports of the primary entry points.
from .sim import Simulator  # noqa: E402
from .osnt import OSNT  # noqa: E402
from .hw import connect  # noqa: E402

__all__ = ["OSNT", "Simulator", "__version__", "connect"]
