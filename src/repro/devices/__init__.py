"""Devices under test: legacy switch, OpenFlow switch, hosts, SNMP."""

from .flow_table import FlowEntry, FlowTable, OverlapError, TableFullError
from .host import SimpleHost
from .legacy_switch import LegacySwitch, MacTable
from .openflow_switch import OpenFlowSwitch, PROFILES, SwitchProfile
from .router import Fib, Route, Router
from .snmp_agent import (
    OID_IF_IN_OCTETS,
    OID_IF_IN_UCAST,
    OID_IF_OUT_OCTETS,
    OID_IF_OUT_UCAST,
    OID_SYS_DESCR,
    SnmpAgent,
)

__all__ = [
    "FlowEntry",
    "FlowTable",
    "LegacySwitch",
    "MacTable",
    "OID_IF_IN_OCTETS",
    "OID_IF_IN_UCAST",
    "OID_IF_OUT_OCTETS",
    "OID_IF_OUT_UCAST",
    "OID_SYS_DESCR",
    "Fib",
    "OpenFlowSwitch",
    "PROFILES",
    "OverlapError",
    "Route",
    "Router",
    "SimpleHost",
    "SnmpAgent",
    "SwitchProfile",
    "TableFullError",
]
