"""A minimal SNMP agent — OFLOPS-turbo's third measurement channel.

Real OFLOPS polls switch interface counters (IF-MIB ifTable) over SNMP
to cross-check data-plane observations. The model exposes the same
counters (in/out packets and octets per interface) backed directly by
the switch's MAC statistics, served over a request/response channel with
management-network latency and agent processing delay.

OIDs use the standard dotted string form, e.g.
``1.3.6.1.2.1.2.2.1.11.2`` = ifInUcastPkts of interface 2 (1-based).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..errors import SnmpError
from ..hw.port import EthernetPort
from ..sim import Simulator
from ..units import ms, us

OID_IF_IN_OCTETS = "1.3.6.1.2.1.2.2.1.10"
OID_IF_IN_UCAST = "1.3.6.1.2.1.2.2.1.11"
OID_IF_OUT_OCTETS = "1.3.6.1.2.1.2.2.1.16"
OID_IF_OUT_UCAST = "1.3.6.1.2.1.2.2.1.17"
OID_SYS_DESCR = "1.3.6.1.2.1.1.1.0"


class SnmpAgent:
    """Serves counter OIDs for a set of device ports."""

    def __init__(
        self,
        sim: Simulator,
        ports: Sequence[EthernetPort],
        sys_descr: str = "repro switch",
        request_latency_ps: int = us(200),
        processing_ps: int = ms(1),
    ) -> None:
        self.sim = sim
        self.ports = list(ports)
        self.sys_descr = sys_descr
        self.request_latency_ps = request_latency_ps
        self.processing_ps = processing_ps
        self.requests_served = 0

    # -- synchronous value lookup (no timing) -------------------------------

    def read(self, oid: str):
        """Immediate value of an OID (agent-side view)."""
        if oid == OID_SYS_DESCR:
            return self.sys_descr
        for prefix, reader in self._counter_readers().items():
            if oid.startswith(prefix + "."):
                index = oid[len(prefix) + 1 :]
                if not index.isdigit():
                    raise SnmpError(f"bad interface index in OID {oid}")
                port_number = int(index)
                if not 1 <= port_number <= len(self.ports):
                    raise SnmpError(f"no such interface {port_number}")
                return reader(self.ports[port_number - 1])
        raise SnmpError(f"no such OID {oid}")

    def _counter_readers(self) -> Dict[str, Callable[[EthernetPort], int]]:
        return {
            OID_IF_IN_OCTETS: lambda p: p.rx.stats.bytes,
            OID_IF_IN_UCAST: lambda p: p.rx.stats.packets,
            OID_IF_OUT_OCTETS: lambda p: p.tx.stats.bytes,
            OID_IF_OUT_UCAST: lambda p: p.tx.stats.packets,
        }

    # -- timed request/response ---------------------------------------------

    def get(self, oid: str, callback: Callable[[str, object], None]) -> None:
        """Async GET: callback(oid, value) after network + agent delays.

        The value is sampled when the agent *processes* the request (one
        network latency plus the processing delay after the call), not
        when the response arrives — just like a real polled counter.
        """
        self.sim.call_after(
            self.request_latency_ps + self.processing_ps,
            self._serve,
            oid,
            callback,
        )

    def _serve(self, oid: str, callback: Callable[[str, object], None]) -> None:
        try:
            value = self.read(oid)
        except SnmpError:
            value = None
        self.requests_served += 1
        self.sim.call_after(self.request_latency_ps, callback, oid, value)

    def get_many(
        self, oids: Sequence[str], callback: Callable[[Dict[str, object]], None]
    ) -> None:
        """Async GET of several OIDs in one request (like GetBulk)."""
        results: Dict[str, object] = {}
        remaining = len(oids)
        if remaining == 0:
            self.sim.call_after(0, callback, results)
            return

        def collect(oid: str, value: object) -> None:
            nonlocal remaining
            results[oid] = value
            remaining -= 1
            if remaining == 0:
                callback(results)

        for oid in oids:
            self.get(oid, collect)
