"""An IPv4 router model — a second class of DUT for the tester.

Store-and-forward router: longest-prefix-match FIB lookup (binary trie,
like hardware LPM pipelines), TTL decrement with incremental checksum
update, MAC rewrite on egress, and ICMP Time Exceeded generation. The
lookup latency can scale with the matched prefix depth, so a tester
can observe FIB-dependent forwarding latency (experiment E9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ConfigError
from ..hw.port import EthernetPort
from ..net.checksum import internet_checksum
from ..net.ethernet import ETHERTYPE_IPV4
from ..net.fields import ipv4_to_int, mac_to_bytes, u16
from ..net.ipv4 import Ipv4Header, PROTO_ICMP
from ..net.packet import Packet
from ..net.parser import decode
from ..sim import Simulator
from ..units import TEN_GBPS, ns

ICMP_TIME_EXCEEDED = 11


@dataclass
class Route:
    """One FIB entry: prefix → (egress port, next-hop MAC)."""

    prefix: str
    prefix_len: int
    out_port: int
    next_hop_mac: str

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise ConfigError(f"bad prefix length {self.prefix_len}")


class _TrieNode:
    __slots__ = ("children", "route")

    def __init__(self) -> None:
        self.children: List[Optional["_TrieNode"]] = [None, None]
        self.route: Optional[Route] = None


class Fib:
    """Binary-trie longest-prefix-match table."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self.size = 0

    def add(self, route: Route) -> None:
        node = self._root
        address = ipv4_to_int(route.prefix)
        for depth in range(route.prefix_len):
            bit = (address >> (31 - depth)) & 1
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        if node.route is None:
            self.size += 1
        node.route = route

    def remove(self, prefix: str, prefix_len: int) -> bool:
        node = self._root
        address = ipv4_to_int(prefix)
        for depth in range(prefix_len):
            bit = (address >> (31 - depth)) & 1
            node = node.children[bit]
            if node is None:
                return False
        if node.route is None:
            return False
        node.route = None
        self.size -= 1
        return True

    def lookup(self, address: str) -> Tuple[Optional[Route], int]:
        """Best route plus the trie depth walked (for latency models)."""
        value = ipv4_to_int(address)
        node = self._root
        best = node.route
        depth = 0
        walked = 0
        while True:
            bit = (value >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            walked += 1
            node = child
            if node.route is not None:
                best = node.route
            depth += 1
            if depth == 32:
                break
        return best, walked


class Router:
    """Store-and-forward IPv4 router with a trie FIB."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "rtr",
        num_ports: int = 4,
        port_rate_bps: float = TEN_GBPS,
        base_latency_ps: int = ns(900),
        per_trie_level_ps: int = ns(12),  # one memory access per level
        interface_mac_base: str = "02:0f:00:00:00:00",
        send_ttl_exceeded: bool = True,
    ) -> None:
        if num_ports < 1:
            raise ConfigError("router needs at least one port")
        self.sim = sim
        self.name = name
        self.base_latency_ps = base_latency_ps
        self.per_trie_level_ps = per_trie_level_ps
        self.send_ttl_exceeded = send_ttl_exceeded
        self.fib = Fib()
        base = int.from_bytes(mac_to_bytes(interface_mac_base), "big")
        self.interface_macs = [
            ":".join(f"{b:02x}" for b in (base + index + 1).to_bytes(6, "big"))
            for index in range(num_ports)
        ]
        self.interface_ips = [f"10.255.{index}.1" for index in range(num_ports)]
        self.ports: List[EthernetPort] = []
        for index in range(num_ports):
            port = EthernetPort(sim, f"{name}.p{index}", rate_bps=port_rate_bps)
            port.add_rx_sink(self._make_rx_handler(index))
            self.ports.append(port)
        # Counters.
        self.forwarded = 0
        self.no_route = 0
        self.ttl_expired = 0
        self.non_ip_dropped = 0
        self.egress_drops = 0

    def port(self, index: int) -> EthernetPort:
        return self.ports[index]

    def add_route(self, prefix_cidr: str, out_port: int, next_hop_mac: str) -> None:
        """Install a route given ``"a.b.c.d/len"`` CIDR notation."""
        prefix, __, length = prefix_cidr.partition("/")
        self.fib.add(
            Route(
                prefix=prefix,
                prefix_len=int(length) if length else 32,
                out_port=out_port,
                next_hop_mac=next_hop_mac,
            )
        )

    def _make_rx_handler(self, port_index: int):
        def handler(packet: Packet) -> None:
            self._ingress(packet, port_index)

        return handler

    def _ingress(self, packet: Packet, in_port: int) -> None:
        decoded = decode(packet.data)
        if decoded.ipv4 is None:
            self.non_ip_dropped += 1
            return
        route, levels = self.fib.lookup(decoded.ipv4.dst)
        latency = self.base_latency_ps + levels * self.per_trie_level_ps
        self.sim.call_after(latency, self._forward, packet, decoded, route, in_port)

    def _forward(self, packet: Packet, decoded, route: Optional[Route], in_port: int) -> None:
        if route is None:
            self.no_route += 1
            return
        header_offset = 14
        ttl = decoded.ipv4.ttl
        if ttl <= 1:
            self.ttl_expired += 1
            if self.send_ttl_exceeded:
                self._send_time_exceeded(packet, decoded, in_port)
            return
        data = bytearray(packet.data)
        # Rewrite MACs for the next hop.
        data[0:6] = mac_to_bytes(route.next_hop_mac)
        data[6:12] = mac_to_bytes(self.interface_macs[route.out_port])
        # Decrement TTL; update the header checksum incrementally
        # (RFC 1624: HC' = HC + 0x0100 with end-around carry).
        data[header_offset + 8] = ttl - 1
        checksum = int.from_bytes(
            data[header_offset + 10 : header_offset + 12], "big"
        )
        checksum += 0x0100
        checksum = (checksum & 0xFFFF) + (checksum >> 16)
        data[header_offset + 10 : header_offset + 12] = u16(checksum)
        if not self.ports[route.out_port].send(Packet(bytes(data))):
            self.egress_drops += 1
            return
        self.forwarded += 1

    def _send_time_exceeded(self, packet: Packet, decoded, in_port: int) -> None:
        """ICMP type 11 back towards the source, per RFC 792."""
        original = packet.data
        ip_offset = 14
        # The ICMP body quotes the offending IP header + first 8 bytes.
        inner = original[ip_offset : ip_offset + decoded.ipv4.header_length + 8]
        body = b"\x00" * 4 + inner  # 4 unused bytes, then the quote
        checksum = internet_checksum(bytes([ICMP_TIME_EXCEEDED, 0, 0, 0]) + body)
        message = bytes([ICMP_TIME_EXCEEDED, 0]) + u16(checksum) + body
        ip = Ipv4Header(
            src=self.interface_ips[in_port],
            dst=decoded.ipv4.src,
            protocol=PROTO_ICMP,
            ttl=64,
        )
        network = ip.pack(len(message)) + message
        frame = (
            mac_to_bytes(decoded.ethernet.src)
            + mac_to_bytes(self.interface_macs[in_port])
            + u16(ETHERTYPE_IPV4)
            + network
        )
        self.ports[in_port].send(Packet(frame))
