"""The OpenFlow switch's flow table.

Lookup follows the 1.0 spec: the highest-priority matching entry wins
(exact-match entries effectively sort above wildcards because they are
installed with distinct priorities by controllers; here priority alone
decides, spec-style). Modification commands implement the ADD / MODIFY /
MODIFY_STRICT / DELETE / DELETE_STRICT semantics, including overlap
checking and capacity limits — a full table is how OFLOPS provokes
``OFPFMFC_ALL_TABLES_FULL`` errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import OpenFlowError
from ..openflow import constants as ofp
from ..openflow.actions import Action
from ..openflow.match import Match


@dataclass
class FlowEntry:
    match: Match
    priority: int = 0x8000
    actions: List[Action] = field(default_factory=list)
    cookie: int = 0
    idle_timeout: int = 0
    hard_timeout: int = 0
    flags: int = 0
    installed_at_ps: int = 0
    last_used_ps: int = 0
    packet_count: int = 0
    byte_count: int = 0

    def note_hit(self, now_ps: int, nbytes: int) -> None:
        self.packet_count += 1
        self.byte_count += nbytes
        self.last_used_ps = now_ps


class TableFullError(OpenFlowError):
    """Raised when an ADD hits the capacity limit."""


class OverlapError(OpenFlowError):
    """Raised when CHECK_OVERLAP finds an overlapping same-priority entry."""


class FlowTable:
    """One flow table with bounded capacity."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise OpenFlowError("flow table capacity must be positive")
        self.capacity = capacity
        self.entries: List[FlowEntry] = []
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        #: Bumped on every mutation (add/modify/delete/expire). Lookup
        #: memoizers key their caches on this to stay coherent.
        self.version = 0

    def __len__(self) -> int:
        return len(self.entries)

    # -- datapath ---------------------------------------------------------

    def lookup(self, key: Match, now_ps: int, nbytes: int = 0) -> Optional[FlowEntry]:
        """Highest-priority entry matching an exact ``key``."""
        self.lookups += 1
        best: Optional[FlowEntry] = None
        for entry in self.entries:
            if entry.match.matches(key):
                if best is None or entry.priority > best.priority:
                    best = entry
        if best is None:
            self.misses += 1
        else:
            self.hits += 1
            best.note_hit(now_ps, nbytes)
        return best

    # -- modification -----------------------------------------------------

    def add(self, entry: FlowEntry, check_overlap: bool = False) -> FlowEntry:
        """ADD: replace an identical entry, else insert a new one."""
        if check_overlap:
            for existing in self.entries:
                if existing.priority == entry.priority and _overlaps(
                    existing.match, entry.match
                ):
                    raise OverlapError("overlapping entry at equal priority")
        for index, existing in enumerate(self.entries):
            if (
                existing.priority == entry.priority
                and existing.match.is_strict_equal(entry.match)
            ):
                self.entries[index] = entry  # ADD over identical = replace
                self.version += 1
                return entry
        if len(self.entries) >= self.capacity:
            raise TableFullError(f"flow table full ({self.capacity} entries)")
        self.entries.append(entry)
        self.version += 1
        return entry

    def modify(self, match: Match, priority: int, actions: List[Action], strict: bool) -> int:
        """MODIFY(_STRICT): rewrite actions of matching entries.

        Returns the number of entries changed (0 means the caller should
        fall back to an ADD, per the 1.0 spec).
        """
        changed = 0
        for entry in self.entries:
            if _mod_selects(entry, match, priority, ofp.OFPP_NONE, strict):
                entry.actions = list(actions)
                changed += 1
        if changed:
            self.version += 1
        return changed

    def delete(
        self,
        match: Match,
        priority: int = 0,
        out_port: int = ofp.OFPP_NONE,
        strict: bool = False,
    ) -> List[FlowEntry]:
        """DELETE(_STRICT): remove matching entries; returns them."""
        removed = [
            entry
            for entry in self.entries
            if _mod_selects(entry, match, priority, out_port, strict)
        ]
        if removed:
            self.entries = [entry for entry in self.entries if entry not in removed]
            self.version += 1
        return removed

    def expire(self, now_ps: int) -> List[tuple]:
        """Remove timed-out entries; returns (entry, reason) pairs."""
        expired = []
        remaining = []
        for entry in self.entries:
            idle_deadline = (
                entry.last_used_ps + entry.idle_timeout * 10**12
                if entry.idle_timeout
                else None
            )
            hard_deadline = (
                entry.installed_at_ps + entry.hard_timeout * 10**12
                if entry.hard_timeout
                else None
            )
            if hard_deadline is not None and now_ps >= hard_deadline:
                expired.append((entry, ofp.OFPRR_HARD_TIMEOUT))
            elif idle_deadline is not None and now_ps >= idle_deadline:
                expired.append((entry, ofp.OFPRR_IDLE_TIMEOUT))
            else:
                remaining.append(entry)
        self.entries = remaining
        if expired:
            self.version += 1
        return expired


def _mod_selects(
    entry: FlowEntry, match: Match, priority: int, out_port: int, strict: bool
) -> bool:
    if strict:
        if entry.priority != priority or not entry.match.is_strict_equal(match):
            return False
    else:
        # Non-strict: the command's match acts as a filter; entries whose
        # *rule* falls within it are selected. 1.0 uses "more specific
        # or equal": every field the filter fixes must be fixed equal in
        # the entry.
        if not _subsumes(match, entry.match):
            return False
    if out_port != ofp.OFPP_NONE:
        from ..openflow.actions import OutputAction

        if not any(
            isinstance(action, OutputAction) and action.port == out_port
            for action in entry.actions
        ):
            return False
    return True


def _subsumes(filter_match: Match, entry_match: Match) -> bool:
    """True if every constraint of ``filter_match`` holds for the entry."""
    simple = [
        (ofp.OFPFW_IN_PORT, "in_port"),
        (ofp.OFPFW_DL_SRC, "dl_src"),
        (ofp.OFPFW_DL_DST, "dl_dst"),
        (ofp.OFPFW_DL_VLAN, "dl_vlan"),
        (ofp.OFPFW_DL_VLAN_PCP, "dl_vlan_pcp"),
        (ofp.OFPFW_DL_TYPE, "dl_type"),
        (ofp.OFPFW_NW_TOS, "nw_tos"),
        (ofp.OFPFW_NW_PROTO, "nw_proto"),
        (ofp.OFPFW_TP_SRC, "tp_src"),
        (ofp.OFPFW_TP_DST, "tp_dst"),
    ]
    for bit, name in simple:
        if not filter_match.wildcards & bit:
            if entry_match.wildcards & bit:
                return False
            if getattr(filter_match, name) != getattr(entry_match, name):
                return False
    for which in ("src", "dst"):
        filter_len = getattr(filter_match, f"nw_{which}_prefix_len")
        entry_len = getattr(entry_match, f"nw_{which}_prefix_len")
        if filter_len:
            if entry_len < filter_len:
                return False
            from ..net.fields import ipv4_to_int

            mask = ((1 << filter_len) - 1) << (32 - filter_len)
            filter_ip = ipv4_to_int(getattr(filter_match, f"nw_{which}"))
            entry_ip = ipv4_to_int(getattr(entry_match, f"nw_{which}"))
            if (filter_ip & mask) != (entry_ip & mask):
                return False
    return True


def _overlaps(first: Match, second: Match) -> bool:
    """Two matches overlap if some packet could match both.

    Conservative field-by-field check: they overlap unless some field is
    fixed to different values in both.
    """
    simple = [
        (ofp.OFPFW_IN_PORT, "in_port"),
        (ofp.OFPFW_DL_SRC, "dl_src"),
        (ofp.OFPFW_DL_DST, "dl_dst"),
        (ofp.OFPFW_DL_VLAN, "dl_vlan"),
        (ofp.OFPFW_DL_VLAN_PCP, "dl_vlan_pcp"),
        (ofp.OFPFW_DL_TYPE, "dl_type"),
        (ofp.OFPFW_NW_TOS, "nw_tos"),
        (ofp.OFPFW_NW_PROTO, "nw_proto"),
        (ofp.OFPFW_TP_SRC, "tp_src"),
        (ofp.OFPFW_TP_DST, "tp_dst"),
    ]
    for bit, name in simple:
        if not first.wildcards & bit and not second.wildcards & bit:
            if getattr(first, name) != getattr(second, name):
                return False
    from ..net.fields import ipv4_to_int

    for which in ("src", "dst"):
        common = min(
            getattr(first, f"nw_{which}_prefix_len"),
            getattr(second, f"nw_{which}_prefix_len"),
        )
        if common:
            mask = ((1 << common) - 1) << (32 - common)
            if (ipv4_to_int(getattr(first, f"nw_{which}")) & mask) != (
                ipv4_to_int(getattr(second, f"nw_{which}")) & mask
            ):
                return False
    return True
