"""An OpenFlow 1.0 switch model — the Part-II DUT.

The model separates the three delays whose interplay OFLOPS-turbo was
built to measure:

* **firmware delay** — the switch-local software (management CPU) cost
  of handling each control message, processed serially;
* **table write delay** — the per-rule cost of committing a flow-mod to
  the hardware table; writes are serialised behind the firmware and a
  rule only affects forwarding once its write *completes*;
* **barrier mode** — ``"spec"`` switches answer a barrier only after all
  prior writes have committed; ``"eager"`` switches answer as soon as
  the firmware has *parsed* prior messages. Eager is how real switches
  misbehave, and is exactly the control-vs-data-plane gap experiment E4
  exposes.

The datapath is store-and-forward with a lookup delay, flow-table
matching, action execution (header rewrites + outputs) and packet-in on
miss.
"""

from __future__ import annotations

import struct
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from ..errors import ConfigError
from ..hw.port import EthernetPort
from ..net.packet import Packet
from ..openflow import constants as ofp
from ..openflow.actions import apply_rewrites
from ..openflow.connection import ControlEndpoint
from ..openflow.match import Match
from ..openflow.messages import (
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    Hello,
    Message,
    PacketIn,
    PacketOut,
    PhyPort,
    StatsReply,
    StatsRequest,
)
from ..sim import Signal, Simulator
from ..units import TEN_GBPS, ns, seconds, us
from .flow_table import FlowEntry, FlowTable, OverlapError, TableFullError

#: Sentinel distinguishing "no memo entry" from a remembered miss (None).
_DP_UNKNOWN = object()


@dataclass
class _PacketInJob:
    """Internal firmware work item: encapsulate a missed packet."""

    packet: Packet
    in_port: int
    xid: int = 0  # shape-compatible with control messages


@dataclass
class SwitchProfile:
    """Timing/behaviour knobs of one switch implementation."""

    firmware_delay_ps: int = us(30)
    table_write_ps: int = us(5)
    barrier_mode: str = "spec"  # or "eager"
    datapath_lookup_ps: int = ns(600)
    packet_in_delay_ps: int = us(20)
    miss_send_len: int = 128
    table_capacity: int = 4096
    buffer_bytes_per_port: int = 128 * 1024
    #: Maximum packet-in jobs waiting on the management CPU; further
    #: misses are dropped (counted), the way a real switch sheds a
    #: packet-in storm. None = unbounded (legacy behaviour).
    packet_in_queue_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.barrier_mode not in ("spec", "eager"):
            raise ConfigError(f"barrier_mode must be 'spec' or 'eager'")
        for value in (
            self.firmware_delay_ps,
            self.table_write_ps,
            self.datapath_lookup_ps,
            self.packet_in_delay_ps,
        ):
            if value < 0:
                raise ConfigError("delays must be non-negative")


#: Named profiles spanning the switch classes OFLOPS-turbo compared:
#: a software switch (fast CPU, instant table), hardware switches with
#: fast/slow management CPUs, and a hardware switch whose barrier lies.
PROFILES = {
    "soft-switch": SwitchProfile(
        firmware_delay_ps=2_000_000,  # 2 µs per message
        table_write_ps=1_000_000,  # table is just memory
        barrier_mode="spec",
        datapath_lookup_ps=2_000_000,  # software datapath is the slow part
        packet_in_delay_ps=5_000_000,
    ),
    "hw-fast-cpu": SwitchProfile(
        firmware_delay_ps=10_000_000,
        table_write_ps=100_000_000,  # 100 µs TCAM writes dominate
        barrier_mode="spec",
    ),
    "hw-slow-cpu": SwitchProfile(
        firmware_delay_ps=150_000_000,  # 150 µs/message management CPU
        table_write_ps=50_000_000,
        barrier_mode="spec",
    ),
    "hw-eager": SwitchProfile(
        firmware_delay_ps=10_000_000,
        table_write_ps=100_000_000,
        barrier_mode="eager",
    ),
}


class OpenFlowSwitch:
    """OpenFlow 1.0 switch with an explicit control-plane pipeline."""

    def __init__(
        self,
        sim: Simulator,
        control: ControlEndpoint,
        name: str = "ofsw",
        num_ports: int = 4,
        datapath_id: int = 0x0000_00A0_B0C0_D0E0,
        port_rate_bps: float = TEN_GBPS,
        profile: Optional[SwitchProfile] = None,
    ) -> None:
        if num_ports < 1:
            raise ConfigError("switch needs at least one port")
        self.sim = sim
        self.name = name
        self.control = control
        self.datapath_id = datapath_id
        self.profile = profile or SwitchProfile()
        self.table = FlowTable(capacity=self.profile.table_capacity)
        control.on_message = self._on_control_message

        self.ports: List[EthernetPort] = []
        for index in range(num_ports):
            port = EthernetPort(
                sim,
                f"{name}.p{index}",
                rate_bps=port_rate_bps,
                tx_fifo_bytes=self.profile.buffer_bytes_per_port,
            )
            port.add_rx_sink(self._make_rx_handler(index + 1))  # OF ports are 1-based
            self.ports.append(port)

        # Firmware: serial message queue.
        self._firmware_queue: Deque[Message] = deque()
        self._firmware_busy = False
        # Hardware table-write engine: serial behind the firmware.
        self._write_clear_time = 0
        self._outstanding_writes = 0
        self._writes_idle = Signal(f"{name}.writes-idle")
        # Counters.
        self.packet_ins_sent = 0
        self.packet_ins_dropped = 0
        self.flow_mods_handled = 0
        self.barriers_handled = 0
        self.datapath_hits = 0
        self.datapath_misses = 0
        self.egress_drops = 0
        #: Deepest the firmware queue has ever been (incl. in-service).
        self.firmware_queue_peak = 0
        self._pending_packet_ins = 0
        # Datapath lookup memo: (in_port, frame bytes) -> (entry, rewritten
        # data, out_ports), or None for a remembered miss. Matching is a
        # pure function of the table's entries, so the memo is valid for
        # exactly one table version; any add/modify/delete/expire bumps
        # ``table.version`` and invalidates it wholesale.
        self._dp_cache = {}
        self._dp_cache_version = -1
        self._waves_cache = None
        # Timeout expiry scan (daemon, once a simulated second).
        self._schedule_expiry_scan()
        # A switch opens the handshake with HELLO.
        control.send(Hello())

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------

    def _wave_queues(self, waves):
        """(firmware-queue, packet-in-queue) waveforms for this switch."""
        cache = self._waves_cache
        if cache is None or cache[0] is not waves:
            cache = self._waves_cache = (
                waves,
                waves.series(f"{self.name}.firmware_queue", unit="msgs"),
                waves.series(f"{self.name}.packet_in_queue", unit="jobs"),
            )
        return cache

    def _on_control_message(self, message: Message) -> None:
        self._firmware_queue.append(message)
        depth = len(self._firmware_queue) + (1 if self._firmware_busy else 0)
        if depth > self.firmware_queue_peak:
            self.firmware_queue_peak = depth
        waves = self.sim.waves
        if waves is not None:
            self._wave_queues(waves)[1].record(self.sim.now, depth)
        if not self._firmware_busy:
            self._firmware_next()

    def _firmware_next(self) -> None:
        if not self._firmware_queue:
            self._firmware_busy = False
            waves = self.sim.waves
            if waves is not None:
                self._wave_queues(waves)[1].record(self.sim.now, 0)
            return
        self._firmware_busy = True
        message = self._firmware_queue.popleft()
        waves = self.sim.waves
        if waves is not None:
            self._wave_queues(waves)[1].record(
                self.sim.now, len(self._firmware_queue) + 1
            )
        self.sim.call_after(
            self.profile.firmware_delay_ps, self._firmware_handle, message
        )

    def _firmware_handle(self, message: Message) -> None:
        if isinstance(message, _PacketInJob):
            # Miss encapsulation happens on the same management CPU as
            # message handling — packet-in storms therefore delay
            # concurrent flow_mods (the OFLOPS interaction effect).
            self._pending_packet_ins -= 1
            waves = self.sim.waves
            if waves is not None:
                self._wave_queues(waves)[2].record(
                    self.sim.now, self._pending_packet_ins
                )
            self._send_packet_in(message.packet, message.in_port)
        elif isinstance(message, Hello):
            pass
        elif isinstance(message, EchoRequest):
            self.control.send(EchoReply(xid=message.xid, payload=message.payload))
        elif isinstance(message, FeaturesRequest):
            self.control.send(self._features_reply(message.xid))
        elif isinstance(message, FlowMod):
            self._handle_flow_mod(message)
        elif isinstance(message, BarrierRequest):
            self._handle_barrier(message)
        elif isinstance(message, PacketOut):
            self._handle_packet_out(message)
        elif isinstance(message, StatsRequest):
            self._handle_stats(message)
        else:
            self.control.send(
                ErrorMsg(
                    xid=message.xid,
                    err_type=ofp.OFPET_BAD_REQUEST,
                    err_code=0,
                )
            )
        self._firmware_next()

    def _features_reply(self, xid: int) -> FeaturesReply:
        ports = [
            PhyPort(port_no=index + 1, name=f"{self.name}-eth{index + 1}")
            for index in range(len(self.ports))
        ]
        return FeaturesReply(
            xid=xid,
            datapath_id=self.datapath_id,
            n_tables=1,
            ports=ports,
        )

    # -- flow mods and the write engine ----------------------------------

    def _handle_flow_mod(self, message: FlowMod) -> None:
        """Queue the table mutation on the hardware write engine."""
        self.flow_mods_handled += 1
        start = max(self.sim.now, self._write_clear_time)
        done = start + self.profile.table_write_ps
        self._write_clear_time = done
        self._outstanding_writes += 1
        self.sim.call_at(done, self._commit_flow_mod, message)

    def _commit_flow_mod(self, message: FlowMod) -> None:
        try:
            self._apply_flow_mod(message)
        except (TableFullError, OverlapError):
            self.control.send(
                ErrorMsg(
                    xid=message.xid,
                    err_type=ofp.OFPET_FLOW_MOD_FAILED,
                    err_code=ofp.OFPFMFC_ALL_TABLES_FULL,
                )
            )
        self._outstanding_writes -= 1
        if self._outstanding_writes == 0:
            self._writes_idle.fire()

    def _apply_flow_mod(self, message: FlowMod) -> None:
        command = message.command
        if command == ofp.OFPFC_ADD:
            entry = self._entry_from(message)
            self.table.add(
                entry, check_overlap=bool(message.flags & ofp.OFPFF_CHECK_OVERLAP)
            )
        elif command in (ofp.OFPFC_MODIFY, ofp.OFPFC_MODIFY_STRICT):
            strict = command == ofp.OFPFC_MODIFY_STRICT
            changed = self.table.modify(
                message.match, message.priority, message.actions, strict
            )
            if changed == 0:
                self.table.add(self._entry_from(message))
        elif command in (ofp.OFPFC_DELETE, ofp.OFPFC_DELETE_STRICT):
            strict = command == ofp.OFPFC_DELETE_STRICT
            removed = self.table.delete(
                message.match, message.priority, message.out_port, strict
            )
            for entry in removed:
                if entry.flags & ofp.OFPFF_SEND_FLOW_REM:
                    self._send_flow_removed(entry, ofp.OFPRR_DELETE)
        else:
            self.control.send(
                ErrorMsg(xid=message.xid, err_type=ofp.OFPET_BAD_REQUEST, err_code=0)
            )

    def _entry_from(self, message: FlowMod) -> FlowEntry:
        return FlowEntry(
            match=message.match,
            priority=message.priority,
            actions=list(message.actions),
            cookie=message.cookie,
            idle_timeout=message.idle_timeout,
            hard_timeout=message.hard_timeout,
            flags=message.flags,
            installed_at_ps=self.sim.now,
            last_used_ps=self.sim.now,
        )

    def _handle_barrier(self, message: BarrierRequest) -> None:
        self.barriers_handled += 1
        if self.profile.barrier_mode == "eager" or self._outstanding_writes == 0:
            self.control.send(BarrierReply(xid=message.xid))
        else:
            self.sim.call_after(
                max(0, self._write_clear_time - self.sim.now),
                self.control.send,
                BarrierReply(xid=message.xid),
            )

    def _handle_packet_out(self, message: PacketOut) -> None:
        if not message.data:
            return
        data, out_ports = apply_rewrites(message.data, message.actions)
        in_port = message.in_port if message.in_port < ofp.OFPP_MAX else 0
        for port in out_ports:
            self._output(data, port, in_port, from_table=False)

    # -- stats ---------------------------------------------------------------

    def _handle_stats(self, message: StatsRequest) -> None:
        if message.stats_type == ofp.OFPST_DESC:
            body = _pad_str("repro", 256) + _pad_str("sim-netfpga", 256) + _pad_str(
                "osnt-repro-1.0", 256
            ) + _pad_str("0000", 32) + _pad_str(self.name, 256)
        elif message.stats_type == ofp.OFPST_FLOW:
            body = b"".join(self._flow_stats_entry(e) for e in self.table.entries)
        elif message.stats_type == ofp.OFPST_AGGREGATE:
            packets = sum(e.packet_count for e in self.table.entries)
            nbytes = sum(e.byte_count for e in self.table.entries)
            body = struct.pack("!QQI4x", packets, nbytes, len(self.table))
        elif message.stats_type == ofp.OFPST_PORT:
            body = b"".join(
                self._port_stats_entry(index + 1, port)
                for index, port in enumerate(self.ports)
            )
        else:
            self.control.send(
                ErrorMsg(xid=message.xid, err_type=ofp.OFPET_BAD_REQUEST, err_code=0)
            )
            return
        self.control.send(
            StatsReply(xid=message.xid, stats_type=message.stats_type, reply_body=body)
        )

    def _flow_stats_entry(self, entry: FlowEntry) -> bytes:
        from ..openflow.actions import pack_actions

        actions = pack_actions(entry.actions)
        duration_ps = self.sim.now - entry.installed_at_ps
        length = 88 + len(actions)
        return (
            struct.pack("!HBx", length, 0)
            + entry.match.pack()
            + struct.pack(
                "!IIHHH6xQQQ",
                duration_ps // 10**12,
                (duration_ps % 10**12) // 1000,
                entry.priority,
                entry.idle_timeout,
                entry.hard_timeout,
                entry.cookie,
                entry.packet_count,
                entry.byte_count,
            )
            + actions
        )

    def _port_stats_entry(self, port_no: int, port: EthernetPort) -> bytes:
        return struct.pack(
            "!H6xQQQQQQQQQQQQ",
            port_no,
            port.rx.stats.packets,
            port.tx.stats.packets,
            port.rx.stats.bytes,
            port.tx.stats.bytes,
            0,
            port.tx.fifo.dropped,
            port.rx.stats.errors,
            port.tx.stats.errors,
            0,
            0,
            0,
            0,
        )

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    def _make_rx_handler(self, of_port: int):
        def handler(packet: Packet) -> None:
            self.sim.call_after(
                self.profile.datapath_lookup_ps, self._datapath, packet, of_port
            )

        return handler

    _DP_CACHE_MAX = 4096

    def _datapath(self, packet: Packet, in_port: int) -> None:
        table = self.table
        if self._dp_cache_version != table.version:
            self._dp_cache.clear()
            self._dp_cache_version = table.version
        cache = self._dp_cache
        memo_key = (in_port, packet.data)
        cached = cache.get(memo_key, _DP_UNKNOWN)
        if cached is _DP_UNKNOWN:
            key = Match.from_packet(packet.data, in_port)
            entry = table.lookup(key, self.sim.now, packet.frame_length)
            if entry is None:
                if len(cache) >= self._DP_CACHE_MAX:
                    cache.clear()
                cache[memo_key] = None
                self.datapath_misses += 1
                self.sim.call_after(
                    self.profile.packet_in_delay_ps,
                    self._queue_packet_in,
                    packet,
                    in_port,
                )
                return
            data, out_ports = apply_rewrites(packet.data, entry.actions)
            if len(cache) >= self._DP_CACHE_MAX:
                cache.clear()
            cache[memo_key] = (entry, data, out_ports)
        elif cached is None:
            # Remembered miss: replay the table counters the full lookup
            # would have produced, then take the packet-in path.
            table.lookups += 1
            table.misses += 1
            self.datapath_misses += 1
            self.sim.call_after(
                self.profile.packet_in_delay_ps, self._queue_packet_in, packet, in_port
            )
            return
        else:
            entry, data, out_ports = cached
            table.lookups += 1
            table.hits += 1
            entry.note_hit(self.sim.now, packet.frame_length)
        self.datapath_hits += 1
        for port in out_ports:
            self._output(data, port, in_port, from_table=True)

    def _queue_packet_in(self, packet: Packet, in_port: int) -> None:
        """Hand the miss to the firmware queue for encapsulation."""
        limit = self.profile.packet_in_queue_limit
        if limit is not None and self._pending_packet_ins >= limit:
            self.packet_ins_dropped += 1
            return
        self._pending_packet_ins += 1
        waves = self.sim.waves
        if waves is not None:
            self._wave_queues(waves)[2].record(self.sim.now, self._pending_packet_ins)
        self._on_control_message(_PacketInJob(packet=packet, in_port=in_port))

    def _send_packet_in(self, packet: Packet, in_port: int) -> None:
        self.packet_ins_sent += 1
        data = packet.data[: self.profile.miss_send_len]
        self.control.send(
            PacketIn(
                buffer_id=ofp.OFP_NO_BUFFER,
                total_len=len(packet.data),
                in_port=in_port,
                reason=ofp.OFPR_NO_MATCH,
                data=data,
            )
        )

    def _output(self, data: bytes, out_port: int, in_port: int, from_table: bool) -> None:
        if out_port in (ofp.OFPP_ALL, ofp.OFPP_FLOOD):
            for index in range(len(self.ports)):
                if index + 1 != in_port:
                    self._emit(data, index + 1)
        elif out_port == ofp.OFPP_IN_PORT:
            self._emit(data, in_port)
        elif out_port == ofp.OFPP_CONTROLLER:
            self.packet_ins_sent += 1
            self.control.send(
                PacketIn(
                    total_len=len(data),
                    in_port=in_port,
                    reason=ofp.OFPR_ACTION,
                    data=data[: self.profile.miss_send_len],
                )
            )
        elif out_port == ofp.OFPP_TABLE and not from_table:
            self._datapath(Packet(data), in_port)
        elif 1 <= out_port <= len(self.ports):
            self._emit(data, out_port)
        # Other reserved ports (NORMAL, LOCAL, NONE) drop silently here.

    def _emit(self, data: bytes, of_port: int) -> None:
        if not self.ports[of_port - 1].send(Packet(data)):
            self.egress_drops += 1

    def port(self, index: int) -> EthernetPort:
        """Zero-based accessor (OF numbering is 1-based internally)."""
        return self.ports[index]

    # -- timeouts ------------------------------------------------------------

    def _schedule_expiry_scan(self) -> None:
        self.sim.call_after(seconds(1), self._expiry_scan, daemon=True)

    def _expiry_scan(self) -> None:
        for entry, reason in self.table.expire(self.sim.now):
            if entry.flags & ofp.OFPFF_SEND_FLOW_REM:
                self._send_flow_removed(entry, reason)
        self._schedule_expiry_scan()

    def _send_flow_removed(self, entry: FlowEntry, reason: int) -> None:
        duration_ps = self.sim.now - entry.installed_at_ps
        self.control.send(
            FlowRemoved(
                match=entry.match,
                cookie=entry.cookie,
                priority=entry.priority,
                reason=reason,
                duration_sec=duration_ps // 10**12,
                duration_nsec=(duration_ps % 10**12) // 1000,
                idle_timeout=entry.idle_timeout,
                packet_count=entry.packet_count,
                byte_count=entry.byte_count,
            )
        )


def _pad_str(text: str, width: int) -> bytes:
    encoded = text.encode()[: width - 1]
    return encoded + b"\x00" * (width - len(encoded))
