"""A legacy (non-OpenFlow) L2 learning switch model — the Part-I DUT.

Store-and-forward: a frame is processed after its last bit arrives, then
spends the switching latency (lookup + fabric) before being queued on
the egress port, whose TX MAC serializes at line rate. Under load the
egress queue grows and latency rises — the "different load conditions"
behaviour the demo measures with OSNT.

Knobs chosen to match typical ToR switches of the era:

* ``switching_latency_ps`` — fixed pipeline latency (default 800 ns);
* ``latency_jitter_ps`` — uniform per-packet fabric jitter;
* ``buffer_bytes_per_port`` — egress buffering (tail drop when full);
* MAC learning with a bounded table and optional aging.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError
from ..hw.port import EthernetPort
from ..net.fields import is_multicast_mac
from ..net.packet import Packet
from ..sim import Simulator
from ..units import TEN_GBPS, ns, seconds


class MacTable:
    """Bounded MAC learning table with optional entry aging."""

    def __init__(self, capacity: int = 16_384, aging_ps: Optional[int] = seconds(300)) -> None:
        if capacity < 1:
            raise ConfigError("MAC table capacity must be positive")
        self.capacity = capacity
        self.aging_ps = aging_ps
        self._entries: Dict[str, Tuple[int, int]] = {}  # mac -> (port, learned_at)
        self.learned = 0
        self.evicted = 0

    def learn(self, mac: str, port: int, now: int) -> None:
        if mac not in self._entries and len(self._entries) >= self.capacity:
            # Evict the oldest entry (hardware uses hash buckets; oldest
            # is a fair stand-in with the same "table full" consequence).
            oldest = min(self._entries, key=lambda m: self._entries[m][1])
            del self._entries[oldest]
            self.evicted += 1
        if mac not in self._entries:
            self.learned += 1
        self._entries[mac] = (port, now)

    def lookup(self, mac: str, now: int) -> Optional[int]:
        entry = self._entries.get(mac)
        if entry is None:
            return None
        port, learned_at = entry
        if self.aging_ps is not None and now - learned_at > self.aging_ps:
            del self._entries[mac]
            return None
        return port

    def __len__(self) -> int:
        return len(self._entries)


class LegacySwitch:
    """Store-and-forward L2 learning switch."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "sw",
        num_ports: int = 4,
        port_rate_bps: float = TEN_GBPS,
        switching_latency_ps: int = ns(800),
        latency_jitter_ps: int = ns(50),
        buffer_bytes_per_port: int = 128 * 1024,
        mac_table_capacity: int = 16_384,
        fabric_rate_bps: Optional[float] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if num_ports < 2:
            raise ConfigError("a switch needs at least two ports")
        if switching_latency_ps < 0 or latency_jitter_ps < 0:
            raise ConfigError("latencies must be non-negative")
        if fabric_rate_bps is not None and fabric_rate_bps <= 0:
            raise ConfigError("fabric rate must be positive")
        self.sim = sim
        self.name = name
        self.switching_latency_ps = switching_latency_ps
        self.latency_jitter_ps = latency_jitter_ps
        #: Aggregate forwarding capacity. ``None`` = non-blocking fabric;
        #: a value below num_ports x line rate models an oversubscribed
        #: switch, whose achievable bandwidth RFC 2544 searches find.
        self.fabric_rate_bps = fabric_rate_bps
        self.fabric_buffer_bytes = buffer_bytes_per_port
        self._fabric_clear_ps = 0
        self._fabric_backlog_bytes = 0
        self._rng = rng or random.Random(0)
        self.mac_table = MacTable(capacity=mac_table_capacity)
        self.ports: List[EthernetPort] = []
        for index in range(num_ports):
            port = EthernetPort(
                sim,
                f"{name}.p{index}",
                rate_bps=port_rate_bps,
                tx_fifo_bytes=buffer_bytes_per_port,
            )
            port.add_rx_sink(self._make_rx_handler(index))
            self.ports.append(port)
        # Counters.
        self.forwarded = 0
        self.flooded = 0
        self.dropped_no_buffer = 0
        self.dropped_same_port = 0
        self.dropped_fabric = 0
        # Header-decode memo: first 12 wire bytes -> (dst_mac, src_mac,
        # is_multicast). Pure string formatting of immutable bytes, so
        # entries never go stale; the dict is merely bounded.
        self._hdr_cache: Dict[bytes, Tuple[str, str, bool]] = {}

    def port(self, index: int) -> EthernetPort:
        return self.ports[index]

    def _make_rx_handler(self, port_index: int):
        def handler(packet: Packet) -> None:
            self._ingress(packet, port_index)

        return handler

    def _ingress(self, packet: Packet, in_port: int) -> None:
        delay = self.switching_latency_ps
        if self.latency_jitter_ps:
            delay += self._rng.randint(0, self.latency_jitter_ps)
        if self.fabric_rate_bps is not None:
            # The shared fabric serialises frames at its aggregate rate.
            # Its input buffering is bounded: above capacity the backlog
            # fills and frames tail-drop, which is what an RFC 2544
            # search detects as the achievable bandwidth.
            from ..units import wire_time_ps

            frame_bytes = packet.frame_length
            if self._fabric_backlog_bytes + frame_bytes > self.fabric_buffer_bytes:
                self.dropped_fabric += 1
                return
            self._fabric_backlog_bytes += frame_bytes
            crossing = wire_time_ps(frame_bytes, self.fabric_rate_bps)
            start = max(self.sim.now + delay, self._fabric_clear_ps)
            self._fabric_clear_ps = start + crossing
            delay = (start + crossing) - self.sim.now
            self.sim.call_after(delay, self._fabric_release, frame_bytes)
        self.sim.call_after(delay, self._forward, packet, in_port)

    def _fabric_release(self, frame_bytes: int) -> None:
        self._fabric_backlog_bytes -= frame_bytes

    _HDR_CACHE_MAX = 4096

    def _forward(self, packet: Packet, in_port: int) -> None:
        header = packet.data[0:12]
        cached = self._hdr_cache.get(header)
        if cached is None:
            dst_mac = ":".join(f"{b:02x}" for b in header[0:6])
            src_mac = ":".join(f"{b:02x}" for b in header[6:12])
            cached = (dst_mac, src_mac, is_multicast_mac(dst_mac))
            if len(self._hdr_cache) >= self._HDR_CACHE_MAX:
                self._hdr_cache.clear()
            self._hdr_cache[header] = cached
        dst_mac, src_mac, multicast = cached
        now = self.sim.now
        self.mac_table.learn(src_mac, in_port, now)
        if multicast:
            out_port = None
        else:
            out_port = self.mac_table.lookup(dst_mac, now)
        spans = self.sim.spans
        if spans is not None:
            spans.hop(
                now, packet, "switch_lookup",
                {
                    "switch": self.name,
                    "in_port": in_port,
                    "dst": dst_mac,
                    "out_port": out_port if out_port is not None else "flood",
                },
            )
        if out_port is None:
            self._flood(packet, in_port)
        elif out_port == in_port:
            self.dropped_same_port += 1
            if spans is not None:
                spans.close(now, packet, "switch_drop",
                            detail={"reason": "same_port"})
        else:
            self._emit(packet, out_port)
            self.forwarded += 1

    def _flood(self, packet: Packet, in_port: int) -> None:
        self.flooded += 1
        for index, port in enumerate(self.ports):
            if index != in_port:
                self._emit(packet, index)

    def _emit(self, packet: Packet, out_port: int) -> None:
        # Forward a fresh frame object: the DUT's output is a new signal
        # on the wire, not the tester's packet instance.
        frame = Packet(packet.data)
        spans = self.sim.spans
        if spans is not None:
            # Alias the egress frame onto the ingress packet's span so
            # correlation holds even for frames with no embedded stamp.
            spans.transfer(
                self.sim.now, packet, frame, "switch_emit",
                {"switch": self.name, "out_port": out_port},
            )
        if not self.ports[out_port].send(frame):
            self.dropped_no_buffer += 1
            if spans is not None:
                spans.close(self.sim.now, frame, "switch_drop",
                            detail={"reason": "no_buffer", "out_port": out_port})

    @property
    def egress_drops(self) -> int:
        return self.dropped_no_buffer
