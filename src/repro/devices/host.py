"""A simple end host: answers ARP and ICMP echo, counts everything else.

Used by examples to build realistic topologies (hosts behind a switch)
and by tests as a traffic sink that actually behaves like an IP node.
"""

from __future__ import annotations

from typing import List

from ..hw.port import EthernetPort
from ..net.arp import OP_REPLY, OP_REQUEST, ArpPacket
from ..net.builder import _frame  # module-internal helper reused deliberately
from ..net.ethernet import ETHERTYPE_ARP
from ..net.icmp import IcmpHeader, TYPE_ECHO_REPLY, TYPE_ECHO_REQUEST
from ..net.ipv4 import Ipv4Header, PROTO_ICMP
from ..net.packet import Packet
from ..net.parser import decode
from ..sim import Simulator
from ..units import TEN_GBPS, us


class SimpleHost:
    """One NIC, one IP; replies to ARP who-has and ICMP echo."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: str,
        ip: str,
        rate_bps: float = TEN_GBPS,
        reply_delay_ps: int = us(5),  # kernel stack turnaround
    ) -> None:
        self.sim = sim
        self.name = name
        self.mac = mac
        self.ip = ip
        self.reply_delay_ps = reply_delay_ps
        self.port = EthernetPort(sim, f"{name}.eth0", rate_bps=rate_bps)
        self.port.add_rx_sink(self._on_frame)
        self.received: List[Packet] = []
        self.arp_replies = 0
        self.echo_replies = 0
        #: Attached :class:`repro.flows.FlowEndpoint`, or None. TCP
        #: frames are demultiplexed to it instead of ``received``.
        self._transport = None

    def _on_frame(self, packet: Packet) -> None:
        decoded = decode(packet.data)
        if decoded.arp is not None and decoded.arp.operation == OP_REQUEST:
            if decoded.arp.target_ip == self.ip:
                self.sim.call_after(self.reply_delay_ps, self._send_arp_reply, decoded)
            return
        if (
            decoded.icmp is not None
            and decoded.icmp.type == TYPE_ECHO_REQUEST
            and decoded.ipv4 is not None
            and decoded.ipv4.dst == self.ip
        ):
            self.sim.call_after(
                self.reply_delay_ps, self._send_echo_reply, decoded, packet.data
            )
            return
        if decoded.tcp is not None and self._transport is not None:
            self._transport._on_frame(decoded)
            return
        self.received.append(packet)

    def attach_transport(self, transport) -> None:
        """Claim the NIC for a closed-loop flow transport.

        Registering bumps the simulator's closed-loop source count,
        which makes the burst-datapath eligibility audit fall back to
        the per-packet path (closed-loop traffic reacts to every
        delivery; batched window advancement would reorder causality).
        """
        from ..errors import FlowError

        if self._transport is not None:
            raise FlowError(f"host {self.name!r} already has a transport attached")
        self._transport = transport
        self.sim._closed_loop_sources = (
            getattr(self.sim, "_closed_loop_sources", 0) + 1
        )

    def detach_transport(self, transport) -> None:
        """Release the NIC (exact transport object required)."""
        from ..errors import FlowError

        if self._transport is not transport:
            raise FlowError(f"host {self.name!r}: that transport is not attached")
        self._transport = None
        self.sim._closed_loop_sources -= 1

    def _send_arp_reply(self, request) -> None:
        reply = ArpPacket(
            operation=OP_REPLY,
            sender_mac=self.mac,
            sender_ip=self.ip,
            target_mac=request.arp.sender_mac,
            target_ip=request.arp.sender_ip,
        )
        frame = _frame(self.mac, request.arp.sender_mac, ETHERTYPE_ARP, reply.pack(), None)
        self.port.send(frame)
        self.arp_replies += 1

    def _send_echo_reply(self, request, original: bytes) -> None:
        echo = IcmpHeader(
            type=TYPE_ECHO_REPLY,
            identifier=request.icmp.identifier,
            sequence=request.icmp.sequence,
        )
        payload = original[request.payload_offset :]
        message = echo.pack(payload)
        ip = Ipv4Header(src=self.ip, dst=request.ipv4.src, protocol=PROTO_ICMP)
        network = ip.pack(len(message)) + message
        from ..net.ethernet import ETHERTYPE_IPV4

        frame = _frame(self.mac, request.ethernet.src, ETHERTYPE_IPV4, network, None)
        self.port.send(frame)
        self.echo_replies += 1

    def send(self, packet: Packet) -> bool:
        return self.port.send(packet)
