"""repro.faults — deterministic fault injection for the simulated tester.

One declarative :class:`ImpairmentSpec` (Python / dict / JSON, like
:class:`~repro.runner.ExperimentSpec`) names the fault models to attach
to a testbed's links, DMA engines, clocks and control channels; a
:class:`FaultInjector` binds the spec to live components and schedules
the impairment windows on the simulator. Same seed → bit-identical
impairment timeline, at any worker count.

See ``docs/FAULTS.md`` for the spec schema, the model catalogue and the
determinism guarantees, and ``examples/faults_tour.py`` for a guided
tour.
"""

from .injector import FaultInjector
from .models import FAULT_MODELS, FaultModel, fault_model
from .spec import FaultSpec, ImpairmentSpec

__all__ = [
    "FAULT_MODELS",
    "FaultInjector",
    "FaultModel",
    "FaultSpec",
    "ImpairmentSpec",
    "fault_model",
]
