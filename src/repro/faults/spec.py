"""Declarative impairment specifications.

An :class:`ImpairmentSpec` is to fault injection what
:class:`~repro.runner.ExperimentSpec` is to measurement campaigns: a
plain-data, JSON-round-trip description of *which* fault models to
attach *where* and *when*. Because the spec is data, a fault axis can be
swept by the runner exactly like a frame-size axis — every shard builds
its own simulator, derives the fault RNG from the shard seed, and the
impairment timeline is bit-identical at any worker count.

Each :class:`FaultSpec` names one fault model instance:

* ``name`` — unique label; namespaces the model's RNG stream, its
  telemetry counters (``faults.<name>.*``) and its timeline records;
* ``model`` — a registered model kind (see
  :data:`repro.faults.models.FAULT_MODELS`);
* ``target`` — the injector binding the model attaches to (``"link"``,
  ``"dma"``, ``"clock"``, ``"control"`` by default — see
  :meth:`repro.faults.FaultInjector.bind`);
* ``params`` — model parameters; rates are floats, durations accept
  human strings (``"2ms"``) like everywhere else in the package;
* ``start`` / ``stop`` — the activation window in simulated time
  (``stop=None`` keeps the fault active forever).
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from ..errors import FaultError
from ..units import duration_ps

_FAULT_FIELDS = ("name", "model", "target", "params", "start", "stop")


@dataclass
class FaultSpec:
    """One fault model instance with its target and activation window."""

    name: str
    model: str
    target: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)
    start: Union[int, str] = 0
    stop: Optional[Union[int, str]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise FaultError("fault needs a non-empty name")
        if not self.model:
            raise FaultError(f"fault {self.name!r} needs a model kind")
        if not isinstance(self.params, dict):
            raise FaultError(
                f"fault {self.name!r}: params must be a dict, "
                f"got {type(self.params).__name__}"
            )
        if self.stop is not None and self.stop_ps <= self.start_ps:
            raise FaultError(
                f"fault {self.name!r}: stop ({self.stop!r}) must be after "
                f"start ({self.start!r})"
            )

    @property
    def start_ps(self) -> int:
        return duration_ps(self.start)

    @property
    def stop_ps(self) -> Optional[int]:
        return None if self.stop is None else duration_ps(self.stop)

    def to_dict(self) -> Dict[str, Any]:
        return {name: copy.deepcopy(getattr(self, name)) for name in _FAULT_FIELDS}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        if not isinstance(data, dict):
            raise FaultError(f"fault must be a JSON object, got {type(data).__name__}")
        unknown = set(data) - set(_FAULT_FIELDS)
        if unknown:
            raise FaultError(f"unknown fault field(s): {', '.join(sorted(unknown))}")
        if "name" not in data or "model" not in data:
            raise FaultError("fault needs at least 'name' and 'model'")
        return cls(**copy.deepcopy(data))


@dataclass
class ImpairmentSpec:
    """A named set of fault models — the whole impairment plan of a run."""

    faults: List[FaultSpec] = field(default_factory=list)
    name: str = "impairments"

    def __post_init__(self) -> None:
        normalized: List[FaultSpec] = []
        for entry in self.faults:
            if isinstance(entry, FaultSpec):
                normalized.append(entry)
            elif isinstance(entry, dict):
                normalized.append(FaultSpec.from_dict(entry))
            else:
                raise FaultError(
                    f"fault entries must be FaultSpec or dict, "
                    f"got {type(entry).__name__}"
                )
        self.faults = normalized
        seen = set()
        for fault in self.faults:
            if fault.name in seen:
                raise FaultError(f"duplicate fault name {fault.name!r}")
            seen.add(fault.name)

    @property
    def empty(self) -> bool:
        return not self.faults

    # -- construction --------------------------------------------------------

    @classmethod
    def from_any(
        cls,
        value: Union[None, "ImpairmentSpec", Dict[str, Any], Sequence, str],
    ) -> "ImpairmentSpec":
        """Coerce any accepted representation into a spec.

        ``None`` → empty spec; an :class:`ImpairmentSpec` passes through;
        a dict is :meth:`from_dict`; a list is taken as the fault list;
        a string is parsed as JSON.
        """
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.from_json(value)
        if isinstance(value, dict):
            return cls.from_dict(value)
        if isinstance(value, (list, tuple)):
            return cls(faults=list(value))
        raise FaultError(
            f"cannot build an ImpairmentSpec from {type(value).__name__}"
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ImpairmentSpec":
        if not isinstance(data, dict):
            raise FaultError(f"spec must be a JSON object, got {type(data).__name__}")
        unknown = set(data) - {"name", "faults"}
        if unknown:
            raise FaultError(f"unknown spec field(s): {', '.join(sorted(unknown))}")
        return cls(
            faults=list(data.get("faults", ())),
            name=data.get("name", "impairments"),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=(indent is None))

    @classmethod
    def from_json(cls, document: str) -> "ImpairmentSpec":
        try:
            data = json.loads(document)
        except json.JSONDecodeError as exc:
            raise FaultError(f"impairment spec is not valid JSON: {exc}") from exc
        if isinstance(data, list):
            return cls(faults=data)
        return cls.from_dict(data)

    def fingerprint(self) -> str:
        """Content hash: equal specs → equal fingerprints across runs."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]
