"""Fault-injection measurement scenarios.

Three end-to-end demonstrations that the measurement stack reacts
correctly when the testbed is degraded on purpose — each registered as
a named scenario in :mod:`repro.runner.scenarios`, so fault parameters
are sweepable axes like any frame size:

* ``lossy_link_latency`` — timestamped probes through the legacy switch
  over a link with (optionally bursty) injected loss; reports loss
  accounting (injected vs overflow) alongside the latency summary;
* ``gps_holdover_drift`` — clock error over time with a GPS holdover
  window in the middle: the servo loses the pulse, the crystal drifts
  away, re-acquisition snaps it back;
* ``flowmod_under_flap`` — the flow-mod latency measurement under a
  flapping control channel: bounded retries, then an explicit
  ``degraded`` result instead of a crash.

Every result carries the injector's ``fault_timeline_digest``: a
SHA-256 over the full impairment timeline, which is what the
seed-determinism tests compare across worker counts and resumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..analysis.latency import latency_from_capture
from ..devices.legacy_switch import LegacySwitch
from ..osnt.api import OSNT
from ..sim import RandomStreams, Simulator
from ..testbed.topology import legacy_testbed
from ..testbed.workloads import udp_template
from ..units import ms, seconds
from .injector import FaultInjector
from .spec import ImpairmentSpec


@dataclass
class LossyLatencyRow:
    frame_size: int
    load: float
    loss_rate: float
    burst: float
    probes_sent: int
    probes_captured: int
    drops_injected: int
    drops_overflow: int
    mean_us: float
    p99_us: float

    @property
    def observed_loss(self) -> float:
        return 1.0 - self.probes_captured / self.probes_sent if self.probes_sent else 0.0


def lossy_link_latency_point(
    loss_rate: float,
    burst: float = 1.0,
    frame_size: int = 256,
    load: float = 0.05,
    duration_ps: int = ms(2),
    seed: int = 0,
    switch_seed: int = 1,
) -> Tuple[LossyLatencyRow, Dict[str, Any]]:
    """Probe latency over a lossy ingress link (Part I topology).

    The loss model rides the probe link OSNT→switch; dropped probes are
    counted as *injected* MAC drops, kept apart from genuine FIFO
    overflow, so the experiment can assert the un-impaired path itself
    lost nothing. ``loss_rate=0`` attaches nothing and is a
    byte-for-byte no-op on the capture output.
    """
    sim = Simulator()
    switch = LegacySwitch(sim, rng=RandomStreams(switch_seed).stream("sw"))
    bed = legacy_testbed(sim, switch=switch, root_seed=seed)
    bed.teach_mac_table("02:00:00:00:00:02")
    spec = ImpairmentSpec.from_any(
        []
        if loss_rate <= 0.0
        else [
            {
                "name": "loss",
                "model": "link_loss",
                "params": {"rate": loss_rate, "burst": burst},
            }
        ]
    )
    injector = FaultInjector(sim, spec, seed=seed)
    injector.bind(link=bed.links[0]).arm()
    bed.monitor.start_capture()
    bed.generator.load_template(udp_template(frame_size))
    bed.generator.set_load(load)
    bed.generator.embed_timestamps().for_duration(duration_ps)
    bed.generator.start()
    sim.run()
    summary = latency_from_capture(bed.monitor.packets).summary
    ingress_rx = bed.switch.port(0).rx.stats
    row = LossyLatencyRow(
        frame_size=frame_size,
        load=load,
        loss_rate=loss_rate,
        burst=burst,
        probes_sent=bed.generator.packets_sent,
        probes_captured=summary.count if summary else 0,
        drops_injected=ingress_rx.drops_injected,
        drops_overflow=bed.tester.port(0).tx.stats.drops_overflow,
        mean_us=summary.mean / 1e6 if summary else 0.0,
        p99_us=summary.p99 / 1e6 if summary else 0.0,
    )
    return row, {"fault_timeline_digest": injector.timeline_digest()}


@dataclass
class HoldoverRow:
    after_seconds: int
    abs_error_ns: float
    in_holdover: bool


def gps_holdover_drift_point(
    holdover_start_s: int = 3,
    holdover_len_s: int = 4,
    horizon_s: int = 10,
    freq_error_ppm: float = 30.0,
    walk_ppb: float = 20.0,
    seed: int = 0,
) -> Tuple[List[HoldoverRow], Dict[str, Any]]:
    """Clock error through a GPS holdover window (E2b, impaired).

    Before the window the servo keeps the error sub-µs; during it the
    clock free-runs on the drifting crystal and the error grows; after
    re-acquisition the step-and-steer discipline snaps it back. Sampled
    mid-interval like :func:`repro.testbed.scenarios.clock_error_point`.
    """
    sim = Simulator()
    tester = OSNT(
        sim,
        root_seed=seed,
        freq_error_ppm=freq_error_ppm,
        oscillator_walk_ppb=walk_ppb,
        gps_enabled=True,
    )
    start = seconds(holdover_start_s)
    stop = seconds(holdover_start_s + holdover_len_s)
    spec = ImpairmentSpec.from_any(
        [
            {
                "name": "holdover",
                "model": "gps_holdover",
                "start": start,
                "stop": stop,
            }
        ]
    )
    injector = FaultInjector(sim, spec, seed=seed)
    injector.bind(clock=tester.device).arm()
    rows: List[HoldoverRow] = []
    for second in range(1, horizon_s + 1):
        sample_at = seconds(second) + seconds(1) // 2
        sim.run(until=sample_at)
        rows.append(
            HoldoverRow(
                after_seconds=second,
                abs_error_ns=abs(tester.device.oscillator.error_ps()) / 1e3,
                in_holdover=start <= sample_at < stop,
            )
        )
    return rows, {"fault_timeline_digest": injector.timeline_digest()}


def flowmod_under_flap_point(
    n_rules: int = 32,
    flap_period: int = ms(10),
    flap_down: int = ms(6),
    deadline_ps: int = ms(30),
    barrier_retries: int = 3,
    barrier_mode: str = "spec",
    seed: int = 0,
) -> Dict[str, Any]:
    """The flow-mod latency measurement with the control session flapping.

    The flap windows are deterministic (period/down-time, no RNG), so a
    fixed parameter set always exercises the same degradation path:
    setup barriers are resent up to ``barrier_retries`` times, the
    update burst may die on a down window, and the run ends at
    ``deadline_ps`` with ``degraded=True`` plus retry counts — never an
    exception.
    """
    import dataclasses

    from ..testbed.scenarios import measure_flowmod_latency

    impairments = [
        {
            "name": "flap",
            "model": "control_flap",
            "params": {"period": flap_period, "down_time": flap_down},
        }
    ]
    result = measure_flowmod_latency(
        n_rules=n_rules,
        barrier_mode=barrier_mode,
        impairments=impairments,
        seed=seed,
        deadline_ps=deadline_ps,
        barrier_retries=barrier_retries,
    )
    out = dataclasses.asdict(result)
    out["rules_activated"] = len(result.rule_activation_ps)
    return out
