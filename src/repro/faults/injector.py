"""The injector: binds an :class:`ImpairmentSpec` to live components.

Usage is three steps, mirroring how a testbed is wired::

    injector = FaultInjector(sim, spec, seed=experiment_seed)
    injector.bind(link=link, dma=card.dma, clock=card, control=channel)
    injector.arm()

``bind`` names the attachment points; each :class:`FaultSpec` resolves
its ``target`` (or its model's default) against those names. ``arm``
instantiates the registered model classes and schedules their
activation windows as daemon events, so faults never keep an
open-ended run alive.

Determinism: each fault draws from its own named RNG stream
(``fault/<name>`` on the injector's :class:`~repro.sim.RandomStreams`),
derived from the root seed alone. Two runs with the same seed and spec
produce bit-identical impairment timelines — compare
:meth:`FaultInjector.timeline_digest` — regardless of worker count,
because nothing else in the simulation shares those streams.

Telemetry: every recorded fault action increments
``faults.<name>.<action>`` in the bound
:class:`~repro.telemetry.MetricsRegistry` and, when a tracer is
attached to the simulator, emits a ``"fault"``-category instant event.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Tuple

from ..errors import FaultError
from ..sim.random import RandomStreams
from .models import FAULT_MODELS, FaultModel
from .spec import ImpairmentSpec

#: Keep at most this many in-memory timeline records (the digest always
#: covers the full history).
TIMELINE_LIMIT = 4096


class FaultInjector:
    """Attach the fault models of one :class:`ImpairmentSpec` to a sim."""

    def __init__(
        self,
        sim,
        spec,
        *,
        seed: int = 0,
        streams: Optional[RandomStreams] = None,
        registry=None,
    ) -> None:
        self.sim = sim
        self.spec = ImpairmentSpec.from_any(spec)
        self.streams = streams if streams is not None else RandomStreams(seed)
        self.registry = registry
        self._targets: Dict[str, Any] = {}
        self._models: Dict[str, FaultModel] = {}
        self._armed = False
        #: Bounded in-memory view of what fired, for tests and reports.
        self.timeline: List[Tuple[int, str, str, dict]] = []
        self.events_recorded = 0
        self._digest = hashlib.sha256()

    # -- wiring --------------------------------------------------------------

    def bind(self, **targets: Any) -> "FaultInjector":
        """Name the components faults may attach to.

        Conventional names: ``link`` (a :class:`~repro.hw.port.Link`),
        ``dma`` (a :class:`~repro.hw.dma.DmaEngine`), ``clock`` (an
        object exposing ``.oscillator``/``.gps``/``.timestamp_unit``,
        e.g. an OSNT device) and ``control`` (a
        :class:`~repro.openflow.connection.ControlChannel`). Arbitrary
        extra names are fine — a spec selects one with its ``target``
        field. ``None`` values are ignored so callers can pass whatever
        subset their testbed has. Returns ``self`` for chaining.
        """
        for name, target in targets.items():
            if target is not None:
                self._targets[name] = target
        return self

    def arm(self) -> "FaultInjector":
        """Instantiate every fault model and schedule its window."""
        if self._armed:
            raise FaultError("injector is already armed")
        self._armed = True
        for fault in self.spec.faults:
            model_cls = FAULT_MODELS.get(fault.model)
            if model_cls is None:
                known = ", ".join(sorted(FAULT_MODELS))
                raise FaultError(
                    f"fault {fault.name!r}: unknown model {fault.model!r} "
                    f"(known: {known})"
                )
            target_name = fault.target or model_cls.default_target
            if target_name not in self._targets:
                bound = ", ".join(sorted(self._targets)) or "nothing"
                raise FaultError(
                    f"fault {fault.name!r} targets {target_name!r} but the "
                    f"injector has {bound} bound"
                )
            rng = self.streams.stream(f"fault/{fault.name}")
            model = model_cls(fault, self._targets[target_name], rng, self)
            model.arm(self.sim)
            self._models[fault.name] = model
        return self

    @property
    def models(self) -> Dict[str, FaultModel]:
        """The armed models, keyed by fault name."""
        return dict(self._models)

    def model(self, name: str) -> FaultModel:
        try:
            return self._models[name]
        except KeyError:
            raise FaultError(f"no armed fault named {name!r}") from None

    # -- recording -----------------------------------------------------------

    def record(self, fault_name: str, action: str, **detail: Any) -> None:
        """Log one fault action into timeline + digest + telemetry.

        A ``packet=`` keyword names the frame the action touched; it is
        routed to an armed :class:`repro.obs.SpanRecorder` (the packet's
        span gains a fault hop) and **stripped before** the timeline and
        digest, so digests stay bit-identical whether or not models pass
        packets and whether or not spans are armed.
        """
        packet = detail.pop("packet", None)
        now = self.sim.now
        if packet is not None:
            spans = getattr(self.sim, "spans", None)
            if spans is not None:
                spans.fault(now, packet, fault_name, action, detail or None)
        self.events_recorded += 1
        entry = (now, fault_name, action, detail)
        if len(self.timeline) < TIMELINE_LIMIT:
            self.timeline.append(entry)
        payload = (
            f"{now}|{fault_name}|{action}|"
            f"{sorted(detail.items()) if detail else ''}"
        )
        self._digest.update(payload.encode())
        if self.registry is not None:
            self.registry.counter(f"faults.{fault_name}.{action}").inc()
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            tracer.instant(now, "fault", f"{fault_name}.{action}", detail or None)

    def timeline_digest(self) -> str:
        """SHA-256 over the *entire* recorded history (not just the
        bounded in-memory window) — the bit-identity witness."""
        return self._digest.hexdigest()
