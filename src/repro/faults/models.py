"""The fault-model catalogue.

Each model degrades one component class on purpose, through the same
hooks real hardware failures exercise:

* link layer — frame loss (optionally bursty, after LinkGuardian's
  observation that sub-RTT *corruption* loss is what breaks testers),
  FCS corruption, reordering and jitter on a :class:`~repro.hw.port.Link`;
* host path — DMA drain stalls and descriptor-ring clamps on a
  :class:`~repro.hw.dma.DmaEngine` (capture loss becomes measurable,
  never silent);
* clocks — oscillator drift steps, GPS holdover windows and a frozen
  timestamp counter on the card's clock subsystem;
* control plane — channel flaps (messages lost while down) and latency
  spikes on a :class:`~repro.openflow.connection.ControlChannel`.

Every stochastic decision draws from the model's own named RNG stream
(derived from the injector's root seed and the fault's ``name``), so
adding or removing one fault never perturbs another's timeline and the
whole impairment schedule is bit-identical for a given seed.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Type

from ..errors import FaultError
from ..units import duration_ps
from .spec import FaultSpec

#: Registry of model kinds, filled by the :func:`fault_model` decorator.
FAULT_MODELS: Dict[str, Type["FaultModel"]] = {}


def fault_model(kind: str) -> Callable[[Type["FaultModel"]], Type["FaultModel"]]:
    """Register a model class under its spec ``model`` kind."""

    def decorate(cls: Type["FaultModel"]) -> Type["FaultModel"]:
        cls.kind = kind
        FAULT_MODELS[kind] = cls
        return cls

    return decorate


def _param_ps(params: dict, key: str, default) -> Optional[int]:
    value = params.get(key, default)
    return None if value is None else duration_ps(value)


def _param_rate(params: dict, key: str, default: float, name: str) -> float:
    rate = float(params.get(key, default))
    if not 0.0 <= rate <= 1.0:
        raise FaultError(f"fault {name!r}: {key} must be in [0, 1], got {rate}")
    return rate


class FaultModel:
    """Base class: window scheduling plus the injector back-channel."""

    kind = "base"
    #: Default injector binding this model attaches to.
    default_target = "link"

    def __init__(self, spec: FaultSpec, target, rng: random.Random, injector) -> None:
        self.spec = spec
        self.name = spec.name
        self.target = target
        self.rng = rng
        self.injector = injector
        self.active = False

    # -- lifecycle ----------------------------------------------------------

    def arm(self, sim) -> None:
        """Schedule the activation window (daemon events: faults must
        never keep an otherwise-finished run alive)."""
        self.sim = sim
        start = self.spec.start_ps
        if start <= sim.now:
            self._activate()
        else:
            sim.call_at(start, self._activate, daemon=True)
        stop = self.spec.stop_ps
        if stop is not None:
            sim.call_at(stop, self._deactivate, daemon=True)

    def _activate(self) -> None:
        self.active = True
        self.record("activate")
        self.on_activate()

    def _deactivate(self) -> None:
        self.active = False
        self.record("deactivate")
        self.on_deactivate()

    def on_activate(self) -> None:
        """Model-specific window entry (override as needed)."""

    def on_deactivate(self) -> None:
        """Model-specific window exit (override as needed)."""

    def record(self, action: str, **detail) -> None:
        self.injector.record(self.name, action, **detail)


# ---------------------------------------------------------------------------
# Link-layer models (target: a hw.port.Link)
# ---------------------------------------------------------------------------


class _LinkModel(FaultModel):
    """Base for models that hook a link's per-frame delivery path.

    All link models accept an optional ``direction`` param:
    ``"a_to_b"`` impairs only frames delivered toward the link's
    ``port_b``, ``"b_to_a"`` the reverse, and the default (None) both
    directions. Directional impairment is what closed-loop experiments
    need — dropping a flow's data segments without touching its ACKs
    keeps the loss accounting exact.
    """

    default_target = "link"

    def __init__(self, spec: FaultSpec, target, rng: random.Random, injector) -> None:
        super().__init__(spec, target, rng, injector)
        self.direction = spec.params.get("direction")
        if self.direction not in (None, "a_to_b", "b_to_a"):
            raise FaultError(
                f"fault {spec.name!r}: direction must be 'a_to_b', "
                f"'b_to_a' or omitted, got {self.direction!r}"
            )

    def arm(self, sim) -> None:
        from ..hw.port import Link

        if not isinstance(self.target, Link):
            raise FaultError(
                f"fault {self.name!r} ({self.kind}) needs a Link target, "
                f"got {type(self.target).__name__}"
            )
        self.target.add_impairment(self._on_frame)
        super().arm(sim)

    def _on_frame(self, packet, destination) -> Optional[int]:
        if not self.active:
            return None
        if self.direction is not None:
            wanted = (
                self.target.port_b
                if self.direction == "a_to_b"
                else self.target.port_a
            )
            if destination is not wanted:
                return None
        return self.decide(packet, destination)

    def decide(self, packet, destination) -> Optional[int]:
        """Per-frame verdict: ``None`` deliver, ``DROP_FRAME`` drop, or
        an extra delay in ps."""
        raise NotImplementedError


@fault_model("link_loss")
class LinkLossModel(_LinkModel):
    """Random (optionally bursty) frame loss on the wire.

    ``rate`` is the long-run average loss fraction; ``burst`` is the
    mean number of *consecutive* frames lost per loss event (1 = i.i.d.
    drops; larger values model the correlated loss bursts that P4TG-style
    burst loads and LinkGuardian's corrupting links produce). Burst
    lengths are geometric with the configured mean, and the entry
    probability is scaled so the average rate stays ``rate``.
    """

    def __init__(self, spec, target, rng, injector) -> None:
        super().__init__(spec, target, rng, injector)
        self.rate = _param_rate(spec.params, "rate", 0.0, spec.name)
        self.burst = float(spec.params.get("burst", 1.0))
        if self.burst < 1.0:
            raise FaultError(f"fault {spec.name!r}: burst must be >= 1")
        self._burst_left = 0
        self.dropped = 0

    def decide(self, packet, destination) -> Optional[int]:
        from ..hw.port import DROP_FRAME

        if self._burst_left > 0:
            self._burst_left -= 1
            return self._drop(packet, destination)
        if self.rate <= 0.0:
            return None
        enter = min(1.0, self.rate / self.burst)
        if self.rng.random() >= enter:
            return None
        # Geometric burst length with mean ``burst`` (this frame included).
        length = 1
        continue_p = 1.0 - 1.0 / self.burst
        while continue_p > 0.0 and self.rng.random() < continue_p:
            length += 1
        self._burst_left = length - 1
        return self._drop(packet, destination)

    def _drop(self, packet, destination):
        from ..hw.port import DROP_FRAME

        self.dropped += 1
        destination.rx.stats.drops_injected += 1
        self.record("drop", bytes=packet.frame_length, packet=packet)
        return DROP_FRAME


@fault_model("link_corrupt")
class LinkCorruptModel(_LinkModel):
    """Per-frame FCS corruption: the frame reaches the far MAC but fails
    the FCS check there — counted as an RX error *and* an injected drop,
    exactly how a dirty fibre shows up to a real tester."""

    def __init__(self, spec, target, rng, injector) -> None:
        super().__init__(spec, target, rng, injector)
        self.rate = _param_rate(spec.params, "rate", 0.0, spec.name)
        self.corrupted = 0

    def decide(self, packet, destination) -> Optional[int]:
        from ..hw.port import DROP_FRAME

        if self.rate <= 0.0 or self.rng.random() >= self.rate:
            return None
        self.corrupted += 1
        self.target.frames_corrupted += 1
        destination.rx.stats.errors += 1
        destination.rx.stats.drops_injected += 1
        self.record("corrupt", bytes=packet.frame_length, packet=packet)
        return DROP_FRAME


@fault_model("link_jitter")
class LinkJitterModel(_LinkModel):
    """Uniform extra per-frame delay in ``[0, max_jitter]`` picoseconds."""

    def __init__(self, spec, target, rng, injector) -> None:
        super().__init__(spec, target, rng, injector)
        self.max_jitter_ps = _param_ps(spec.params, "max_jitter", 0) or 0
        if self.max_jitter_ps < 0:
            raise FaultError(f"fault {spec.name!r}: max_jitter must be >= 0")
        self.delayed = 0

    def decide(self, packet, destination) -> Optional[int]:
        if self.max_jitter_ps <= 0:
            return None
        delay = self.rng.randrange(self.max_jitter_ps + 1)
        if delay <= 0:
            return None
        self.delayed += 1
        self.record("delay", delay_ps=delay, packet=packet)
        return delay


@fault_model("link_reorder")
class LinkReorderModel(_LinkModel):
    """Hold back a random subset of frames by a fixed extra delay, so
    they arrive *after* frames sent later — classic reordering."""

    def __init__(self, spec, target, rng, injector) -> None:
        super().__init__(spec, target, rng, injector)
        self.rate = _param_rate(spec.params, "rate", 0.0, spec.name)
        self.delay_ps = _param_ps(spec.params, "delay", 0) or 0
        if self.delay_ps < 0:
            raise FaultError(f"fault {spec.name!r}: delay must be >= 0")
        self.reordered = 0

    def decide(self, packet, destination) -> Optional[int]:
        if self.rate <= 0.0 or self.delay_ps <= 0:
            return None
        if self.rng.random() >= self.rate:
            return None
        self.reordered += 1
        self.record("reorder", delay_ps=self.delay_ps, packet=packet)
        return self.delay_ps


# ---------------------------------------------------------------------------
# DMA / host-path models (target: a hw.dma.DmaEngine)
# ---------------------------------------------------------------------------


class _DmaModel(FaultModel):
    default_target = "dma"

    def arm(self, sim) -> None:
        from ..hw.dma import DmaEngine

        if not isinstance(self.target, DmaEngine):
            raise FaultError(
                f"fault {self.name!r} ({self.kind}) needs a DmaEngine target, "
                f"got {type(self.target).__name__}"
            )
        super().arm(sim)


@fault_model("dma_stall")
class DmaStallModel(_DmaModel):
    """Periodic drain stalls: every ``period`` the engine stops moving
    bytes for ``duration`` (host IOMMU hiccups, PCIe backpressure). The
    ring keeps filling, so sufficiently long stalls surface as counted
    tail drops — loss-limited, never silent."""

    def __init__(self, spec, target, rng, injector) -> None:
        super().__init__(spec, target, rng, injector)
        self.period_ps = _param_ps(spec.params, "period", "1ms")
        self.duration_ps = _param_ps(spec.params, "duration", "100us")
        if self.period_ps <= 0 or self.duration_ps <= 0:
            raise FaultError(f"fault {spec.name!r}: period/duration must be positive")
        self.stalls = 0

    def on_activate(self) -> None:
        self._tick()

    def _tick(self) -> None:
        if not self.active:
            return
        self.stalls += 1
        self.target.stall_for(self.duration_ps)
        self.record("stall", duration_ps=self.duration_ps)
        self.sim.call_after(self.period_ps, self._tick, daemon=True)


@fault_model("dma_ring_clamp")
class DmaRingClampModel(_DmaModel):
    """Clamp the usable descriptor ring to ``slots`` while active —
    ring-overflow pressure without rebuilding the engine."""

    def __init__(self, spec, target, rng, injector) -> None:
        super().__init__(spec, target, rng, injector)
        self.slots = int(spec.params.get("slots", 1))
        if self.slots < 1:
            raise FaultError(f"fault {spec.name!r}: slots must be >= 1")

    def on_activate(self) -> None:
        self.target.set_slot_clamp(self.slots)
        self.record("clamp", slots=self.slots)

    def on_deactivate(self) -> None:
        self.target.set_slot_clamp(None)
        self.record("unclamp")


# ---------------------------------------------------------------------------
# Clock models (target: an object with .oscillator/.gps/.timestamp_unit,
# e.g. an OSNTDevice)
# ---------------------------------------------------------------------------


class _ClockModel(FaultModel):
    default_target = "clock"

    def arm(self, sim) -> None:
        for attr in self.required_attrs:
            if not hasattr(self.target, attr):
                raise FaultError(
                    f"fault {self.name!r} ({self.kind}) needs a clock target "
                    f"with .{attr} (e.g. an OSNTDevice)"
                )
        super().arm(sim)

    required_attrs = ("oscillator",)


@fault_model("clock_drift_step")
class ClockDriftStepModel(_ClockModel):
    """Step the oscillator at window start: ``ppm`` of extra frequency
    error and/or a ``phase`` jump — a thermal shock or a reference
    glitch the GPS servo must then chase back down."""

    required_attrs = ("oscillator",)

    def __init__(self, spec, target, rng, injector) -> None:
        super().__init__(spec, target, rng, injector)
        self.ppm = float(spec.params.get("ppm", 0.0))
        self.phase_ps = _param_ps(spec.params, "phase", 0) or 0

    def on_activate(self) -> None:
        oscillator = self.target.oscillator
        if self.ppm:
            oscillator.adjust_rate(self.ppm * 1e-6)
        if self.phase_ps:
            oscillator.step_phase(self.phase_ps)
        self.record("drift_step", ppm=self.ppm, phase_ps=self.phase_ps)


@fault_model("gps_holdover")
class GpsHoldoverModel(_ClockModel):
    """GPS holdover: the PPS input disappears for the window, the servo
    stops correcting and the clock free-runs on its (drifting) crystal.
    Re-acquisition at window end steps the clock back onto the pulse."""

    required_attrs = ("gps",)

    def on_activate(self) -> None:
        self._was_enabled = self.target.gps.enabled
        self.target.gps.enabled = False
        self.record("holdover_start")

    def on_deactivate(self) -> None:
        self.target.gps.enabled = self._was_enabled
        self.record("holdover_end")


@fault_model("timestamp_freeze")
class TimestampFreezeModel(_ClockModel):
    """Freeze the 64-bit timestamp counter for the window (a latch-up:
    every capture in the window carries the same stale stamp)."""

    required_attrs = ("timestamp_unit",)

    def on_activate(self) -> None:
        self.target.timestamp_unit.freeze()
        self.record("freeze")

    def on_deactivate(self) -> None:
        self.target.timestamp_unit.unfreeze()
        self.record("unfreeze")


# ---------------------------------------------------------------------------
# Control-channel models (target: an openflow.connection.ControlChannel)
# ---------------------------------------------------------------------------


class _ControlModel(FaultModel):
    default_target = "control"

    def arm(self, sim) -> None:
        from ..openflow.connection import ControlChannel

        if not isinstance(self.target, ControlChannel):
            raise FaultError(
                f"fault {self.name!r} ({self.kind}) needs a ControlChannel "
                f"target, got {type(self.target).__name__}"
            )
        super().arm(sim)


@fault_model("control_flap")
class ControlFlapModel(_ControlModel):
    """Flap the control session: every ``period`` the channel goes down
    for ``down_time``; messages sent while down are lost (the TCP
    session is gone — there is nobody to retransmit to)."""

    def __init__(self, spec, target, rng, injector) -> None:
        super().__init__(spec, target, rng, injector)
        self.period_ps = _param_ps(spec.params, "period", "10ms")
        self.down_ps = _param_ps(spec.params, "down_time", "2ms")
        if self.period_ps <= 0 or self.down_ps <= 0:
            raise FaultError(f"fault {spec.name!r}: period/down_time must be positive")
        if self.down_ps >= self.period_ps:
            raise FaultError(
                f"fault {spec.name!r}: down_time must be shorter than period"
            )
        self.flaps = 0

    def on_activate(self) -> None:
        self._down()

    def on_deactivate(self) -> None:
        if self.target.down:
            self.target.set_down(False)
            self.record("up")

    def _down(self) -> None:
        if not self.active:
            return
        self.flaps += 1
        self.target.set_down(True)
        self.record("down")
        self.sim.call_after(self.down_ps, self._up, daemon=True)

    def _up(self) -> None:
        if not self.active:
            return
        self.target.set_down(False)
        self.record("up")
        self.sim.call_after(self.period_ps - self.down_ps, self._down, daemon=True)


@fault_model("control_latency")
class ControlLatencySpikeModel(_ControlModel):
    """Add ``extra`` one-way latency to both directions of the control
    channel while active — a congested management network."""

    def __init__(self, spec, target, rng, injector) -> None:
        super().__init__(spec, target, rng, injector)
        self.extra_ps = _param_ps(spec.params, "extra", "1ms")
        if self.extra_ps < 0:
            raise FaultError(f"fault {spec.name!r}: extra must be >= 0")

    def on_activate(self) -> None:
        self.target.set_extra_latency(self.extra_ps)
        self.record("spike_start", extra_ps=self.extra_ps)

    def on_deactivate(self) -> None:
        self.target.set_extra_latency(0)
        self.record("spike_end")
