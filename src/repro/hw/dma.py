"""PCIe DMA engine: the loss-limited path from the card into the host.

The paper describes the monitor as having "a loss-limited path that gets
(a subset of) captured packets into the host". The limiter is physical:
a descriptor ring of finite depth drained at finite PCIe bandwidth, with
a fixed per-packet cost (descriptor + the capture metadata header that
carries the 64-bit timestamp). When packets arrive faster than the ring
drains, the hardware tail-drops and counts — capture loss is explicit
and measurable (experiment E6), never silent.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from ..errors import ConfigError
from ..net.packet import Packet
from ..sim import Simulator
from ..units import GBPS, wire_time_ps

#: OSNT prepends a metadata word (timestamp, port, caplen) to each
#: captured packet; descriptors add further per-packet PCIe overhead.
DEFAULT_PER_PACKET_OVERHEAD = 64
#: Effective host throughput of the NetFPGA-10G's first-generation PCIe
#: core — well below 4x10G, which is exactly why cutting/thinning exist.
DEFAULT_BANDWIDTH_BPS = 8 * GBPS
DEFAULT_RING_SLOTS = 1024


class DmaStats:
    def __init__(self) -> None:
        self.delivered = 0
        self.delivered_bytes = 0
        self.dropped = 0
        #: Transfer bytes (caplen + per-packet overhead) lost to ring-full
        #: tail drops, so capture loss (E6) is measurable in bytes, not
        #: just packets, on the same scale as ``delivered_bytes``.
        self.dropped_bytes = 0
        self.peak_ring_occupancy = 0


class DmaEngine:
    """Bounded-bandwidth, bounded-ring DMA from card to host."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "dma",
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        ring_slots: int = DEFAULT_RING_SLOTS,
        per_packet_overhead: int = DEFAULT_PER_PACKET_OVERHEAD,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ConfigError(f"{name}: bandwidth must be positive")
        if ring_slots <= 0:
            raise ConfigError(f"{name}: ring must have at least one slot")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.ring_slots = ring_slots
        self.per_packet_overhead = per_packet_overhead
        self.stats = DmaStats()
        #: Host-side callback, invoked when a packet's transfer completes.
        self.on_host_deliver: Optional[Callable[[Packet], None]] = None
        self._ring: Deque[Packet] = deque()
        self._busy = False
        #: Fault hooks (:mod:`repro.faults`): drain pauses until this
        #: instant, and an optional clamp on the usable ring depth.
        self._stalled_until = 0
        self._slot_clamp: Optional[int] = None
        self._waves_cache = None

    def _wave_ring(self, waves):
        """The ring-depth waveform under the armed recorder."""
        cache = self._waves_cache
        if cache is None or cache[0] is not waves:
            cache = self._waves_cache = (
                waves,
                waves.series(f"{self.name}.ring_depth", unit="slots").record,
            )
        return cache[1]

    def register_metrics(self, registry, prefix: str) -> None:
        """Publish the DMA's counters and ring state as pull gauges."""
        stats = self.stats
        registry.gauge(f"{prefix}.delivered", lambda: stats.delivered)
        registry.gauge(f"{prefix}.delivered_bytes", lambda: stats.delivered_bytes)
        registry.gauge(f"{prefix}.dropped", lambda: stats.dropped)
        registry.gauge(f"{prefix}.dropped_bytes", lambda: stats.dropped_bytes)
        registry.gauge(f"{prefix}.peak_ring_occupancy", lambda: stats.peak_ring_occupancy)
        registry.gauge(f"{prefix}.ring_occupancy", lambda: len(self._ring))
        registry.gauge(f"{prefix}.ring_slots", lambda: self.ring_slots)

    def stall_for(self, duration_ps: int) -> None:
        """Pause draining for ``duration_ps`` (fault injection).

        A transfer already in flight completes; the *next* transfer
        start is gated. Overlapping stalls extend, never shorten, the
        pause. The ring keeps accepting packets meanwhile, so a long
        enough stall surfaces as counted tail drops — loss stays
        explicit, exactly like genuine host backpressure.
        """
        if duration_ps < 0:
            raise ConfigError(f"{self.name}: stall duration must be >= 0")
        resume = self.sim.now + duration_ps
        if resume > self._stalled_until:
            self._stalled_until = resume

    def set_slot_clamp(self, slots: Optional[int]) -> None:
        """Clamp the usable ring depth (``None`` removes the clamp)."""
        if slots is not None and slots < 1:
            raise ConfigError(f"{self.name}: clamp must leave at least one slot")
        self._slot_clamp = slots

    @property
    def effective_ring_slots(self) -> int:
        if self._slot_clamp is None:
            return self.ring_slots
        return min(self.ring_slots, self._slot_clamp)

    def enqueue(self, packet: Packet) -> bool:
        """Hand a captured packet to the DMA; False if the ring is full."""
        clamp = self._slot_clamp
        limit = self.ring_slots if clamp is None else (
            clamp if clamp < self.ring_slots else self.ring_slots
        )
        if len(self._ring) >= limit:
            nbytes = self._transfer_bytes(packet)
            self.stats.dropped += 1
            self.stats.dropped_bytes += nbytes
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant(
                    self.sim.now, "packet", "drop",
                    {"dma": self.name, "reason": "ring_full", "bytes": nbytes},
                )
            spans = self.sim.spans
            if spans is not None:
                spans.close(
                    self.sim.now, packet, "dma_drop",
                    detail={"dma": self.name, "reason": "ring_full"},
                )
            return False
        self._ring.append(packet)
        if len(self._ring) > self.stats.peak_ring_occupancy:
            self.stats.peak_ring_occupancy = len(self._ring)
        waves = self.sim.waves
        if waves is not None:
            cache = self._waves_cache
            if cache is None or cache[0] is not waves:
                self._wave_ring(waves)
                cache = self._waves_cache
            cache[1](self.sim.now, len(self._ring))
        if not self._busy:
            self._start_next()
        return True

    def _transfer_bytes(self, packet: Packet) -> int:
        captured = (
            packet.capture_length
            if packet.capture_length is not None
            else len(packet.data)
        )
        return captured + self.per_packet_overhead

    def _start_next(self) -> None:
        if not self._ring:
            self._busy = False
            return
        self._busy = True
        if self.sim.now < self._stalled_until:
            self.sim.call_at(self._stalled_until, self._start_next)
            return
        packet = self._ring[0]
        transfer_ps = wire_time_ps(self._transfer_bytes(packet), self.bandwidth_bps)
        self.sim.call_after(transfer_ps, self._complete)

    def _complete(self) -> None:
        packet = self._ring.popleft()
        nbytes = self._transfer_bytes(packet)
        self.stats.delivered += 1
        self.stats.delivered_bytes += nbytes
        waves = self.sim.waves
        if waves is not None:
            cache = self._waves_cache
            if cache is None or cache[0] is not waves:
                self._wave_ring(waves)
                cache = self._waves_cache
            cache[1](self.sim.now, len(self._ring))
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(
                self.sim.now, "packet", "host",
                {"dma": self.name, "bytes": nbytes},
            )
        spans = self.sim.spans
        if spans is not None:
            spans.close(
                self.sim.now, packet, "delivered",
                name="host", detail={"dma": self.name, "bytes": nbytes},
            )
        if self.on_host_deliver is not None:
            self.on_host_deliver(packet)
        self._start_next()

    @property
    def ring_occupancy(self) -> int:
        return len(self._ring)
