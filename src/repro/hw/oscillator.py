"""Oscillator and GPS discipline models.

The NetFPGA's timestamp counter is driven by a crystal oscillator that
drifts relative to true time (tens of ppm for a cheap XO). OSNT corrects
drift and phase with an external GPS pulse-per-second input. This module
models both:

* :class:`Oscillator` maps simulated *true* time to *device* time through
  a piecewise-linear function whose slope (frequency error) can wander
  (random walk), and whose phase can be stepped or slewed.
* :class:`GpsDiscipline` is the PPS servo: once a second it measures the
  device-clock error against the (true-time) pulse and applies a
  proportional-integral correction, reproducing the sub-microsecond
  long-term accuracy the paper claims.
"""

from __future__ import annotations

import random
from typing import Optional

from ..errors import ConfigError
from ..sim import Simulator
from ..units import PS_PER_SEC


class Oscillator:
    """Piecewise-linear mapping from true time (ps) to device time (ps)."""

    def __init__(
        self,
        sim: Simulator,
        freq_error_ppm: float = 0.0,
        walk_ppb_per_interval: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.sim = sim
        #: Current slope: device seconds per true second.
        self._rate = 1.0 + freq_error_ppm * 1e-6
        self._walk_ppb = walk_ppb_per_interval
        self._rng = rng or random.Random(0)
        #: Segment anchor: (true time, device time) where the current
        #: slope took effect.
        self._anchor_true = sim.now
        self._anchor_device = float(sim.now)

    # -- reading the clock -------------------------------------------------

    def device_time(self, true_time: Optional[int] = None) -> int:
        """Device clock reading (ps) at a true time (default: now)."""
        if true_time is None:
            true_time = self.sim.now
        if true_time < self._anchor_true:
            raise ConfigError("cannot read the oscillator in its past")
        elapsed = true_time - self._anchor_true
        return round(self._anchor_device + elapsed * self._rate)

    def error_ps(self, true_time: Optional[int] = None) -> int:
        """Device-minus-true clock error at a true time (default: now)."""
        if true_time is None:
            true_time = self.sim.now
        return self.device_time(true_time) - true_time

    @property
    def rate(self) -> float:
        return self._rate

    @property
    def frequency_error_ppm(self) -> float:
        return (self._rate - 1.0) * 1e6

    # -- adjustments (used by the discipline servo) --------------------------

    def _rebase(self) -> None:
        """Anchor the segment at the current instant before a change."""
        now = self.sim.now
        self._anchor_device = float(self.device_time(now))
        self._anchor_true = now

    def adjust_rate(self, delta_rate: float) -> None:
        """Change the slope from now on (frequency steer)."""
        self._rebase()
        self._rate += delta_rate

    def step_phase(self, delta_ps: int) -> None:
        """Step the device clock by ``delta_ps`` immediately."""
        self._rebase()
        self._anchor_device += delta_ps

    def random_walk_tick(self) -> None:
        """Apply one interval of oscillator wander (called by the servo
        loop or a standalone process)."""
        if self._walk_ppb:
            self.adjust_rate(self._rng.gauss(0.0, self._walk_ppb * 1e-9))


class GpsDiscipline:
    """PPS servo: keeps an :class:`Oscillator` locked to true time.

    Every ``interval_ps`` (1 s for GPS) the servo observes the device
    clock error at the pulse edge and applies the classic
    step-and-steer discipline — "clock drift and phase coordination
    maintained by a GPS input", as the paper puts it:

    * **phase coordination** — the counter is stepped onto the pulse, so
      the residual error between pulses is only what the remaining
      frequency offset accrues in one interval;
    * **drift steer** — the frequency is nudged by ``-beta × error /
      interval``. Because the phase was zeroed at the previous pulse,
      ``error / interval`` *is* the current fractional frequency offset,
      so the offset decays geometrically as ``(1 - beta)^n``.

    With the default gain a 30 ppm oscillator is inside ±100 ns after a
    handful of pulses — the paper's "sub-µsec precision, corrected using
    an external GPS device".
    """

    #: Frequency steers are clamped to a plausible crystal range so a
    #: gross time-set offset cannot command an absurd slope.
    MAX_STEER = 500e-6

    def __init__(
        self,
        sim: Simulator,
        oscillator: Oscillator,
        interval_ps: int = PS_PER_SEC,
        beta: float = 0.7,
        enabled: bool = True,
    ) -> None:
        if interval_ps <= 0:
            raise ConfigError("PPS interval must be positive")
        if not 0.0 < beta < 2.0:
            raise ConfigError("beta must be in (0, 2) for a stable loop")
        self.sim = sim
        self.oscillator = oscillator
        self.interval_ps = interval_ps
        self.beta = beta
        self.enabled = enabled
        self.pulses_seen = 0
        #: Error observed at the last pulse, *before* correction.
        self.last_error_ps: Optional[int] = None
        self._schedule_next()

    def _schedule_next(self) -> None:
        # Daemon: the eternal PPS tick must not keep open-ended runs alive.
        self.sim.call_after(self.interval_ps, self._on_pulse, daemon=True)

    def _on_pulse(self) -> None:
        self.oscillator.random_walk_tick()
        if self.enabled:
            error = self.oscillator.error_ps()
            self.pulses_seen += 1
            self.last_error_ps = error
            self.oscillator.step_phase(-error)
            steer = -self.beta * error / self.interval_ps
            steer = max(min(steer, self.MAX_STEER), -self.MAX_STEER)
            self.oscillator.adjust_rate(steer)
        self._schedule_next()
