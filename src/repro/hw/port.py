"""Full-duplex Ethernet ports and the links that join them."""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..errors import LinkError
from ..net.packet import Packet
from ..sim import Simulator
from ..units import TEN_GBPS, ns
from .mac import RxMac, TxMac

#: Default propagation delay: ~1 m of fibre.
DEFAULT_PROPAGATION_PS = ns(5)

#: Sentinel an impairment hook returns to drop the frame on the wire.
DROP_FRAME = object()


class EthernetPort:
    """A full-duplex port: one :class:`TxMac` plus one :class:`RxMac`."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate_bps: float = TEN_GBPS,
        tx_fifo_bytes: int = 512 * 1024,
    ) -> None:
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.tx = TxMac(sim, name=f"{name}.tx", rate_bps=rate_bps, fifo_bytes=tx_fifo_bytes)
        self.rx = RxMac(sim, name=f"{name}.rx")
        self.link: Optional["Link"] = None

    def send(self, packet: Packet) -> bool:
        """Transmit a frame out this port (False on TX FIFO drop)."""
        return self.tx.enqueue(packet)

    def add_rx_sink(self, sink: Callable[[Packet], None]) -> None:
        self.rx.add_sink(sink)

    @property
    def connected(self) -> bool:
        return self.link is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        peer = self.link.peer_of(self).name if self.link else None
        return f"<EthernetPort {self.name} peer={peer}>"


class Link:
    """A bidirectional point-to-point cable between two ports.

    ``bit_error_rate`` models an impaired link: each frame is corrupted
    with probability ``1 - (1 - BER)^bits``; corrupted frames fail the
    FCS check at the receiving MAC and are dropped there, counted in
    ``rx.stats.errors`` — how a real tester observes a dirty fibre.
    """

    def __init__(
        self,
        port_a: EthernetPort,
        port_b: EthernetPort,
        propagation_ps: int = DEFAULT_PROPAGATION_PS,
        bit_error_rate: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if port_a.connected or port_b.connected:
            raise LinkError(
                f"cannot link {port_a.name} and {port_b.name}: a port is already connected"
            )
        if port_a is port_b:
            raise LinkError("cannot link a port to itself")
        if not 0.0 <= bit_error_rate < 1.0:
            raise LinkError(f"bit error rate must be in [0, 1), got {bit_error_rate}")
        self.port_a = port_a
        self.port_b = port_b
        self.propagation_ps = propagation_ps
        self.bit_error_rate = bit_error_rate
        self._rng = rng or random.Random(0)
        self.frames_corrupted = 0
        self._impairments: list = []
        port_a.tx.attach_delivery(self._make_deliver(port_b), propagation_ps)
        port_b.tx.attach_delivery(self._make_deliver(port_a), propagation_ps)
        port_a.link = self
        port_b.link = self

    def add_impairment(
        self, hook: Callable[[Packet, EthernetPort], Optional[int]]
    ) -> None:
        """Attach a per-frame fault hook (see :mod:`repro.faults`).

        The hook is called as ``hook(packet, destination_port)`` for
        every frame crossing the link, in either direction. Its verdict:
        ``None`` delivers normally, :data:`DROP_FRAME` loses the frame,
        and a positive integer delivers it after that many extra
        picoseconds (jitter/reordering). The first non-``None`` verdict
        wins. With no hooks attached the delivery path is unchanged.
        """
        self._impairments.append(hook)

    def _make_deliver(self, destination: EthernetPort) -> Callable[[Packet], None]:
        def deliver(packet: Packet) -> None:
            if self._impairments:
                for hook in self._impairments:
                    verdict = hook(packet, destination)
                    if verdict is None:
                        continue
                    if verdict is DROP_FRAME:
                        return  # lost on the wire
                    if verdict > 0:
                        destination.rx.sim.call_after(
                            verdict, destination.rx.receive, packet
                        )
                        return
                    break  # zero extra delay: deliver in order, now
            if self.bit_error_rate:
                bits = packet.frame_length * 8
                if self._rng.random() < 1.0 - (1.0 - self.bit_error_rate) ** bits:
                    self.frames_corrupted += 1
                    destination.rx.stats.errors += 1
                    return  # FCS check fails; the MAC never delivers it
            destination.rx.receive(packet)

        return deliver

    def peer_of(self, port: EthernetPort) -> EthernetPort:
        if port is self.port_a:
            return self.port_b
        if port is self.port_b:
            return self.port_a
        raise LinkError(f"port {port.name} is not on this link")


def connect(
    port_a: EthernetPort,
    port_b: EthernetPort,
    propagation_ps: int = DEFAULT_PROPAGATION_PS,
    bit_error_rate: float = 0.0,
    rng: Optional[random.Random] = None,
) -> Link:
    """Join two ports with a cable; returns the :class:`Link`."""
    return Link(port_a, port_b, propagation_ps, bit_error_rate=bit_error_rate, rng=rng)
