"""Byte-bounded packet FIFOs (the model for BRAM/SRAM queues).

Used for MAC transmit queues, switch output queues and the monitor's
capture buffer. Capacity is in bytes — matching how real buffer memory
fills — and overflow policy is tail-drop with a counter, which is what
both the NetFPGA queues and typical switch ASIC queues do.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..errors import ConfigError
from ..net.packet import Packet


class ByteFifo:
    """Tail-drop FIFO bounded by total buffered frame bytes."""

    def __init__(self, capacity_bytes: int, name: str = "fifo") -> None:
        if capacity_bytes <= 0:
            raise ConfigError(f"{name}: capacity must be positive")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._queue: Deque[Packet] = deque()
        self.occupancy_bytes = 0
        self.enqueued = 0
        self.dropped = 0
        self.peak_occupancy_bytes = 0

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, packet: Packet) -> bool:
        """Queue a packet; returns False (and counts a drop) on overflow."""
        size = packet.frame_length
        if self.occupancy_bytes + size > self.capacity_bytes:
            self.dropped += 1
            return False
        self._queue.append(packet)
        self.occupancy_bytes += size
        self.enqueued += 1
        if self.occupancy_bytes > self.peak_occupancy_bytes:
            self.peak_occupancy_bytes = self.occupancy_bytes
        return True

    def pop(self) -> Optional[Packet]:
        """Dequeue the oldest packet, or ``None`` when empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self.occupancy_bytes -= packet.frame_length
        return packet

    def peek(self) -> Optional[Packet]:
        return self._queue[0] if self._queue else None

    @property
    def is_empty(self) -> bool:
        return not self._queue

    def clear(self) -> None:
        self._queue.clear()
        self.occupancy_bytes = 0
