"""The batched (burst) datapath for the generator → monitor hot loop.

The per-packet datapath spends three to four kernel events on every
frame of a line-rate run: the generator's process wake, the TX MAC's
serializer chain event and the link's delivery event. At 14.88 Mpps a
millisecond of simulated traffic is ~45 000 events whose callbacks all
do the same integer arithmetic with different timestamps.

This module replaces that loop with *burst advancement*: one controller
event per work window advances packed scalar state — next wake time,
serializer clear time, FIFO occupancy, parked delivery runs — through
generator scheduling, TX-MAC serialization, link delay and RX delivery
arithmetically, touching the kernel only where ordering is observable.
Full :class:`~repro.net.packet.Packet` objects are never materialized on
an eligible lane; observation points that need them (capture buffers,
spans, tracers, filters, fault hooks) make a lane ineligible and it
falls back to the stock per-packet path, so results stay bit-identical
by construction (proven by tests/test_datapath_equivalence.py). The one
observation plane that stays on the fast path is the waveform recorder
(``sim.waves``): it needs only scalar state, so eligible lanes feed it
closed-form runs that reproduce the per-packet probes' sample streams
bit-identically (also proven by the equivalence tests).

Selection follows the ``REPRO_EVENT_QUEUE`` precedent: the
``REPRO_DATAPATH`` environment variable or the ``datapath=`` argument
of :class:`~repro.osnt.generator.engine.PortGenerator` picks
``"packet"`` or ``"burst"``.

Correctness rules the controller honours:

* **Window = inter-event gap.** A work window never crosses the next
  queued kernel event (daemon rate ticks, GPS pulses, other processes)
  or the active ``run(until=)`` bound, so no callback can observe
  counters mid-window and oscillator anchors are constant within one.
* **RX counters are parked.** Deliveries landing at or beyond the
  window edge are held and applied after the boundary events fire —
  the same order the per-packet path produces, where a rate tick
  (scheduled an interval earlier, lower seq) beats a same-time delivery.
* **Exact-time duties fire exactly.** The generator's finish (which
  fires its ``done`` signal and stamps ``finished_at_ps``) and the final
  trailing MAC/delivery time each get a dedicated controller firing at
  that precise simulated time, keeping ``sim.now`` at run end identical
  to the per-packet datapath.
"""

from __future__ import annotations

import math
import os
from collections import deque
from typing import Optional

from ..errors import ConfigError, SimulationError
from ..units import ETH_PREAMBLE_BYTES, frame_wire_bytes, wire_time_ps
from .timestamp import raw_to_ps

#: Selectable datapath implementations (see module docstring). Burst is
#: the default (like the timing-wheel event queue); ``REPRO_DATAPATH=packet``
#: is the escape hatch back to the stock per-packet processes.
DATAPATH_IMPLS = ("packet", "burst")
DEFAULT_DATAPATH_IMPL = "burst"

_STAMP_BYTES = 8
_INF = math.inf


def resolve_datapath(explicit: Optional[str] = None) -> str:
    """Pick the datapath implementation: argument, env var, default."""
    impl = explicit or os.environ.get("REPRO_DATAPATH") or DEFAULT_DATAPATH_IMPL
    if impl not in DATAPATH_IMPLS:
        raise ConfigError(
            f"unknown datapath {impl!r}; choose from {sorted(DATAPATH_IMPLS)}"
        )
    return impl


def attach_lane(engine) -> "BurstLane":
    """Register a started generator with its simulator's burst controller."""
    sim = engine.sim
    controller = getattr(sim, "_burst_controller", None)
    if controller is None:
        controller = BurstController(sim)
        sim._burst_controller = controller
    lane = BurstLane(controller, engine)
    controller.register(lane)
    return lane


class BurstController:
    """One foreground kernel event serving every burst lane of one sim.

    The controller keeps at most one pending event. Each firing defers
    to any other same-time events (rescheduling itself with a fresh,
    maximal sequence number — exactly how the per-packet path's events,
    scheduled later than long-standing daemon ticks, order after them),
    performs exact-time duties, then advances every lane to the next
    kernel event's time.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self.lanes: list = []
        self._event = None

    def register(self, lane: "BurstLane") -> None:
        self.lanes.append(lane)
        self.wake_at(self.sim.now)

    def wake_at(self, time_ps: int) -> None:
        """Ensure a firing no later than ``time_ps``."""
        event = self._event
        if event is not None and not event.fired:
            if event.time <= time_ps:
                return
            self.sim.cancel(event)
        self._event = self.sim.call_at(time_ps, self._fire)

    def _fire(self) -> None:
        self._event = None
        sim = self.sim
        now = sim.now
        queue = sim._queue
        # Defer: events already queued at this instant carry lower
        # sequence numbers than this firing would have given any work
        # scheduled now, so they go first — then we resume at the same
        # time. Terminates because boundary events do not re-arm
        # themselves at their own firing time.
        if queue.peek_time() == now:
            self._event = sim.call_at(now, self._fire)
            return
        for lane in self.lanes:
            if lane.pending_finish_at == now:
                lane.finish(now)
        if queue.peek_time() == now:
            # finish() fired done signals whose waiters woke at `now`;
            # let them run before batching further work.
            self._event = sim.call_at(now, self._fire)
            return
        horizon = queue.peek_time()
        limit = _INF if horizon is None else horizon
        until = sim._run_until
        if until is not None and until + 1 < limit:
            limit = until + 1
        need = _INF
        active = []
        for lane in self.lanes:
            lane.advance(limit)
            if lane.complete:
                continue
            active.append(lane)
            t = lane.next_required(limit)
            if t < need:
                need = t
        self.lanes = active
        if active and need != _INF:
            self._event = sim.call_at(int(need), self._fire)


class BurstLane:
    """Arithmetic emulation of one generator → TX MAC → link → RX path.

    Eligibility is audited at the first controller firing; ineligible
    lanes spawn the stock per-packet process instead (in registration
    order, preserving the packet datapath's scheduling order). Cheap
    invariants are re-checked every window; a mid-run violation (e.g.
    host capture enabled while a lane is active) fails loudly rather
    than silently dropping observations.
    """

    def __init__(self, controller: BurstController, engine) -> None:
        self.controller = controller
        self.sim = engine.sim
        self.engine = engine
        self.audited = False
        self.complete = False
        self.emitting = False
        self.finished = False
        self.pending_finish_at: Optional[int] = None
        self.tx = None
        self._waves_cache = None

    def _waves(self):
        """Waveform handles, or None while no recorder is armed.

        An armed :class:`repro.telemetry.WaveformRecorder` (``sim.waves``)
        deliberately does NOT appear in the eligibility audit: unlike
        spans and tracers it needs no materialized packets, so the lane
        stays on the closed-form path and reconstructs the exact
        per-packet sample streams from parked scalar state below.
        """
        waves = self.sim.waves
        if waves is None:
            return None
        cache = self._waves_cache
        if cache is None or cache[0] is not waves:
            cache = self._waves_cache = (
                waves,
                waves.series(f"{self.tx.name}.fifo_bytes", unit="bytes"),
                waves.rate_series(f"{self.tx.name}.wire_bytes", unit="bytes"),
                waves.rate_series(f"{self.rx.name}.wire_bytes", unit="bytes"),
            )
        return cache

    # -- eligibility -------------------------------------------------------

    def _audit(self) -> bool:
        from ..osnt.generator.schedule import ConstantGap, LineRate
        from ..osnt.generator.source import TemplateSource
        from ..osnt.monitor.capture import LATENCY_SANITY_PS, CapturePipeline

        engine = self.engine
        sim = self.sim
        port = engine.port
        tx = port.tx
        source = engine.source
        link = port.link
        if tx._burst_lane is not None:
            raise SimulationError(
                f"generator {engine.name!r} restarted while a previous burst "
                "lane is still draining its MAC; run with REPRO_DATAPATH=packet"
            )
        ok = (
            sim.spans is None
            and sim._tracer is None
            # Closed-loop sources (repro.flows transports) react to
            # every delivery; batched window advancement is unsafe
            # anywhere in the same simulation.
            and not getattr(sim, "_closed_loop_sources", 0)
            and type(source) is TemplateSource
            and not source.modifiers
            and (
                engine.limit_count is not None
                or engine.limit_duration_ps is not None
                or source.count is not None
            )
            and tx.on_start_of_frame is engine.timestamper
            and not engine.timestamper.enabled
            and tx._deliver is not None
            and not tx._busy
            and tx.fifo.is_empty
            and link is not None
            and not link._impairments
            and link.bit_error_rate == 0
        )
        pipeline = None
        if ok:
            rx = link.peer_of(port).rx
            sinks = rx._sinks
            if len(sinks) == 1:
                bound = sinks[0]
                owner = getattr(bound, "__self__", None)
                if (
                    isinstance(owner, CapturePipeline)
                    and getattr(bound, "__func__", None) is CapturePipeline._on_frame
                    and not owner.enabled
                    # Per-flow RTT keying needs real packets to hash.
                    and owner.flow_latency is None
                ):
                    pipeline = owner
        if pipeline is None:
            return False

        self.tx = tx
        self.fifo = tx.fifo
        self.link = link
        self.rx = rx
        self.pipeline = pipeline
        self.unit = pipeline.timestamp_unit
        self.sanity = LATENCY_SANITY_PS
        self.source = source
        self.template = source.template
        self.data = source.template.data
        # Packet.frame_length semantics: FCS included, sub-minimum
        # frames padded to 64 — the value every stock counter records.
        self.flen = max(len(self.data) + 4, 64)
        self.fwb = frame_wire_bytes(self.flen)
        rate = tx.rate_bps
        self.slot = wire_time_ps(self.fwb, rate)
        self.serialize = wire_time_ps(ETH_PREAMBLE_BYTES + max(self.flen, 64), rate)
        self.dconst = self.serialize + tx._delivery_delay_ps
        self.capacity = tx.fifo.capacity_bytes
        self.schedule = engine.schedule
        counts = [c for c in (engine.limit_count, source.count) if c is not None]
        self.max_count = min(counts) if counts else None
        now = sim.now
        self.deadline = (
            now + engine.limit_duration_ps
            if engine.limit_duration_ps is not None
            else None
        )
        self.index = 0
        self.next_wake = now + self.schedule.initial_gap()
        self.occupancy = 0
        self.backlog: deque = deque()
        self.clear: Optional[int] = None
        self.parked: deque = deque()  # (first_d, count, stride) runs
        self.emitting = True
        self.last_event_time = now
        self._tx_stamp_cache: dict = {}
        # The O(1) bulk path needs a stateless constant-gap schedule that
        # never queues (gap covers the wire slot) and can never tail-drop.
        gap = None
        if type(self.schedule) in (LineRate, ConstantGap):
            gap = self.schedule.gap_after(self.flen)
        self.bulk_gap = (
            gap
            if gap is not None and gap > 0 and gap >= self.slot and self.flen <= self.capacity
            else None
        )
        # Exactly periodic burst trains get closed-form windows too: the
        # schedule publishes (n, intra, period) and the lane checks that
        # no frame can ever queue (every start-to-start spacing covers
        # the wire slot) or tail-drop.
        self.train = None
        self.train_t0 = self.next_wake
        if self.bulk_gap is None:
            profile = self.schedule.train_profile(self.flen)
            if profile is not None:
                n, intra, period = profile
                tail = period - (n - 1) * intra
                if (
                    n >= 1
                    and intra >= self.slot
                    and tail >= self.slot
                    and self.flen <= self.capacity
                ):
                    self.train = (int(n), int(intra), int(period))
        engine.stats.started_at_ps = now
        tx._burst_lane = self
        return True

    def _recheck(self) -> None:
        engine = self.engine
        sim = self.sim
        source = self.source
        rx = self.rx
        pipeline = self.pipeline
        ok = (
            sim.spans is None
            and sim._tracer is None
            and not getattr(sim, "_closed_loop_sources", 0)
            and not self.link._impairments
            and self.link.bit_error_rate == 0
            and not pipeline.enabled
            and pipeline.flow_latency is None
            and len(rx._sinks) == 1
            and getattr(rx._sinks[0], "__self__", None) is pipeline
        )
        if ok and self.emitting:
            # Generator-side invariants only matter while frames are
            # still being emitted; a finished engine may legitimately be
            # reconfigured while its old lane drains.
            ok = (
                not engine.timestamper.enabled
                and self.tx.on_start_of_frame is engine.timestamper
                and engine.schedule is self.schedule
                and engine.source is source
                and not source.modifiers
                and source.template is self.template
                and self.template.data is self.data
            )
        if not ok:
            raise SimulationError(
                f"generator {engine.name!r}: observation point armed while a "
                "burst-datapath lane is active (spans/tracer/capture/faults/"
                "flow transports must be configured before start, or run "
                "with REPRO_DATAPATH=packet)"
            )

    def _fallback(self) -> None:
        from ..sim import spawn

        engine = self.engine
        engine._burst_lane = None
        self.complete = True
        self.emitting = False
        engine._process = spawn(engine.sim, engine._run(), name=engine.name)

    # -- window advancement ------------------------------------------------

    def advance(self, limit) -> None:
        """Process all lane work strictly before ``limit``."""
        if self.complete:
            return
        if not self.audited:
            self.audited = True
            if not self._audit():
                self._fallback()
                return
        else:
            self._recheck()
        if self.emitting:
            if self.bulk_gap is not None:
                self._emit_bulk(limit)
            elif self.train is not None:
                self._emit_train(limit)
            else:
                self._emit_serial(limit)
        work_limit = limit
        if self.pending_finish_at is not None:
            # Until the finish fires (at its exact time), stay at or
            # before it: a woken waiter must not observe later work.
            work_limit = min(work_limit, self.pending_finish_at + 1)
        self._drain_starts(work_limit - 1)
        self._apply_deliveries(work_limit)
        if (
            self.finished
            and not self.backlog
            and not self.parked
            and self.sim.now >= self.last_event_time
        ):
            self.complete = True
            if self.tx is not None and self.tx._burst_lane is self:
                self.tx._burst_lane = None

    def next_required(self, limit):
        """Earliest time this lane needs a controller firing."""
        if self.pending_finish_at is not None:
            return min(limit, self.pending_finish_at)
        if self.finished and not self.backlog and not self.parked:
            # One final (no-op) firing keeps sim.now's end-of-run value
            # identical to the trailing chain/delivery events of the
            # per-packet path.
            return self.last_event_time
        return limit

    def _emit_serial(self, limit) -> None:
        """Per-frame emission: any schedule, queueing and drops allowed."""
        w = self.next_wake
        index = self.index
        flen = self.flen
        max_count = self.max_count
        deadline = self.deadline
        schedule = self.schedule
        capacity = self.capacity
        fifo = self.fifo
        gen_stats = self.engine.stats
        tx_sizes = self.engine.tx_sizes
        waves = self._waves()
        while w < limit:
            if (max_count is not None and index >= max_count) or (
                deadline is not None and w >= deadline
            ):
                self._begin_finish(w)
                break
            self._drain_starts(w)
            if self.occupancy + flen > capacity:
                fifo.dropped += 1
                self.tx.stats.drops_overflow += 1
                gen_stats.tx_fifo_drops += 1
            else:
                occ = self.occupancy = self.occupancy + flen
                fifo.enqueued += 1
                if occ > fifo.peak_occupancy_bytes:
                    fifo.peak_occupancy_bytes = occ
                if waves is not None:
                    waves[1].record(w, occ)
                gen_stats.sent += 1
                gen_stats.sent_bytes += flen
                tx_sizes.record(flen)
                self.backlog.append(w)
                self._drain_starts(w)
            index += 1
            w += schedule.gap_after(flen)
        self.index = index
        self.next_wake = w

    def _emit_bulk(self, limit) -> None:
        """O(1) emission for constant-gap, never-queueing schedules."""
        gap = self.bulk_gap
        w = self.next_wake
        flen = self.flen
        remaining = _INF
        if self.max_count is not None:
            remaining = self.max_count - self.index
        if self.deadline is not None:
            by_deadline = (
                0 if self.deadline <= w else (self.deadline - 1 - w) // gap + 1
            )
            if by_deadline < remaining:
                remaining = by_deadline
        in_window = _INF if limit == _INF else (
            0 if limit <= w else (limit - 1 - w) // gap + 1
        )
        n = int(min(remaining, in_window))
        if n:
            s_last = w + (n - 1) * gap
            gen_stats = self.engine.stats
            gen_stats.sent += n
            gen_stats.sent_bytes += n * flen
            self.engine.tx_sizes.record_repeat(flen, n)
            fifo = self.fifo
            fifo.enqueued += n
            if flen > fifo.peak_occupancy_bytes:
                fifo.peak_occupancy_bytes = flen
            txs = self.tx.stats
            txs.packets += n
            txs.bytes += n * flen
            txs.wire_bytes += n * self.fwb
            txs.busy_ps += n * self.slot
            if txs.first_activity_ps is None:
                txs.first_activity_ps = w
            txs.last_activity_ps = s_last
            waves = self._waves()
            if waves is not None:
                # Per frame the packet path pushes (occupancy flen) and
                # immediately pops back to 0 at the same instant, and
                # clocks one wire-slot of bytes at the start time.
                waves[1].record_toggle_run(w, n, gap, flen, 0)
                waves[2].record_run(w, n, gap, self.fwb)
            self.clear = clear = s_last + self.slot
            if clear > self.last_event_time:
                self.last_event_time = clear
            d_first = w + self.dconst
            self.parked.append((d_first, n, gap))
            d_last = d_first + (n - 1) * gap
            if d_last > self.last_event_time:
                self.last_event_time = d_last
            self.index += n
            self.next_wake = w = w + n * gap
        if n == remaining:
            # Count or deadline reached: the next wake is the finishing one.
            self._begin_finish(w)

    # -- closed-form burst trains ------------------------------------------

    def _train_count_before(self, t: int) -> int:
        """Frames whose start time is strictly before ``t``."""
        n, intra, period = self.train
        dt = t - self.train_t0
        if dt <= 0:
            return 0
        full, rem = divmod(dt - 1, period)
        return full * n + min(n, rem // intra + 1)

    def _train_start(self, i: int) -> int:
        """Start time of frame ``i`` of the periodic train timeline."""
        n, intra, period = self.train
        full, pos = divmod(i, n)
        return self.train_t0 + full * period + pos * intra

    def _emit_train(self, limit) -> None:
        """O(bursts) emission for exactly periodic, never-queueing trains."""
        n, intra, period = self.train
        i = self.index
        w = self.next_wake
        flen = self.flen
        remaining = _INF
        if self.max_count is not None:
            remaining = self.max_count - i
        if self.deadline is not None:
            by_deadline = self._train_count_before(self.deadline) - i
            if by_deadline < remaining:
                remaining = by_deadline
        in_window = (
            _INF if limit == _INF else self._train_count_before(limit) - i
        )
        m = int(min(remaining, in_window))
        if m > 0:
            last = i + m - 1
            s_first = self._train_start(i)
            s_last = self._train_start(last)
            gen_stats = self.engine.stats
            gen_stats.sent += m
            gen_stats.sent_bytes += m * flen
            self.engine.tx_sizes.record_repeat(flen, m)
            fifo = self.fifo
            fifo.enqueued += m
            if flen > fifo.peak_occupancy_bytes:
                fifo.peak_occupancy_bytes = flen
            txs = self.tx.stats
            txs.packets += m
            txs.bytes += m * flen
            txs.wire_bytes += m * self.fwb
            txs.busy_ps += m * self.slot
            if txs.first_activity_ps is None:
                txs.first_activity_ps = s_first
            txs.last_activity_ps = s_last
            self.clear = clear = s_last + self.slot
            if clear > self.last_event_time:
                self.last_event_time = clear
            # One parked delivery run per (partial) burst: constant
            # intra-burst stride, arbitrary inter-burst spacing.
            dconst = self.dconst
            t0 = self.train_t0
            parked = self.parked
            waves = self._waves()
            for burst in range(i // n, last // n + 1):
                lo = max(i, burst * n)
                hi = min(last, burst * n + n - 1)
                s0 = t0 + burst * period + (lo - burst * n) * intra
                if waves is not None:
                    waves[1].record_toggle_run(s0, hi - lo + 1, intra, flen, 0)
                    waves[2].record_run(s0, hi - lo + 1, intra, self.fwb)
                parked.append((s0 + dconst, hi - lo + 1, intra))
            d_last = s_last + dconst
            if d_last > self.last_event_time:
                self.last_event_time = d_last
            self.index = last + 1
            self.next_wake = w = self._train_start(last + 1)
        if m == remaining:
            # Count or deadline reached: the next wake is the finishing one.
            self._begin_finish(w)

    def _begin_finish(self, wake: int) -> None:
        self.pending_finish_at = wake
        self.emitting = False

    def _drain_starts(self, t) -> None:
        """Start serialization of queued frames whose start time is <= t."""
        backlog = self.backlog
        if not backlog:
            return
        clear = self.clear
        stats = self.tx.stats
        flen = self.flen
        slot = self.slot
        fwb = self.fwb
        dconst = self.dconst
        parked = self.parked
        waves = self._waves()
        while backlog:
            push = backlog[0]
            s = push if (clear is None or clear <= push) else clear
            if s > t:
                break
            backlog.popleft()
            self.occupancy -= flen
            stats.packets += 1
            stats.bytes += flen
            stats.wire_bytes += fwb
            if stats.first_activity_ps is None:
                stats.first_activity_ps = s
            stats.last_activity_ps = s
            stats.busy_ps += slot
            if waves is not None:
                waves[1].record(s, self.occupancy)
                waves[2].record(s, fwb)
            clear = s + slot
            parked.append((s + dconst, 1, 0))
        self.clear = clear
        if clear is not None and clear > self.last_event_time:
            self.last_event_time = clear
        if parked:
            last_d = parked[-1][0] + (parked[-1][1] - 1) * parked[-1][2]
            if last_d > self.last_event_time:
                self.last_event_time = last_d

    def _apply_deliveries(self, limit) -> None:
        """Apply RX-side effects for deliveries strictly before ``limit``."""
        parked = self.parked
        while parked:
            d0, n, stride = parked[0]
            if d0 >= limit:
                break
            if stride:
                m = int(min(n, (limit - 1 - d0) // stride + 1))
            else:
                m = n
            parked.popleft()
            if m < n:
                parked.appendleft((d0 + m * stride, n - m, stride))
            self._apply_rx(d0, m, stride)

    def _apply_rx(self, d0: int, m: int, stride: int) -> None:
        flen = self.flen
        last = d0 + (m - 1) * stride
        waves = self._waves()
        if waves is not None:
            waves[3].record_run(d0, m, stride, self.fwb)
        rxs = self.rx.stats
        rxs.packets += m
        rxs.bytes += m * flen
        rxs.wire_bytes += m * self.fwb
        if rxs.first_activity_ps is None:
            rxs.first_activity_ps = d0
        rxs.last_activity_ps = last
        mon = self.pipeline.stats
        mon.rx_packets += m
        mon.rx_bytes += m * flen
        if mon.first_rx_ps is None:
            mon.first_rx_ps = d0
        mon.last_rx_ps = last
        offset = self.pipeline._latency_offset
        if offset is not None:
            stamp = self._tx_stamp_cache.get(offset)
            if stamp is None:
                data = self.data
                if offset + _STAMP_BYTES <= len(data):
                    stamp = raw_to_ps(
                        int.from_bytes(data[offset : offset + _STAMP_BYTES], "big")
                    )
                else:
                    stamp = -1  # stamp field does not fit: always skipped
                self._tx_stamp_cache[offset] = stamp
            if stamp < 0:
                self.pipeline.latency_skipped += m
            else:
                unit = self.unit
                record = self.pipeline.latency.record
                sanity = self.sanity
                skipped = 0
                for k in range(m):
                    delta = unit.now_ps_at(d0 + k * stride) - stamp
                    if 0 <= delta <= sanity:
                        record(delta)
                    else:
                        skipped += 1
                if skipped:
                    self.pipeline.latency_skipped += skipped

    # -- exact-time duties -------------------------------------------------

    def finish(self, now: int) -> None:
        """Run the generator's finish at its exact simulated time."""
        self.pending_finish_at = None
        if now > self.last_event_time:
            self.last_event_time = now
        # Same-time serializer/delivery work precedes the finish in the
        # per-packet event order; apply it so woken waiters see it.
        self._drain_starts(now)
        self._apply_deliveries(now + 1)
        self.finished = True
        engine = self.engine
        if engine._burst_lane is self:
            engine._burst_lane = None
        engine._finish()

    def abort(self) -> None:
        """Stop emitting (engine.stop()); queued frames keep draining."""
        if self.complete:
            return
        if not self.audited:
            # Never advanced: nothing was emitted, nothing to drain.
            self.audited = True
            self.complete = True
            self.emitting = False
            self.finished = True
            return
        now = self.sim.now
        if self.emitting:
            # Emissions at exactly `now` precede the stopping call in the
            # per-packet event order; include them, then cut the stream.
            if self.bulk_gap is not None:
                self._emit_bulk(now + 1)
            elif self.train is not None:
                self._emit_train(now + 1)
            else:
                self._emit_serial(now + 1)
        self.pending_finish_at = None
        self.emitting = False
        if now > self.last_event_time:
            self.last_event_time = now
        self._drain_starts(now)
        self._apply_deliveries(now + 1)
        self.finished = True
        self.controller.wake_at(now)
