"""Hardware register files and the AXI-Lite control bus.

OSNT's software API drives the FPGA design through memory-mapped 32-bit
registers. The model keeps that structure: each hardware block exposes a
:class:`RegisterFile`, the blocks are attached to an :class:`AxiLiteBus`
at their base addresses, and the software layer (``repro.osnt.api``)
reads and writes through the bus — so the control path mirrors the real
driver rather than poking Python attributes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..errors import RegisterError

MASK32 = 0xFFFFFFFF


class Register:
    """One 32-bit register: a value plus optional read/write hooks."""

    def __init__(
        self,
        name: str,
        offset: int,
        reset: int = 0,
        readable: bool = True,
        writable: bool = True,
        on_write: Optional[Callable[[int], None]] = None,
        on_read: Optional[Callable[[], int]] = None,
    ) -> None:
        if offset % 4:
            raise RegisterError(f"register {name!r} offset {offset:#x} not word aligned")
        self.name = name
        self.offset = offset
        self.reset = reset & MASK32
        self.readable = readable
        self.writable = writable
        self.on_write = on_write
        self.on_read = on_read
        self.value = self.reset

    def read(self) -> int:
        if not self.readable:
            raise RegisterError(f"register {self.name!r} is write-only")
        if self.on_read is not None:
            self.value = self.on_read() & MASK32
        return self.value

    def write(self, value: int) -> None:
        if not self.writable:
            raise RegisterError(f"register {self.name!r} is read-only")
        if not 0 <= value <= MASK32:
            raise RegisterError(f"value {value:#x} does not fit in 32 bits")
        self.value = value
        if self.on_write is not None:
            self.on_write(value)


class RegisterFile:
    """The register map of one hardware block."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._by_offset: Dict[int, Register] = {}
        self._by_name: Dict[str, Register] = {}

    def add(self, name: str, offset: int, **kwargs) -> Register:
        """Define a register; offsets and names must be unique."""
        register = Register(name, offset, **kwargs)
        if offset in self._by_offset:
            raise RegisterError(f"{self.name}: offset {offset:#x} already in use")
        if name in self._by_name:
            raise RegisterError(f"{self.name}: register {name!r} already defined")
        self._by_offset[offset] = register
        self._by_name[name] = register
        return register

    def register(self, name: str) -> Register:
        try:
            return self._by_name[name]
        except KeyError:
            raise RegisterError(f"{self.name}: no register named {name!r}") from None

    def read(self, offset: int) -> int:
        return self._lookup(offset).read()

    def write(self, offset: int, value: int) -> None:
        self._lookup(offset).write(value)

    def read_by_name(self, name: str) -> int:
        return self.register(name).read()

    def write_by_name(self, name: str, value: int) -> None:
        self.register(name).write(value)

    def _lookup(self, offset: int) -> Register:
        try:
            return self._by_offset[offset]
        except KeyError:
            raise RegisterError(
                f"{self.name}: no register at offset {offset:#x}"
            ) from None

    def reset_all(self) -> None:
        for register in self._by_offset.values():
            register.value = register.reset

    def dump(self) -> Dict[str, int]:
        """Snapshot of raw values (no read hooks) for debugging."""
        return {name: reg.value for name, reg in self._by_name.items()}


class AxiLiteBus:
    """Routes 32-bit reads/writes to register files by address range."""

    def __init__(self) -> None:
        self._windows: List[Tuple[int, int, RegisterFile]] = []

    def attach(self, base: int, size: int, regfile: RegisterFile) -> None:
        """Map ``regfile`` at ``[base, base+size)``; ranges must not overlap."""
        end = base + size
        for other_base, other_end, other in self._windows:
            if base < other_end and other_base < end:
                raise RegisterError(
                    f"window {base:#x}-{end:#x} overlaps {other.name} "
                    f"at {other_base:#x}-{other_end:#x}"
                )
        self._windows.append((base, end, regfile))
        self._windows.sort()

    def _route(self, address: int) -> Tuple[RegisterFile, int]:
        for base, end, regfile in self._windows:
            if base <= address < end:
                return regfile, address - base
        raise RegisterError(f"bus error: no block at address {address:#x}")

    def read32(self, address: int) -> int:
        regfile, offset = self._route(address)
        return regfile.read(offset)

    def write32(self, address: int, value: int) -> None:
        regfile, offset = self._route(address)
        regfile.write(offset, value)
