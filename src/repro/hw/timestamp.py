"""The OSNT 64-bit timestamp unit.

The hardware keeps a 64-bit counter in 32.32 fixed-point seconds,
advanced every cycle of the 160 MHz datapath clock — giving the 6.25 ns
resolution the paper quotes. Both the monitor (stamp on receipt at the
MAC) and the generator (stamp just before the transmit MAC) instantiate
this unit, driven by the same GPS-disciplined oscillator.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Simulator
from ..units import PS_PER_SEC
from .oscillator import Oscillator

#: Datapath clock period: 160 MHz → 6.25 ns → 6250 ps.
TICK_PS = 6_250
#: Fixed-point scale of the 64-bit counter (32 fractional bits).
FRACTION_SCALE = 1 << 32


def ps_to_raw(device_ps: int) -> int:
    """Device time in ps → 64-bit 32.32 fixed-point seconds."""
    return (device_ps * FRACTION_SCALE) // PS_PER_SEC


def raw_to_ps(raw: int) -> int:
    """64-bit 32.32 fixed-point seconds → device time in ps (floor)."""
    return (raw * PS_PER_SEC) // FRACTION_SCALE


class TimestampUnit:
    """Produces hardware timestamps quantised to the 160 MHz clock.

    Without an oscillator the unit reads ideal simulated time (useful in
    unit tests); with one it reads the drifting/disciplined device clock,
    so captured timestamps exhibit exactly the drift behaviour E2
    measures.
    """

    def __init__(self, sim: Simulator, oscillator: Optional[Oscillator] = None) -> None:
        self.sim = sim
        self.oscillator = oscillator
        self._frozen_at: Optional[int] = None

    def freeze(self) -> None:
        """Latch the counter (fault injection): every read returns the
        value at the instant of the freeze until :meth:`unfreeze`."""
        if self._frozen_at is None:
            self._frozen_at = self._read()

    def unfreeze(self) -> None:
        self._frozen_at = None

    @property
    def frozen(self) -> bool:
        return self._frozen_at is not None

    def _read(self) -> int:
        if self.oscillator is not None:
            return self.oscillator.device_time()
        return self.sim.now

    def device_time_ps(self) -> int:
        """Unquantised device-clock reading at the current instant."""
        if self._frozen_at is not None:
            return self._frozen_at
        return self._read()

    def now_ps(self) -> int:
        """Quantised device time: floor to the last 6.25 ns tick."""
        device = self.device_time_ps()
        return device - (device % TICK_PS)

    def now_ps_at(self, true_time_ps: int) -> int:
        """Quantised device time as it will read at ``true_time_ps``.

        Exactly what :meth:`now_ps` would return with the simulation
        clock at ``true_time_ps``, *provided* the oscillator is not
        rebased (GPS pulse, phase step) between now and then. The
        batched datapath uses this to stamp frames whose delivery time
        is known arithmetically; its work windows never span an
        oscillator event, so the reading is exact.
        """
        if self._frozen_at is not None:
            device = self._frozen_at
        elif self.oscillator is not None:
            device = self.oscillator.device_time(true_time_ps)
        else:
            device = true_time_ps
        return device - (device % TICK_PS)

    def now_raw(self) -> int:
        """The 64-bit counter value the hardware would latch now."""
        return ps_to_raw(self.now_ps()) & 0xFFFFFFFFFFFFFFFF

    @staticmethod
    def resolution_ps() -> int:
        return TICK_PS
