"""NetFPGA-10G hardware substrate: MACs, links, DMA, clocks, registers."""

from .burst import DATAPATH_IMPLS, DEFAULT_DATAPATH_IMPL, resolve_datapath
from .dma import DmaEngine, DmaStats
from .fifo import ByteFifo
from .mac import MacStats, RxMac, TxMac
from .oscillator import GpsDiscipline, Oscillator
from .port import DEFAULT_PROPAGATION_PS, EthernetPort, Link, connect
from .registers import AxiLiteBus, Register, RegisterFile
from .timestamp import FRACTION_SCALE, TICK_PS, TimestampUnit, ps_to_raw, raw_to_ps

__all__ = [
    "AxiLiteBus",
    "ByteFifo",
    "DATAPATH_IMPLS",
    "DEFAULT_DATAPATH_IMPL",
    "DEFAULT_PROPAGATION_PS",
    "DmaEngine",
    "DmaStats",
    "EthernetPort",
    "FRACTION_SCALE",
    "GpsDiscipline",
    "Link",
    "MacStats",
    "Oscillator",
    "Register",
    "RegisterFile",
    "RxMac",
    "TICK_PS",
    "TimestampUnit",
    "TxMac",
    "connect",
    "ps_to_raw",
    "raw_to_ps",
    "resolve_datapath",
]
