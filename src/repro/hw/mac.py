"""10GbE MAC models.

The transmit MAC serializes one frame at a time at the configured line
rate, accounting for preamble, FCS, minimum-frame padding and the
inter-frame gap — this is where "full line rate regardless of packet
size" becomes a modelled property rather than an assumption. The receive
MAC delivers frames to its sink at last-bit arrival (store-and-forward),
which is also the instant the OSNT monitor timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..net.packet import Packet
from ..sim import Simulator
from ..units import (
    ETH_PREAMBLE_BYTES,
    TEN_GBPS,
    frame_wire_bytes,
    wire_time_ps,
)


@dataclass
class MacStats:
    """Counters kept by each MAC direction."""

    packets: int = 0
    bytes: int = 0  # frame bytes incl. FCS (what rate maths use)
    #: Padded wire bytes incl. preamble and IFG — the bytes the
    #: serializer actually clocked out. For sub-minimum frames this
    #: disagrees with ``bytes`` (the MAC pads to 64); utilisation maths
    #: must use this counter, not ``bytes``.
    wire_bytes: int = 0
    errors: int = 0
    #: Frames lost to genuine FIFO exhaustion (tail drop under load).
    drops_overflow: int = 0
    #: Frames removed on purpose by a fault model (:mod:`repro.faults`).
    #: Kept apart from ``drops_overflow`` so an injected-loss experiment
    #: can still prove the un-impaired path itself lost nothing.
    drops_injected: int = 0
    #: Time the serializer was busy (TX only), for utilisation maths.
    busy_ps: int = 0
    first_activity_ps: Optional[int] = None
    last_activity_ps: Optional[int] = None

    def note(self, now: int, frame_bytes: int) -> None:
        self.packets += 1
        self.bytes += frame_bytes
        self.wire_bytes += frame_wire_bytes(frame_bytes)
        if self.first_activity_ps is None:
            self.first_activity_ps = now
        self.last_activity_ps = now

    def register_metrics(self, registry, prefix: str) -> None:
        """Publish these counters as pull gauges under ``prefix``."""
        registry.gauge(f"{prefix}.packets", lambda: self.packets)
        registry.gauge(f"{prefix}.bytes", lambda: self.bytes)
        registry.gauge(f"{prefix}.wire_bytes", lambda: self.wire_bytes)
        registry.gauge(f"{prefix}.errors", lambda: self.errors)
        registry.gauge(f"{prefix}.drops.overflow", lambda: self.drops_overflow)
        registry.gauge(f"{prefix}.drops.injected", lambda: self.drops_injected)
        registry.gauge(f"{prefix}.busy_ps", lambda: self.busy_ps)


class TxMac:
    """Serializing transmit MAC with a byte-bounded staging FIFO."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "tx",
        rate_bps: float = TEN_GBPS,
        fifo_bytes: int = 512 * 1024,
    ) -> None:
        from .fifo import ByteFifo

        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.fifo = ByteFifo(fifo_bytes, name=f"{name}.fifo")
        self.stats = MacStats()
        self._busy = False
        #: Called with the packet at start of serialization — the point
        #: "just before the transmit MAC" where OSNT embeds timestamps.
        self.on_start_of_frame: Optional[Callable[[Packet], None]] = None
        #: Wired by the Link: (packet) -> None, invoked at last-bit
        #: arrival on the peer (serialization + propagation later).
        self._deliver: Optional[Callable[[Packet], None]] = None
        self._delivery_delay_ps = 0
        #: Set while a burst-datapath lane is emulating this MAC's
        #: serialization arithmetically (see :mod:`repro.hw.burst`).
        #: Foreign enqueues would corrupt that emulation, so they fail
        #: loudly instead of silently interleaving.
        self._burst_lane = None
        #: (recorder, fifo waveform, wire-rate waveform) cache — rebuilt
        #: when a different WaveformRecorder is armed on the simulator.
        self._waves_cache = None

    def attach_delivery(self, deliver: Callable[[Packet], None], propagation_ps: int) -> None:
        self._deliver = deliver
        self._delivery_delay_ps = propagation_ps

    @property
    def connected(self) -> bool:
        return self._deliver is not None

    def enqueue(self, packet: Packet) -> bool:
        """Stage a frame for transmission; False if the FIFO tail-drops."""
        if self._burst_lane is not None:
            from ..errors import SimulationError

            raise SimulationError(
                f"MAC {self.name!r} is driven by a burst-datapath lane; "
                "per-packet enqueues would corrupt its emulated state "
                "(run with REPRO_DATAPATH=packet)"
            )
        if not self.fifo.push(packet):
            self.stats.drops_overflow += 1
            return False
        waves = self.sim.waves
        if waves is not None:
            cache = self._waves_cache
            if cache is None or cache[0] is not waves:
                cache = self._wave_series(waves)
            cache[1](self.sim.now, self.fifo.occupancy_bytes)
        if not self._busy:
            self._start_next()
        return True

    def _wave_series(self, waves):
        """This MAC's waveform probes under the armed recorder.

        Caches *bound* ``record`` methods: the probes fire per frame,
        so the attribute lookups are paid once per recorder, not once
        per packet.
        """
        cache = self._waves_cache
        if cache is None or cache[0] is not waves:
            cache = self._waves_cache = (
                waves,
                waves.series(f"{self.name}.fifo_bytes", unit="bytes").record,
                waves.rate_series(f"{self.name}.wire_bytes", unit="bytes").record,
            )
        return cache

    def _start_next(self) -> None:
        packet = self.fifo.pop()
        if packet is None:
            self._busy = False
            return
        self._busy = True
        if self.on_start_of_frame is not None:
            self.on_start_of_frame(packet)
        frame_len = packet.frame_length
        # Last bit leaves after preamble + padded frame; the IFG only
        # gates when the *next* frame may start.
        preamble_and_frame = ETH_PREAMBLE_BYTES + max(frame_len, 64)
        serialize_ps = wire_time_ps(preamble_and_frame, self.rate_bps)
        wire_bytes = frame_wire_bytes(frame_len)
        slot_ps = wire_time_ps(wire_bytes, self.rate_bps)
        now = self.sim.now
        self.stats.note(now, frame_len)
        self.stats.busy_ps += slot_ps
        waves = self.sim.waves
        if waves is not None:
            cache = self._waves_cache
            if cache is None or cache[0] is not waves:
                cache = self._wave_series(waves)
            cache[1](now, self.fifo.occupancy_bytes)
            cache[2](now, wire_bytes)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(now, "packet", "tx", {"mac": self.name, "bytes": frame_len})
        spans = self.sim.spans
        if spans is not None:
            spans.hop(now, packet, "mac_tx", {"mac": self.name, "bytes": frame_len})
        if self._deliver is not None:
            self.sim.call_after(serialize_ps + self._delivery_delay_ps, self._deliver, packet)
        self.sim.call_after(slot_ps, self._start_next)

    @property
    def idle(self) -> bool:
        return not self._busy and self.fifo.is_empty


class RxMac:
    """Receive MAC: fans a delivered frame out to registered sinks."""

    def __init__(self, sim: Simulator, name: str = "rx") -> None:
        self.sim = sim
        self.name = name
        self.stats = MacStats()
        self._sinks: List[Callable[[Packet], None]] = []
        self._waves_cache = None

    def add_sink(self, sink: Callable[[Packet], None]) -> None:
        """Register a callback invoked at last-bit arrival of each frame."""
        self._sinks.append(sink)

    def receive(self, packet: Packet) -> None:
        now = self.sim.now
        self.stats.note(now, packet.frame_length)
        waves = self.sim.waves
        if waves is not None:
            cache = self._waves_cache
            if cache is None or cache[0] is not waves:
                cache = self._waves_cache = (
                    waves,
                    waves.rate_series(f"{self.name}.wire_bytes", unit="bytes").record,
                )
            cache[1](now, frame_wire_bytes(packet.frame_length))
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(
                self.sim.now, "packet", "rx", {"mac": self.name, "bytes": packet.frame_length}
            )
        spans = self.sim.spans
        if spans is not None:
            spans.hop(self.sim.now, packet, "mac_rx", {"mac": self.name})
        for sink in self._sinks:
            sink(packet)
