"""``osnt-sweep`` — run declarative experiment campaigns from the shell.

Subcommands:

* ``run SPEC.json`` — execute (or resume) a sweep across workers;
  ``--cache DIR`` serves/stores shards in a shared result store and
  ``--scheduler socket`` dispatches to remote ``osnt-worker``
  processes instead of the local pool.
* ``expand SPEC.json`` — show the shard expansion without running it.
* ``scenarios`` — list every registered scenario.
* ``example`` — print a ready-to-edit spec.
* ``cache stats DIR`` / ``cache gc DIR --older-than AGE`` — inspect or
  prune a content-addressed result store.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..analysis.report import format_table
from ..errors import SweepError
from ..obs.flight import DEFAULT_HEARTBEAT_S
from .execution import SweepRunner
from .registry import get_scenario, list_scenarios
from .spec import ExperimentSpec, canonical_json

_EXAMPLE_SPEC = {
    "name": "latency-vs-load",
    "scenario": "legacy_latency",
    "params": {"frame_size": 512, "duration": "2ms"},
    "axes": {"load": [0.2, 0.4, 0.6, 0.8, 1.0]},
    "repeats": 1,
    "seed": 0,
    "timeout_s": 120.0,
    "retries": 1,
}

_EXAMPLE_FAULTS_SPEC = {
    "name": "latency-vs-loss",
    "scenario": "lossy_link_latency",
    "params": {"frame_size": 256, "duration": "2ms"},
    "axes": {"loss_rate": [0.0, 0.005, 0.02, 0.05], "burst": [1.0, 8.0]},
    "repeats": 1,
    "seed": 0,
    "timeout_s": 120.0,
    "retries": 1,
}

_EXAMPLE_TRAFFIC_SPEC = {
    "name": "incast-vs-burstiness",
    "scenario": "incast_burst",
    "params": {"senders": 3, "frame_size": 512, "duration": "2ms"},
    "axes": {
        "traffic": [
            {"model": "cbr", "params": {"rate": "3Gbps"}},
            {
                "model": "burst_train",
                "params": {"frames_per_burst": 32, "inter_burst_gap": "40us"},
            },
            {
                "model": "burst_train",
                "params": {"frames_per_burst": 128, "inter_burst_gap": "160us"},
            },
        ]
    },
    "repeats": 1,
    "seed": 0,
    "timeout_s": 120.0,
    "retries": 1,
}


def _load_spec(path: str) -> ExperimentSpec:
    if path == "-":
        return ExperimentSpec.from_json(sys.stdin.read())
    with open(path) as handle:
        return ExperimentSpec.from_json(handle.read())


def _cmd_run(args) -> int:
    spec = _load_spec(args.spec)
    on_progress = None
    if args.flight:
        # Progress lines go to stderr so stdout stays clean for --merged.
        def on_progress(line: str) -> None:
            print(line, file=sys.stderr, flush=True)

    scheduler = None
    if args.scheduler == "socket":
        from ..cluster import SocketScheduler

        host, _, port = args.listen.rpartition(":")
        scheduler = SocketScheduler(
            host=host or "127.0.0.1",
            port=int(port),
            spawn_workers=args.spawn_workers,
            heartbeat_s=args.heartbeat_s,
            heartbeat_timeout_s=args.worker_timeout_s,
        )
        print(
            f"socket scheduler listening on "
            f"{scheduler.address[0]}:{scheduler.address[1]} "
            f"(connect workers with: osnt-worker --connect "
            f"{scheduler.address[0]}:{scheduler.address[1]})",
            file=sys.stderr,
        )
    runner = SweepRunner(
        spec,
        workers=args.workers,
        checkpoint_dir=args.checkpoint,
        flight_dir=args.flight,
        heartbeat_s=args.heartbeat_s,
        stall_after_s=args.stall_after_s,
        on_progress=on_progress,
        scheduler=scheduler,
        cache_dir=args.cache,
    )
    report = runner.run(resume=not args.no_resume, max_shards=args.max_shards)
    print(report.summary())
    if args.cache and report.from_cache:
        print(
            f"{len(report.from_cache)} shard(s) served from cache {args.cache}",
            file=sys.stderr,
        )
    if args.merged:
        print(report.merged_json())
    if args.json:
        report.save_json(args.json)
        print(f"wrote report to {args.json}", file=sys.stderr)
    if report.stalled:
        indexes = ", ".join(str(s.index) for s in report.stalled)
        print(
            f"flight recorder flagged shard(s) {indexes} as stalled",
            file=sys.stderr,
        )
    if report.failed:
        print(
            f"{len(report.failed)} shard(s) failed after retries", file=sys.stderr
        )
        return 1
    return 0


def _cmd_expand(args) -> int:
    spec = _load_spec(args.spec)
    get_scenario(spec.scenario)  # fail fast on unknown scenarios
    shards = spec.expand()
    print(
        format_table(
            ["shard", "repeat", "seed", "params"],
            [
                [s.index, s.repeat, s.seed, canonical_json(s.params)[:72]]
                for s in shards
            ],
            title=(
                f"spec {spec.name!r}: scenario {spec.scenario!r}, "
                f"{len(shards)} shard(s), fingerprint {spec.fingerprint()}"
            ),
        )
    )
    return 0


def _cmd_scenarios(args) -> int:
    rows = []
    for name in list_scenarios():
        fn = get_scenario(name)
        doc = (fn.__doc__ or "").strip().splitlines()
        rows.append([name, doc[0] if doc else ""])
    print(format_table(["scenario", "description"], rows, title="registered scenarios"))
    return 0


def _cmd_example(args) -> int:
    if args.faults:
        example = _EXAMPLE_FAULTS_SPEC
    elif args.traffic:
        example = _EXAMPLE_TRAFFIC_SPEC
    else:
        example = _EXAMPLE_SPEC
    print(json.dumps(example, indent=2))
    return 0


def _cmd_cache_stats(args) -> int:
    from ..cluster import ResultStore

    store = ResultStore(args.store)
    stats = store.stats()
    print(f"result store {args.store}")
    print(stats.summary())
    return 0


def _cmd_cache_gc(args) -> int:
    from ..cluster import ResultStore, parse_age_s

    age_s = parse_age_s(args.older_than)
    store = ResultStore(args.store)
    removed = store.gc(age_s, dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    print(
        f"cache gc: {verb} {len(removed)} entr{'y' if len(removed) == 1 else 'ies'} "
        f"older than {args.older_than} from {args.store}"
    )
    remaining = store.stats()
    print(f"remaining: {remaining.entries} entries, {remaining.total_bytes} bytes")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="osnt-sweep",
        description="sharded, resumable experiment sweeps over declarative specs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="execute (or resume) a sweep")
    run_p.add_argument("spec", help="spec JSON file ('-' for stdin)")
    run_p.add_argument(
        "--workers", type=int, default=2,
        help="worker processes (0 = inline, no timeouts; default 2)",
    )
    run_p.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="checkpoint directory (enables resume across invocations)",
    )
    run_p.add_argument(
        "--no-resume", action="store_true",
        help="ignore existing checkpoints instead of resuming",
    )
    run_p.add_argument(
        "--max-shards", type=int, default=None,
        help="run at most N shards this invocation (smoke/partial runs)",
    )
    run_p.add_argument(
        "--merged", action="store_true",
        help="print the canonical merged JSON document to stdout",
    )
    run_p.add_argument("--json", metavar="FILE", help="write the full report here")
    run_p.add_argument(
        "--flight", metavar="DIR", default=None,
        help="flight-recorder directory: workers write heartbeat JSONL "
        "there; enables live progress on stderr and stall detection",
    )
    run_p.add_argument(
        "--heartbeat-s", type=float, default=DEFAULT_HEARTBEAT_S,
        help=f"worker heartbeat interval in seconds (default {DEFAULT_HEARTBEAT_S})",
    )
    run_p.add_argument(
        "--stall-after-s", type=float, default=None,
        help="flag a shard as stalled after this many seconds without a "
        "heartbeat (default 10x the heartbeat interval)",
    )
    run_p.add_argument(
        "--cache", metavar="DIR", default=None,
        help="content-addressed result store: serve already-computed "
        "shards from here and store fresh results for future sweeps",
    )
    run_p.add_argument(
        "--scheduler", choices=("local", "socket"), default="local",
        help="execution backend: the local forked pool (default) or a "
        "socket listener dispatching to remote osnt-worker processes",
    )
    run_p.add_argument(
        "--listen", metavar="HOST:PORT", default="127.0.0.1:0",
        help="socket scheduler bind address (default 127.0.0.1:0 = "
        "loopback, ephemeral port printed on stderr)",
    )
    run_p.add_argument(
        "--spawn-workers", type=int, default=0, metavar="N",
        help="socket scheduler: fork N loopback osnt-worker processes "
        "at start (external workers may still connect)",
    )
    run_p.add_argument(
        "--worker-timeout-s", type=float, default=None, metavar="S",
        help="socket scheduler: declare a busy worker dead after this "
        "many seconds without a heartbeat and reassign its shard "
        "(default 10x the heartbeat interval)",
    )
    run_p.set_defaults(func=_cmd_run)

    expand_p = sub.add_parser("expand", help="show the shard expansion")
    expand_p.add_argument("spec", help="spec JSON file ('-' for stdin)")
    expand_p.set_defaults(func=_cmd_expand)

    sub.add_parser("scenarios", help="list registered scenarios").set_defaults(
        func=_cmd_scenarios
    )
    example_p = sub.add_parser("example", help="print an example spec")
    example_p.add_argument(
        "--faults", action="store_true",
        help="print a fault-injection sweep spec instead",
    )
    example_p.add_argument(
        "--traffic", action="store_true",
        help="print a traffic-model sweep spec instead",
    )
    example_p.set_defaults(func=_cmd_example)

    cache_p = sub.add_parser("cache", help="inspect or prune a result store")
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    stats_p = cache_sub.add_parser("stats", help="summarize a result store")
    stats_p.add_argument("store", metavar="DIR", help="result store directory")
    stats_p.set_defaults(func=_cmd_cache_stats)
    gc_p = cache_sub.add_parser("gc", help="delete entries older than an age")
    gc_p.add_argument("store", metavar="DIR", help="result store directory")
    gc_p.add_argument(
        "--older-than", required=True, metavar="AGE",
        help="age threshold, e.g. '90s', '15m', '12h', '7d'",
    )
    gc_p.add_argument(
        "--dry-run", action="store_true",
        help="report what would be removed without deleting anything",
    )
    gc_p.set_defaults(func=_cmd_cache_gc)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SweepError as exc:
        print(f"osnt-sweep: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"osnt-sweep: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
