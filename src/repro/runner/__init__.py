"""Sharded, fault-tolerant sweep execution for declarative experiments.

The campaign layer of the reproduction: a serializable
:class:`ExperimentSpec` describes *what* to measure (scenario, params,
sweep axes, repeats, seed, collection plan) and the
:class:`SweepRunner` decides *how* — expanding the axes into shards,
executing them across a worker-process pool with deterministic
per-shard seed derivation (bit-identical merged results at any worker
count), per-shard timeouts with bounded retry, checkpoint/resume, and a
merged :class:`SweepReport` of result tables and telemetry snapshots.

    from repro.runner import ExperimentSpec, SweepRunner

    spec = ExperimentSpec(
        name="latency-vs-load",
        scenario="legacy_latency",
        params={"frame_size": 512, "duration": "2ms"},
        axes={"load": [0.2, 0.4, 0.6, 0.8, 1.0]},
        repeats=3,
    )
    report = SweepRunner(spec, workers=4, checkpoint_dir="runs/l1").run()
    report.require_ok()

The same campaign runs from the shell via ``osnt-sweep run spec.json``.
"""

from .execution import SweepRunner, run_shard, run_spec
from .registry import get_scenario, list_scenarios, register_scenario, scenario
from .report import ShardResult, SweepReport
from .spec import ExperimentSpec, Shard, canonical_json, shard_seed

__all__ = [
    "ExperimentSpec",
    "Shard",
    "ShardResult",
    "SweepReport",
    "SweepRunner",
    "canonical_json",
    "get_scenario",
    "list_scenarios",
    "register_scenario",
    "run_shard",
    "run_spec",
    "scenario",
    "shard_seed",
]
