"""Built-in scenarios: the paper's experiments bound to the spec API.

Each wrapper adapts one single-point measurement function to the
scenario calling convention ``fn(params, seed) -> dict``:

* rates and durations in params may be human strings (``"9.5Gbps"``,
  ``"10ms"``) — coerced here through :mod:`repro.units`;
* the shard's derived ``seed`` is used unless the spec pins an explicit
  ``params["seed"]`` (the deprecated ``measure_*`` shims pin the legacy
  constants so their results stay bit-compatible);
* ``params["telemetry"] = true`` asks supporting scenarios to include
  the card's metrics snapshot under the ``"telemetry"`` result key,
  which :meth:`~repro.runner.SweepReport.merged_telemetry` folds across
  shards.

Also here: ``echo``, ``sleep`` and ``flaky_marker`` — tiny operational
scenarios used by CI smoke sweeps and the runner's own tests.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Any, Dict

from ..units import duration_ps, ms, us
from .registry import scenario


def _seed(params: Dict[str, Any], derived: int) -> int:
    pinned = params.get("seed")
    return derived if pinned is None else pinned


def _rowdict(row, extras: Dict[str, Any]) -> Dict[str, Any]:
    result = dataclasses.asdict(row)
    result.update(extras)
    return result


def _rowsdict(rows, extras: Dict[str, Any]) -> Dict[str, Any]:
    result = {"rows": [dataclasses.asdict(row) for row in rows]}
    result.update(extras)
    return result


# -- operational scenarios ---------------------------------------------------


@scenario("echo")
def _echo(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Return the shard's params and seed — smoke tests and examples.

    Honors the ``params["seed"]`` pin like every built-in scenario, so
    the pinning contract is testable without running a real testbed.
    """
    return {"params": params, "seed": _seed(params, seed)}


@scenario("sleep")
def _sleep(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Sleep ``duration_s`` of wall-clock time — timeout-path testing."""
    duration_s = float(params.get("duration_s", 0.1))
    time.sleep(duration_s)
    return {"slept_s": duration_s, "seed": seed}


@scenario("flaky_marker")
def _flaky_marker(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Fail until ``params["marker"]`` exists (created on first try).

    Models a transient fault: the first attempt plants the marker file
    and raises; the retry finds it and succeeds. Works across worker
    processes because the state lives on the filesystem.
    """
    marker = params["marker"]
    if os.path.exists(marker):
        return {"recovered": True, "seed": seed}
    with open(marker, "w") as handle:
        handle.write("attempted\n")
    raise RuntimeError(f"transient failure (marker {marker} planted)")


# -- paper experiments -------------------------------------------------------


@scenario("line_rate")
def _line_rate(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """E1: line-rate generation for one frame size."""
    from ..testbed.scenarios import line_rate_point

    row, extras = line_rate_point(
        frame_size=params["frame_size"],
        duration_ps=duration_ps(params.get("duration", ms(1))),
        ports=params.get("ports", 1),
        seed=_seed(params, seed),
        telemetry=bool(params.get("telemetry", False)),
    )
    return _rowdict(row, extras)


@scenario("idt_precision")
def _idt_precision(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """E2: inter-departure precision for one generator kind."""
    from ..testbed.scenarios import idt_precision_point

    row, extras = idt_precision_point(
        kind=params["kind"],
        target_gap_ps=duration_ps(params["target_gap_ps"]),
        packet_count=params.get("packet_count", 500),
        frame_size=params.get("frame_size", 128),
        seed=_seed(params, seed),
    )
    return _rowdict(row, extras)


@scenario("clock_error")
def _clock_error(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """E2b: clock error over time for one discipline mode."""
    from ..testbed.scenarios import clock_error_point

    rows, extras = clock_error_point(
        mode=params["mode"],
        freq_error_ppm=params.get("freq_error_ppm", 30.0),
        walk_ppb=params.get("walk_ppb", 20.0),
        horizon_s=params.get("horizon_s", 10),
        seed=_seed(params, seed),
    )
    return _rowsdict(rows, extras)


@scenario("legacy_latency")
def _legacy_latency(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """E3: probe latency through the legacy switch at one load."""
    from ..testbed.scenarios import legacy_latency_point

    row, extras = legacy_latency_point(
        frame_size=params["frame_size"],
        load=params["load"],
        duration_ps=duration_ps(params.get("duration", ms(2))),
        probe_load=params.get("probe_load", 0.05),
        switch_kwargs=params.get("switch_kwargs"),
        seed=_seed(params, seed),
        switch_seed=params.get("switch_seed", 1),
        telemetry=bool(params.get("telemetry", False)),
    )
    return _rowdict(row, extras)


@scenario("capture_path")
def _capture_path(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """E6: capture completeness for one load and reducer variant."""
    from ..testbed.scenarios import capture_path_point
    from ..units import rate_bps

    row, extras = capture_path_point(
        load=params["load"],
        variant=params.get("variant"),
        frame_size=params.get("frame_size", 512),
        duration_ps=duration_ps(params.get("duration", ms(2))),
        dma_bandwidth_bps=rate_bps(params.get("dma_bandwidth_bps", 2e9)),
        seed=_seed(params, seed),
    )
    return _rowdict(row, extras)


@scenario("timestamp_placement")
def _timestamp_placement(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """E7: hardware vs host-side latency spread at one load."""
    from ..testbed.scenarios import timestamp_placement_point
    from ..units import rate_bps

    row, extras = timestamp_placement_point(
        load=params["load"],
        frame_size=params.get("frame_size", 512),
        duration_ps=duration_ps(params.get("duration", ms(2))),
        dma_bandwidth_bps=rate_bps(params.get("dma_bandwidth_bps", 4e9)),
        seed=_seed(params, seed),
        switch_seed=params.get("switch_seed", 1),
    )
    return _rowdict(row, extras)


@scenario("router_latency")
def _router_latency(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """E9: router forwarding latency at one matched-prefix depth."""
    from ..testbed.scenarios import router_latency_point

    row, extras = router_latency_point(
        prefix_len=params["prefix_len"],
        fib_fill=params.get("fib_fill", 1000),
        frame_size=params.get("frame_size", 256),
        duration_ps=duration_ps(params.get("duration", ms(1))),
        seed=_seed(params, seed),
    )
    return _rowdict(row, extras)


@scenario("imix_latency")
def _imix_latency(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """E3b: per-size latency classified from one IMIX stream."""
    from ..testbed.scenarios import imix_latency_point

    rows, extras = imix_latency_point(
        load=params.get("load", 0.5),
        duration_ps=duration_ps(params.get("duration", ms(2))),
        switch_kwargs=params.get("switch_kwargs"),
        seed=_seed(params, seed),
        switch_seed=params.get("switch_seed", 1),
    )
    return _rowsdict(rows, extras)


@scenario("flowmod_latency")
def _flowmod_latency(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """E4: flow_mod install latency, control vs data plane."""
    from ..testbed.scenarios import measure_flowmod_latency

    impairments = params.get("impairments")
    deadline = params.get("deadline")
    result = measure_flowmod_latency(
        n_rules=params.get("n_rules", 32),
        barrier_mode=params.get("barrier_mode", "spec"),
        firmware_delay_ps=duration_ps(params.get("firmware_delay", us(10))),
        table_write_ps=duration_ps(params.get("table_write", us(100))),
        probe_gap_ps=duration_ps(params.get("probe_gap", us(2))),
        base_port=params.get("base_port", 6000),
        impairments=impairments,
        seed=_seed(params, seed),
        deadline_ps=None if deadline is None else duration_ps(deadline),
        barrier_retries=params.get("barrier_retries", 3),
    )
    out = dataclasses.asdict(result)
    out["data_plane_complete_ps"] = result.data_plane_complete_ps
    out["control_says_done_before_data_ps"] = result.control_says_done_before_data_ps
    if not impairments and not result.degraded and not result.control_retries:
        # Unimpaired runs keep the pre-faults result schema bit-identical.
        del out["degraded"], out["control_retries"]
    return out


@scenario("forwarding_consistency")
def _forwarding_consistency(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """E5: forwarding consistency during a large table update."""
    from ..testbed.scenarios import measure_forwarding_consistency

    result = measure_forwarding_consistency(
        n_rules=params.get("n_rules", 32),
        barrier_mode=params.get("barrier_mode", "eager"),
        firmware_delay_ps=duration_ps(params.get("firmware_delay", us(30))),
        table_write_ps=duration_ps(params.get("table_write", us(50))),
        probe_gap_ps=duration_ps(params.get("probe_gap", us(2))),
        base_port=params.get("base_port", 7000),
    )
    return dataclasses.asdict(result)


@scenario("rfc2544")
def _rfc2544(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """E8: RFC 2544 zero-loss throughput search for one frame size."""
    from ..testbed.rfc2544 import rfc2544_point
    from ..units import rate_bps

    fabric = params.get("fabric_rate_bps")
    result = rfc2544_point(
        frame_size=params["frame_size"],
        fabric_rate_bps=None if fabric is None else rate_bps(fabric),
        duration_ps=duration_ps(params.get("duration", ms(2))),
        resolution=params.get("resolution", 0.01),
        switch_seed=params.get("switch_seed", 1),
    )
    return dataclasses.asdict(result)


@scenario("oflops")
def _oflops(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One OFLOPS-turbo module run against a configured DUT profile."""
    from ..devices.openflow_switch import PROFILES, SwitchProfile
    from ..oflops.context import OflopsContext
    from ..oflops.module import ModuleRunner
    from ..oflops.modules import ALL_MODULES
    from ..errors import SweepError

    name = params["module"]
    if name not in ALL_MODULES:
        raise SweepError(
            f"unknown oflops module {name!r}; known: {', '.join(sorted(ALL_MODULES))}"
        )
    if params.get("dut") is not None:
        profile = PROFILES[params["dut"]]
    else:
        profile = SwitchProfile(
            barrier_mode=params.get("barrier_mode", "spec"),
            firmware_delay_ps=duration_ps(params.get("firmware_delay", us(10))),
            table_write_ps=duration_ps(params.get("table_write", us(100))),
        )
    ctx = OflopsContext(
        profile=profile,
        control_latency_ps=duration_ps(params.get("control_latency", us(50))),
        impairments=params.get("impairments"),
        seed=_seed(params, seed),
        root_seed=_seed(params, seed),
    )
    module_cls = ALL_MODULES[name]
    if name in ("flow_mod_latency", "forwarding_consistency"):
        module = module_cls(n_rules=params.get("n_rules", 32))
    else:
        module = module_cls()
    if params.get("max_duration") is not None:
        # Degradable modules run out the full deadline on a faulted
        # channel; impaired sweeps cap it to keep shards fast.
        module.max_duration_ps = duration_ps(params["max_duration"])
    result = dict(ModuleRunner(ctx).run(module))
    if params.get("telemetry"):
        result["telemetry"] = ctx.snapshot()
    return result


# -- attack-workload scenarios -----------------------------------------------


@scenario("syn_flood_flowmod")
def _syn_flood_flowmod(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """A1: flow_mod latency under many-flow SYN churn."""
    from ..testbed.attacks import syn_flood_flowmod_point

    deadline = params.get("deadline")
    limit = params.get("packet_in_queue_limit", 64)
    row, extras = syn_flood_flowmod_point(
        n_flows=params.get("n_flows", 256),
        n_rules=params.get("n_rules", 16),
        traffic=params.get("traffic"),
        frame_size=params.get("frame_size", 64),
        duration_ps=duration_ps(params.get("duration", ms(4))),
        probe_gap_ps=duration_ps(params.get("probe_gap", us(4))),
        base_port=params.get("base_port", 6000),
        packet_in_queue_limit=limit,
        firmware_delay_ps=duration_ps(params.get("firmware_delay", us(10))),
        table_write_ps=duration_ps(params.get("table_write", us(100))),
        warmup_ps=duration_ps(params.get("warmup", us(500))),
        impairments=params.get("impairments"),
        seed=_seed(params, seed),
        deadline_ps=None if deadline is None else duration_ps(deadline),
        observe=bool(params.get("observe", False)),
        telemetry=bool(params.get("telemetry", False)),
        waveforms=bool(params.get("waveforms", False)),
    )
    return _rowdict(row, extras)


@scenario("incast_burst")
def _incast_burst(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """A2: k synchronized burst trains converging on one egress."""
    from ..testbed.attacks import incast_burst_point

    row, extras = incast_burst_point(
        senders=params.get("senders", 3),
        traffic=params.get("traffic"),
        frame_size=params.get("frame_size", 512),
        duration_ps=duration_ps(params.get("duration", ms(2))),
        buffer_bytes=params.get("buffer_bytes", 32 * 1024),
        phase_step_ps=duration_ps(params.get("phase_step", 0)),
        switch_kwargs=params.get("switch_kwargs"),
        seed=_seed(params, seed),
        switch_seed=params.get("switch_seed", 1),
        observe=bool(params.get("observe", False)),
        telemetry=bool(params.get("telemetry", False)),
        waveforms=bool(params.get("waveforms", False)),
    )
    out = _rowdict(row, extras)
    out["delivery_fraction"] = row.delivery_fraction
    return out


# -- fault-injection scenarios -----------------------------------------------


@scenario("lossy_link_latency")
def _lossy_link_latency(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """F1: probe latency through the legacy switch over a lossy link."""
    from ..faults.scenarios import lossy_link_latency_point

    row, extras = lossy_link_latency_point(
        loss_rate=params.get("loss_rate", 0.01),
        burst=params.get("burst", 1.0),
        frame_size=params.get("frame_size", 256),
        load=params.get("load", 0.05),
        duration_ps=duration_ps(params.get("duration", ms(2))),
        seed=_seed(params, seed),
        switch_seed=params.get("switch_seed", 1),
    )
    out = _rowdict(row, extras)
    out["observed_loss"] = row.observed_loss
    return out


@scenario("gps_holdover_drift")
def _gps_holdover_drift(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """F2: clock error through a GPS holdover window."""
    from ..faults.scenarios import gps_holdover_drift_point

    rows, extras = gps_holdover_drift_point(
        holdover_start_s=params.get("holdover_start_s", 3),
        holdover_len_s=params.get("holdover_len_s", 4),
        horizon_s=params.get("horizon_s", 10),
        freq_error_ppm=params.get("freq_error_ppm", 30.0),
        walk_ppb=params.get("walk_ppb", 20.0),
        seed=_seed(params, seed),
    )
    return _rowsdict(rows, extras)


@scenario("flowmod_under_flap")
def _flowmod_under_flap(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """F3: flow_mod latency with the control channel flapping.

    Completes with ``degraded: true`` and retry counts instead of
    raising when flow mods or barriers die on a down window.
    """
    from ..faults.scenarios import flowmod_under_flap_point

    return flowmod_under_flap_point(
        n_rules=params.get("n_rules", 32),
        flap_period=duration_ps(params.get("flap_period", ms(10))),
        flap_down=duration_ps(params.get("flap_down", ms(6))),
        deadline_ps=duration_ps(params.get("deadline", ms(30))),
        barrier_retries=params.get("barrier_retries", 3),
        barrier_mode=params.get("barrier_mode", "spec"),
        seed=_seed(params, seed),
    )


# -- closed-loop flow scenarios ----------------------------------------------


@scenario("fct_vs_loss")
def _fct_vs_loss(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """L1: flow completion times over a corrupting link, with or
    without LinkGuardian-style link-local protection."""
    from ..flows.scenarios import fct_vs_loss_point

    return fct_vs_loss_point(
        corrupt_rate=params.get("corrupt_rate", 1e-3),
        protected=params.get("protected", False),
        n_flows=params.get("n_flows", 64),
        flow_bytes=params.get("flow_bytes", 60_000),
        link_rate=params.get("link_rate", "10Gbps"),
        burst=params.get("burst", 1.0),
        spacing_ps=duration_ps(params.get("spacing", us(50))),
        seed=_seed(params, seed),
        switch_seed=params.get("switch_seed", 1),
        direction=params.get("direction", "a_to_b"),
        impairments=params.get("impairments"),
        observe=params.get("observe", False),
    )


@scenario("effective_loss_vs_speed")
def _effective_loss_vs_speed(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """L2: transport-visible loss rate at different link speeds."""
    from ..flows.scenarios import effective_loss_vs_speed_point

    return effective_loss_vs_speed_point(
        link_rate=params.get("link_rate", "10Gbps"),
        corrupt_rate=params.get("corrupt_rate", 1e-3),
        protected=params.get("protected", True),
        n_flows=params.get("n_flows", 16),
        flow_bytes=params.get("flow_bytes", 30_000),
        spacing_ps=duration_ps(params.get("spacing", us(50))),
        seed=_seed(params, seed),
        switch_seed=params.get("switch_seed", 1),
        observe=params.get("observe", False),
    )


@scenario("throughput_under_bursty_corruption")
def _throughput_under_bursty_corruption(
    params: Dict[str, Any], seed: int
) -> Dict[str, Any]:
    """L3: aggregate goodput under geometric corruption bursts."""
    from ..flows.scenarios import throughput_under_bursty_corruption_point

    return throughput_under_bursty_corruption_point(
        corrupt_rate=params.get("corrupt_rate", 5e-3),
        burst=params.get("burst", 4.0),
        protected=params.get("protected", True),
        n_flows=params.get("n_flows", 8),
        flow_bytes=params.get("flow_bytes", 120_000),
        link_rate=params.get("link_rate", "10Gbps"),
        spacing_ps=duration_ps(params.get("spacing", us(20))),
        seed=_seed(params, seed),
        switch_seed=params.get("switch_seed", 1),
        observe=params.get("observe", False),
    )
