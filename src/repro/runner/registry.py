"""The scenario registry: names specs can refer to.

A *scenario* is the unit of sharded execution: a callable
``fn(params: dict, seed: int) -> dict`` that builds a fresh simulator,
runs one measurement point and returns a JSON-serializable result.
Scenario functions must be **pure in (params, seed)** — same inputs,
same result — because the sweep runner relies on that for bit-identical
merges at any worker count and across resumes.

Built-in scenarios (the testbed experiments, RFC 2544, OFLOPS modules)
live in :mod:`repro.runner.scenarios` and are loaded lazily on the
first lookup; external code registers its own with the
:func:`scenario` decorator and lists the defining module in
``ExperimentSpec.imports`` so worker processes can resolve it.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import SweepError

ScenarioFn = Callable[[dict, int], dict]

_SCENARIOS: Dict[str, ScenarioFn] = {}
_BUILTINS_LOADED = False


def register_scenario(name: str, fn: ScenarioFn) -> ScenarioFn:
    """Register ``fn`` under ``name`` (last registration wins)."""
    if not name:
        raise SweepError("scenario name must be non-empty")
    _SCENARIOS[name] = fn
    return fn


def scenario(name: str) -> Callable[[ScenarioFn], ScenarioFn]:
    """Decorator form of :func:`register_scenario`.

    >>> @scenario("my_point")
    ... def my_point(params, seed):
    ...     return {"value": params["x"] * 2}
    """

    def decorate(fn: ScenarioFn) -> ScenarioFn:
        return register_scenario(name, fn)

    return decorate


def _load_builtins() -> None:
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        from . import scenarios  # noqa: F401  (registers on import)


def get_scenario(name: str) -> ScenarioFn:
    """Resolve a scenario name, loading the built-ins on first miss."""
    fn = _SCENARIOS.get(name)
    if fn is None:
        _load_builtins()
        fn = _SCENARIOS.get(name)
    if fn is None:
        raise SweepError(
            f"unknown scenario {name!r}; known: {', '.join(list_scenarios())}"
        )
    return fn


def list_scenarios() -> List[str]:
    """Sorted names of every registered scenario (built-ins included)."""
    _load_builtins()
    return sorted(_SCENARIOS)
