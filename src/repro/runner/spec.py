"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the serializable description of a whole
measurement campaign: *which* scenario to run, the base parameters, the
sweep axes to expand, how many repeats, the root seed, and the
execution policy (per-shard timeout and retry budget). Because a spec
is plain data (constructible from Python, a dict or JSON), it can be
checked into a repo, shipped to a worker pool, checkpointed to disk and
resumed — none of which the old closure-based scenario wiring allowed.

Expansion is deterministic: the cartesian product of the axes (in
declaration order, last axis fastest) times ``repeats`` yields the
shard list, and every shard's seed is derived from the root seed, the
shard index and the shard's own parameters via SHA-256 — so the same
spec produces bit-identical per-shard randomness at any worker count.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import SweepError

#: Spec fields, in serialization order.
_FIELDS = (
    "name",
    "scenario",
    "params",
    "axes",
    "repeats",
    "seed",
    "timeout_s",
    "retries",
    "collect",
    "imports",
)


def canonical_json(value: Any) -> str:
    """The one JSON rendering used for fingerprints and merged reports.

    Sorted keys, no whitespace: byte-identical for equal values, so
    reports can be compared with ``==`` across runs and worker counts.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def shard_seed(root_seed: int, index: int, params: Dict[str, Any], repeat: int) -> int:
    """Derive one shard's seed from the spec seed and the shard identity.

    SHA-256 over ``root_seed / index / repeat / canonical params`` —
    statistically independent across shards, stable across runs and
    independent of execution order or worker count (same scheme as
    :class:`repro.sim.RandomStreams`).
    """
    material = f"{root_seed}/{index}/{repeat}/{canonical_json(params)}"
    digest = hashlib.sha256(material.encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class Shard:
    """One expanded sweep point: a scenario invocation with its seed."""

    index: int
    params: Dict[str, Any]
    seed: int
    repeat: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "params": self.params,
            "seed": self.seed,
            "repeat": self.repeat,
        }


@dataclass
class ExperimentSpec:
    """A declarative, serializable experiment description.

    * ``name`` — campaign identifier (labels checkpoints and reports).
    * ``scenario`` — registered scenario name (see
      :func:`repro.runner.scenario` and ``osnt-sweep scenarios``).
    * ``params`` — base parameters passed to every shard. Rates and
      durations may be human strings (``"9.5Gbps"``, ``"10ms"``);
      scenario code coerces them via :mod:`repro.units`.
    * ``axes`` — mapping of parameter name to the list of values to
      sweep. The cartesian product (declaration order, last axis
      fastest) defines the shards.
    * ``repeats`` — shards per sweep point; each repeat gets its own
      derived seed.
    * ``seed`` — root seed for deterministic per-shard seed derivation.
    * ``timeout_s`` — wall-clock budget per shard attempt (None = no
      limit; only enforced when running in worker processes).
    * ``retries`` — extra attempts after a failed/hung first attempt.
    * ``collect`` — optional collection plan: list of top-level result
      keys to keep (None keeps the full result).
    * ``imports`` — modules imported in workers before resolving the
      scenario (for scenarios registered outside :mod:`repro`).
    """

    name: str
    scenario: str
    params: Dict[str, Any] = field(default_factory=dict)
    axes: Dict[str, List[Any]] = field(default_factory=dict)
    repeats: int = 1
    seed: int = 0
    timeout_s: Optional[float] = 300.0
    retries: int = 1
    collect: Optional[List[str]] = None
    imports: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise SweepError("spec needs a non-empty name")
        if not self.scenario:
            raise SweepError("spec needs a scenario name")
        if not isinstance(self.params, dict):
            raise SweepError(f"params must be a dict, got {type(self.params).__name__}")
        if not isinstance(self.axes, dict):
            raise SweepError(f"axes must be a dict, got {type(self.axes).__name__}")
        for axis, values in self.axes.items():
            if not isinstance(values, list) or not values:
                raise SweepError(f"axis {axis!r} must be a non-empty list of values")
        if self.repeats < 1:
            raise SweepError(f"repeats must be >= 1, got {self.repeats}")
        if self.retries < 0:
            raise SweepError(f"retries must be >= 0, got {self.retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise SweepError(f"timeout_s must be positive or None, got {self.timeout_s}")

    # -- expansion ----------------------------------------------------------

    @property
    def shard_count(self) -> int:
        count = self.repeats
        for values in self.axes.values():
            count *= len(values)
        return count

    def expand(self) -> List[Shard]:
        """Expand the axes into the deterministic, ordered shard list.

        Every shard receives a **deep copy** of the base params plus its
        axis assignments — sweep points must never share mutable config
        (a shard that mutates a nested dict would otherwise bleed into
        its siblings; see ``tests/test_runner.py``).
        """
        axis_names = list(self.axes)
        combos = itertools.product(*(self.axes[name] for name in axis_names))
        shards: List[Shard] = []
        index = 0
        for combo in combos:
            for repeat in range(self.repeats):
                params = copy.deepcopy(self.params)
                for axis, value in zip(axis_names, combo):
                    params[axis] = copy.deepcopy(value)
                shards.append(
                    Shard(
                        index=index,
                        params=params,
                        seed=shard_seed(self.seed, index, params, repeat),
                        repeat=repeat,
                    )
                )
                index += 1
        return shards

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {name: copy.deepcopy(getattr(self, name)) for name in _FIELDS}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        if not isinstance(data, dict):
            raise SweepError(f"spec must be a JSON object, got {type(data).__name__}")
        unknown = set(data) - set(_FIELDS)
        if unknown:
            raise SweepError(f"unknown spec field(s): {', '.join(sorted(unknown))}")
        for required in ("name", "scenario"):
            if required not in data:
                raise SweepError(f"spec is missing required field {required!r}")
        return cls(**copy.deepcopy(data))

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=(indent is None))

    @classmethod
    def from_json(cls, document: str) -> "ExperimentSpec":
        try:
            data = json.loads(document)
        except json.JSONDecodeError as exc:
            raise SweepError(f"spec is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def fingerprint(self) -> str:
        """Content hash used to guard checkpoint-directory resumes."""
        return hashlib.sha256(canonical_json(self.to_dict()).encode()).hexdigest()[:16]
