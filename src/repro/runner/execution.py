"""Sharded sweep execution: worker pool, timeouts, retries, resume.

The :class:`SweepRunner` expands a spec into shards and drives them to
completion:

* ``workers >= 1`` — each shard attempt runs in its own forked worker
  process, which writes its outcome to a result file and exits. The
  parent polls the fleet, enforces the per-attempt wall-clock timeout
  (terminating hung workers), retries failed/hung shards up to the
  spec's budget and records exhausted shards as *failed* without
  aborting the sweep.
* ``workers == 0`` — inline execution in this process (no isolation,
  no timeout enforcement): the debugging mode, and what the thin
  ``measure_*`` shims use so library calls never fork.
* ``scheduler=...`` — any :class:`repro.cluster.Scheduler` backend;
  the forked pool above is just the default
  (:class:`~repro.cluster.LocalScheduler`), and
  :class:`~repro.cluster.SocketScheduler` runs the same shards on
  remote ``osnt-worker`` processes instead.
* ``cache_dir=...`` — a shared content-addressed
  :class:`~repro.cluster.ResultStore`: shards whose key (scenario,
  params, seed, code version) already has a stored result are served
  from the cache (marked ``cached`` in the report) and never executed;
  fresh results are stored for the next overlapping sweep.

Determinism: a shard's result depends only on ``(spec, shard)`` — the
seed is derived from the spec, never from the schedule — so merged
reports are bit-identical at any worker count, on any scheduler
backend, and whether shards were executed, resumed from checkpoints or
served from the cache. Completed shards are checkpointed as
``shard-NNNNN.json`` files; a rerun against the same checkpoint
directory (guarded by the spec fingerprint *and* the code version)
skips them, which is all resume-after-interruption is.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
import os
import time
import traceback
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..errors import SweepError
from ..obs.flight import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_STALL_FACTOR,
    FlightTailer,
    HeartbeatWriter,
    heartbeat_path,
    render_progress,
)
from .registry import get_scenario
from .report import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_PENDING,
    ShardResult,
    SweepReport,
)
from .spec import ExperimentSpec, Shard

#: Grace period between SIGTERM and SIGKILL for a hung worker.
_KILL_GRACE_S = 1.0

_SPEC_FILE = "spec.json"


def _jsonify(value: Any) -> Any:
    """Force a scenario result into plain JSON-serializable data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonify(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    # numpy scalars and friends expose item(); last resort is repr.
    item = getattr(value, "item", None)
    if callable(item):
        return _jsonify(item())
    return repr(value)


def run_shard(spec: ExperimentSpec, shard: Shard) -> Dict[str, Any]:
    """Execute one shard in-process and return its sanitized result.

    This is the single definition of "run a shard" shared by inline
    mode and worker processes: import the spec's helper modules,
    resolve the scenario, call it on a private deep copy of the params
    (already copied at expansion; scenarios may still mutate freely)
    and apply the collection plan.
    """
    for module in spec.imports:
        importlib.import_module(module)
    fn = get_scenario(spec.scenario)
    result = _jsonify(fn(dict(shard.params), shard.seed))
    if not isinstance(result, dict):
        raise SweepError(
            f"scenario {spec.scenario!r} must return a dict, got {type(result).__name__}"
        )
    if spec.collect is not None:
        result = {key: result[key] for key in spec.collect if key in result}
    return result


def _worker_main(
    spec: ExperimentSpec,
    shard: Shard,
    out_path: str,
    flight_path: Optional[str] = None,
    attempt: int = 1,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
) -> None:
    """Worker-process entry: run the shard, write the outcome, exit hard.

    The outcome file is written atomically (temp + rename) so the
    parent never sees a torn read; ``os._exit`` skips the parent's
    inherited atexit/teardown state (we forked from an arbitrary
    process, possibly a test runner). With ``flight_path`` set, a
    :class:`~repro.obs.HeartbeatWriter` ticks in a daemon thread for
    the parent's flight recorder to tail.
    """
    try:
        writer = None
        try:
            if flight_path is not None:
                writer = HeartbeatWriter(
                    flight_path, shard.index, attempt=attempt, interval_s=heartbeat_s
                ).start()
            result = run_shard(spec, shard)
            payload = {"status": STATUS_OK, "result": result}
            if writer is not None:
                writer.stop("done")
        except BaseException as exc:  # noqa: BLE001 — report, don't die silently
            payload = {
                "status": STATUS_FAILED,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            }
            if writer is not None:
                writer.stop("failed")
        tmp = f"{out_path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, out_path)
    finally:
        os._exit(0)


class _Attempt:
    """One in-flight worker process for one shard."""

    def __init__(
        self,
        ctx,
        spec: ExperimentSpec,
        shard: Shard,
        out_path: str,
        flight_path: Optional[str] = None,
        attempt: int = 1,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    ) -> None:
        self.shard = shard
        self.out_path = out_path
        self.started = time.monotonic()
        self.process = ctx.Process(
            target=_worker_main,
            args=(spec, shard, out_path, flight_path, attempt, heartbeat_s),
            daemon=True,
        )
        self.process.start()

    def outcome(self, timeout_s: Optional[float]) -> Optional[Dict[str, Any]]:
        """Poll once: a payload dict when finished, None while running."""
        if os.path.exists(self.out_path):
            # The file is renamed into place after the payload is
            # complete, so existence implies a full, valid document.
            self.process.join()
            with open(self.out_path) as handle:
                payload = json.load(handle)
            os.unlink(self.out_path)
            return payload
        if not self.process.is_alive():
            return {
                "status": STATUS_FAILED,
                "error": f"worker died without a result (exitcode {self.process.exitcode})",
            }
        if timeout_s is not None and time.monotonic() - self.started > timeout_s:
            self.terminate()
            return {
                "status": STATUS_FAILED,
                "error": f"shard timed out after {timeout_s}s (worker terminated)",
            }
        return None

    def terminate(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(_KILL_GRACE_S)
            if self.process.is_alive():
                self.process.kill()
                self.process.join()
        if os.path.exists(self.out_path):
            os.unlink(self.out_path)


class SweepRunner:
    """Run an :class:`ExperimentSpec` across a worker pool, resumably.

    >>> runner = SweepRunner(spec, workers=4, checkpoint_dir="run1")
    >>> report = runner.run()          # resumes automatically on rerun

    ``workers=0`` executes inline (no subprocesses, no timeouts) and is
    what the deprecated ``measure_*`` wrappers use under the hood.

    ``scheduler`` accepts any :class:`repro.cluster.Scheduler`
    (overriding ``workers``/``start_method``); by default a
    :class:`~repro.cluster.LocalScheduler` wraps the classic forked
    pool. ``cache_dir`` (a path or a ready
    :class:`~repro.cluster.ResultStore`) arms the content-addressed
    result cache: known shards are served without executing and fresh
    results are stored for future sweeps.

    ``flight_dir`` arms the flight recorder (:mod:`repro.obs.flight`):
    workers write heartbeat files there, the parent tails them into a
    live progress/ETA line (``on_progress`` callback) and flags shards
    with no heartbeat within ``stall_after_s`` (default
    ``10×heartbeat_s``) as *stalled* in the report. All of it is
    operational telemetry — the merged document is unaffected.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        workers: int = 1,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        start_method: Optional[str] = None,
        flight_dir: Optional[Union[str, Path]] = None,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        stall_after_s: Optional[float] = None,
        on_progress=None,
        progress_interval_s: float = 1.0,
        scheduler=None,
        cache_dir=None,
    ) -> None:
        if workers < 0:
            raise SweepError(f"workers must be >= 0, got {workers}")
        if heartbeat_s <= 0:
            raise SweepError(f"heartbeat_s must be > 0, got {heartbeat_s}")
        self.spec = spec
        self.workers = workers
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.flight_dir = Path(flight_dir) if flight_dir else None
        self.heartbeat_s = heartbeat_s
        self.stall_after_s = (
            stall_after_s
            if stall_after_s is not None
            else DEFAULT_STALL_FACTOR * heartbeat_s
        )
        self.on_progress = on_progress
        self.progress_interval_s = progress_interval_s
        self.start_method = start_method
        self.scheduler = scheduler
        self.store = None
        if cache_dir is not None:
            from ..cluster.store import ResultStore

            self.store = (
                cache_dir
                if isinstance(cache_dir, ResultStore)
                else ResultStore(cache_dir)
            )

    # -- checkpoints ---------------------------------------------------------

    def _shard_path(self, index: int) -> Path:
        assert self.checkpoint_dir is not None
        return self.checkpoint_dir / f"shard-{index:05d}.json"

    def _prepare_checkpoints(self, resume: bool) -> Dict[int, Dict[str, Any]]:
        """Create/validate the checkpoint dir; load completed shards.

        Guards against two kinds of staleness before trusting anything:
        a different *spec* (fingerprint mismatch) and a different
        *source tree* (code-version mismatch) — either means the
        checkpointed results may not be reproducible by the current
        code, so resuming over them would silently mix regimes. Orphaned
        ``shard-*.tmp.*`` files from a writer killed mid-checkpoint are
        removed up front; the atomic rename in :meth:`_checkpoint`
        guarantees they were never visible as real checkpoints.
        """
        from ..cluster.version import code_version

        directory = self.checkpoint_dir
        if directory is None:
            return {}
        directory.mkdir(parents=True, exist_ok=True)
        for orphan in directory.glob("shard-*.tmp.*"):
            orphan.unlink()
        for orphan in directory.glob("spec.tmp.*"):
            orphan.unlink()
        spec_path = directory / _SPEC_FILE
        fingerprint = self.spec.fingerprint()
        code = code_version()
        if spec_path.exists():
            try:
                recorded = json.loads(spec_path.read_text())
            except json.JSONDecodeError:
                recorded = {}
            recorded_fp = recorded.get("fingerprint")
            recorded_code = recorded.get("code_version")
            if recorded_fp != fingerprint:
                if resume:
                    raise SweepError(
                        f"checkpoint dir {directory} belongs to a different spec "
                        f"(fingerprint {recorded_fp!r} != {fingerprint!r}); "
                        "use a fresh directory or resume=False to overwrite"
                    )
                for stale in directory.glob("shard-*.json"):
                    stale.unlink()
            elif recorded_code is not None and recorded_code != code:
                if resume:
                    raise SweepError(
                        f"checkpoint dir {directory} was written by code version "
                        f"{recorded_code!r} but this tree is {code!r}; results "
                        "may not be reproducible — use a fresh directory or "
                        "resume=False to overwrite"
                    )
                for stale in directory.glob("shard-*.json"):
                    stale.unlink()
        tmp = spec_path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w") as handle:
            json.dump(
                {
                    "fingerprint": fingerprint,
                    "code_version": code,
                    "spec": self.spec.to_dict(),
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, spec_path)
        completed: Dict[int, Dict[str, Any]] = {}
        if resume:
            for path in sorted(directory.glob("shard-*.json")):
                try:
                    payload = json.loads(path.read_text())
                except json.JSONDecodeError:
                    continue  # torn write from a killed run: redo the shard
                if payload.get("status") == STATUS_OK and "index" in payload:
                    completed[payload["index"]] = payload
        return completed

    def _checkpoint(self, record: ShardResult) -> None:
        if self.checkpoint_dir is None or record.status != STATUS_OK:
            return
        path = self._shard_path(record.index)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        # fsync before the rename: a kill between write and rename must
        # leave either no checkpoint or a complete one — never a
        # truncated file that a later resume would trust.
        with open(tmp, "w") as handle:
            handle.write(json.dumps(record.checkpoint_payload(), sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    # -- execution -----------------------------------------------------------

    def run(self, resume: bool = True, max_shards: Optional[int] = None) -> SweepReport:
        """Execute (or finish) the sweep and return the merged report.

        ``resume=True`` skips shards already checkpointed by a previous
        run of the same spec. ``max_shards`` caps how many shards this
        call executes (smoke runs; simulating an interrupted campaign) —
        the rest are reported as *pending*. With a result store armed,
        shards whose content address is already stored are *served*,
        not executed (and count against ``max_shards`` like skipped
        work would not — cache hits are free).
        """
        shards = self.spec.expand()
        completed = self._prepare_checkpoints(resume)
        records: Dict[int, ShardResult] = {}
        todo: List[Shard] = []
        for shard in shards:
            payload = completed.get(shard.index)
            if payload is not None and payload.get("seed") == shard.seed:
                records[shard.index] = ShardResult(
                    index=shard.index,
                    params=shard.params,
                    seed=shard.seed,
                    status=STATUS_OK,
                    result=payload.get("result"),
                    from_checkpoint=True,
                )
                self._store_put(records[shard.index])
            else:
                todo.append(shard)
        todo = self._serve_from_store(todo, records)
        budget = len(todo) if max_shards is None else min(max_shards, len(todo))
        skipped = todo[budget:]
        todo = todo[:budget]

        scheduler_stats: Dict[str, Any] = {}
        worker_telemetry: Dict[str, Dict[str, Any]] = {}
        if self.workers == 0 and self.scheduler is None:
            for shard in todo:
                record = self._run_inline(shard)
                records[shard.index] = record
                self._store_put(record)
            scheduler_stats = {"backend": "inline", "executed": len(todo)}
        else:
            scheduler = self._make_scheduler()
            self._run_scheduled(scheduler, todo, records)
            scheduler_stats = scheduler.stats()
            worker_telemetry = scheduler.telemetry_snapshots()

        for shard in skipped:
            records[shard.index] = ShardResult(
                index=shard.index,
                params=shard.params,
                seed=shard.seed,
                status=STATUS_PENDING,
            )
        report = SweepReport(
            spec=self.spec,
            shards=[records[shard.index] for shard in shards],
            worker_telemetry=worker_telemetry,
            scheduler_stats=scheduler_stats,
        )
        return report

    # -- the result store ----------------------------------------------------

    def _serve_from_store(
        self, todo: List[Shard], records: Dict[int, ShardResult]
    ) -> List[Shard]:
        """Split cache hits out of ``todo``; only misses remain to run."""
        if self.store is None or not todo:
            return todo
        from ..cluster.store import shard_cache_key

        misses: List[Shard] = []
        for shard in todo:
            result = self.store.get(shard_cache_key(self.spec, shard))
            if result is None:
                misses.append(shard)
                continue
            record = ShardResult(
                index=shard.index,
                params=shard.params,
                seed=shard.seed,
                status=STATUS_OK,
                result=result,
                cached=True,
            )
            records[shard.index] = record
            self._checkpoint(record)
        return misses

    def _store_put(self, record: ShardResult) -> None:
        """Publish one ok result to the shared store (idempotent)."""
        if (
            self.store is None
            or record.status != STATUS_OK
            or record.cached
            or record.result is None
        ):
            return
        from ..cluster.store import shard_cache_key

        shard = Shard(
            index=record.index,
            params=record.params,
            seed=record.seed,
        )
        self.store.put(
            shard_cache_key(self.spec, shard),
            record.result,
            scenario=self.spec.scenario,
        )

    # -- scheduler dispatch --------------------------------------------------

    def _make_scheduler(self):
        """The configured scheduler, or a LocalScheduler over the pool."""
        if self.scheduler is not None:
            return self.scheduler
        from ..cluster.scheduler import LocalScheduler

        return LocalScheduler(
            workers=max(self.workers, 1),
            start_method=self.start_method,
            heartbeat_s=self.heartbeat_s,
        )

    def _run_scheduled(
        self, scheduler, todo: List[Shard], records: Dict[int, ShardResult]
    ) -> None:
        """Drive ``todo`` through a scheduler backend, resumably."""
        tailer: Optional[FlightTailer] = None
        if self.flight_dir is not None:
            self.flight_dir.mkdir(parents=True, exist_ok=True)
            tailer = FlightTailer(self.flight_dir, stall_after_s=self.stall_after_s)
        total = len(records) + len(todo)
        sweep_started = time.monotonic()
        last_progress = 0.0

        def on_record(record: ShardResult) -> None:
            records[record.index] = record
            self._checkpoint(record)
            self._store_put(record)

        on_cycle = None
        if self.on_progress is not None:

            def on_cycle(statuses: Dict[int, Dict[str, Any]]) -> None:
                nonlocal last_progress
                now = time.monotonic()
                if now - last_progress < self.progress_interval_s:
                    return
                last_progress = now
                done = sum(1 for r in records.values() if r.ok)
                failed = sum(
                    1 for r in records.values() if r.status == STATUS_FAILED
                )
                # Cache hits finish in ~0s; keep them out of the ETA's
                # per-shard rate (render_progress excludes them).
                cached = sum(1 for r in records.values() if r.ok and r.cached)
                self.on_progress(
                    render_progress(
                        done,
                        failed,
                        total,
                        statuses,
                        now - sweep_started,
                        cached=cached,
                    )
                )

        scheduler.run(
            self.spec, todo, on_record=on_record, tailer=tailer, on_cycle=on_cycle
        )
        if tailer is not None:
            for index in tailer.stalled_shards:
                record = records.get(index)
                if record is not None:
                    record.stalled = True

    def _run_inline(self, shard: Shard) -> ShardResult:
        record = ShardResult(index=shard.index, params=shard.params, seed=shard.seed)
        start = time.monotonic()
        for attempt in range(1 + self.spec.retries):
            record.attempts = attempt + 1
            writer = None
            if self.flight_dir is not None:
                # Inline mode still writes heartbeats (no stall watcher:
                # there is no parent loop running concurrently to tail).
                self.flight_dir.mkdir(parents=True, exist_ok=True)
                writer = HeartbeatWriter(
                    heartbeat_path(self.flight_dir, shard.index, attempt + 1),
                    shard.index,
                    attempt=attempt + 1,
                    interval_s=self.heartbeat_s,
                ).start()
            try:
                record.result = run_shard(self.spec, shard)
                record.status = STATUS_OK
                record.error = None
                if writer is not None:
                    writer.stop("done")
                break
            except Exception as exc:  # noqa: BLE001 — recorded, retried
                record.status = STATUS_FAILED
                record.error = f"{type(exc).__name__}: {exc}"
                if writer is not None:
                    writer.stop("failed")
        record.elapsed_s = time.monotonic() - start
        self._checkpoint(record)
        return record

def run_spec(
    spec: ExperimentSpec,
    workers: int = 0,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = True,
    max_shards: Optional[int] = None,
    scheduler=None,
    cache_dir=None,
) -> SweepReport:
    """One-call convenience: build a :class:`SweepRunner` and run it."""
    runner = SweepRunner(
        spec,
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        scheduler=scheduler,
        cache_dir=cache_dir,
    )
    return runner.run(resume=resume, max_shards=max_shards)
