"""Sharded sweep execution: worker pool, timeouts, retries, resume.

The :class:`SweepRunner` expands a spec into shards and drives them to
completion:

* ``workers >= 1`` — each shard attempt runs in its own forked worker
  process, which writes its outcome to a result file and exits. The
  parent polls the fleet, enforces the per-attempt wall-clock timeout
  (terminating hung workers), retries failed/hung shards up to the
  spec's budget and records exhausted shards as *failed* without
  aborting the sweep.
* ``workers == 0`` — inline execution in this process (no isolation,
  no timeout enforcement): the debugging mode, and what the thin
  ``measure_*`` shims use so library calls never fork.

Determinism: a shard's result depends only on ``(spec, shard)`` — the
seed is derived from the spec, never from the schedule — so merged
reports are bit-identical at any worker count. Completed shards are
checkpointed as ``shard-NNNNN.json`` files; a rerun against the same
checkpoint directory (guarded by the spec fingerprint) skips them,
which is all resume-after-interruption is.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
import multiprocessing
import os
import tempfile
import time
import traceback
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..errors import SweepError
from ..obs.flight import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_STALL_FACTOR,
    FlightTailer,
    HeartbeatWriter,
    heartbeat_path,
    render_progress,
)
from .registry import get_scenario
from .report import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_PENDING,
    ShardResult,
    SweepReport,
)
from .spec import ExperimentSpec, Shard

#: How often the parent polls running workers, seconds.
_POLL_S = 0.01
#: Grace period between SIGTERM and SIGKILL for a hung worker.
_KILL_GRACE_S = 1.0

_SPEC_FILE = "spec.json"


def _jsonify(value: Any) -> Any:
    """Force a scenario result into plain JSON-serializable data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonify(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    # numpy scalars and friends expose item(); last resort is repr.
    item = getattr(value, "item", None)
    if callable(item):
        return _jsonify(item())
    return repr(value)


def run_shard(spec: ExperimentSpec, shard: Shard) -> Dict[str, Any]:
    """Execute one shard in-process and return its sanitized result.

    This is the single definition of "run a shard" shared by inline
    mode and worker processes: import the spec's helper modules,
    resolve the scenario, call it on a private deep copy of the params
    (already copied at expansion; scenarios may still mutate freely)
    and apply the collection plan.
    """
    for module in spec.imports:
        importlib.import_module(module)
    fn = get_scenario(spec.scenario)
    result = _jsonify(fn(dict(shard.params), shard.seed))
    if not isinstance(result, dict):
        raise SweepError(
            f"scenario {spec.scenario!r} must return a dict, got {type(result).__name__}"
        )
    if spec.collect is not None:
        result = {key: result[key] for key in spec.collect if key in result}
    return result


def _worker_main(
    spec: ExperimentSpec,
    shard: Shard,
    out_path: str,
    flight_path: Optional[str] = None,
    attempt: int = 1,
    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
) -> None:
    """Worker-process entry: run the shard, write the outcome, exit hard.

    The outcome file is written atomically (temp + rename) so the
    parent never sees a torn read; ``os._exit`` skips the parent's
    inherited atexit/teardown state (we forked from an arbitrary
    process, possibly a test runner). With ``flight_path`` set, a
    :class:`~repro.obs.HeartbeatWriter` ticks in a daemon thread for
    the parent's flight recorder to tail.
    """
    try:
        writer = None
        try:
            if flight_path is not None:
                writer = HeartbeatWriter(
                    flight_path, shard.index, attempt=attempt, interval_s=heartbeat_s
                ).start()
            result = run_shard(spec, shard)
            payload = {"status": STATUS_OK, "result": result}
            if writer is not None:
                writer.stop("done")
        except BaseException as exc:  # noqa: BLE001 — report, don't die silently
            payload = {
                "status": STATUS_FAILED,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            }
            if writer is not None:
                writer.stop("failed")
        tmp = f"{out_path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, out_path)
    finally:
        os._exit(0)


class _Attempt:
    """One in-flight worker process for one shard."""

    def __init__(
        self,
        ctx,
        spec: ExperimentSpec,
        shard: Shard,
        out_path: str,
        flight_path: Optional[str] = None,
        attempt: int = 1,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
    ) -> None:
        self.shard = shard
        self.out_path = out_path
        self.started = time.monotonic()
        self.process = ctx.Process(
            target=_worker_main,
            args=(spec, shard, out_path, flight_path, attempt, heartbeat_s),
            daemon=True,
        )
        self.process.start()

    def outcome(self, timeout_s: Optional[float]) -> Optional[Dict[str, Any]]:
        """Poll once: a payload dict when finished, None while running."""
        if os.path.exists(self.out_path):
            # The file is renamed into place after the payload is
            # complete, so existence implies a full, valid document.
            self.process.join()
            with open(self.out_path) as handle:
                payload = json.load(handle)
            os.unlink(self.out_path)
            return payload
        if not self.process.is_alive():
            return {
                "status": STATUS_FAILED,
                "error": f"worker died without a result (exitcode {self.process.exitcode})",
            }
        if timeout_s is not None and time.monotonic() - self.started > timeout_s:
            self.terminate()
            return {
                "status": STATUS_FAILED,
                "error": f"shard timed out after {timeout_s}s (worker terminated)",
            }
        return None

    def terminate(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(_KILL_GRACE_S)
            if self.process.is_alive():
                self.process.kill()
                self.process.join()
        if os.path.exists(self.out_path):
            os.unlink(self.out_path)


class SweepRunner:
    """Run an :class:`ExperimentSpec` across a worker pool, resumably.

    >>> runner = SweepRunner(spec, workers=4, checkpoint_dir="run1")
    >>> report = runner.run()          # resumes automatically on rerun

    ``workers=0`` executes inline (no subprocesses, no timeouts) and is
    what the deprecated ``measure_*`` wrappers use under the hood.

    ``flight_dir`` arms the flight recorder (:mod:`repro.obs.flight`):
    workers write heartbeat files there, the parent tails them into a
    live progress/ETA line (``on_progress`` callback) and flags shards
    with no heartbeat within ``stall_after_s`` (default
    ``10×heartbeat_s``) as *stalled* in the report. All of it is
    operational telemetry — the merged document is unaffected.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        workers: int = 1,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        start_method: Optional[str] = None,
        flight_dir: Optional[Union[str, Path]] = None,
        heartbeat_s: float = DEFAULT_HEARTBEAT_S,
        stall_after_s: Optional[float] = None,
        on_progress=None,
        progress_interval_s: float = 1.0,
    ) -> None:
        if workers < 0:
            raise SweepError(f"workers must be >= 0, got {workers}")
        if heartbeat_s <= 0:
            raise SweepError(f"heartbeat_s must be > 0, got {heartbeat_s}")
        self.spec = spec
        self.workers = workers
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.flight_dir = Path(flight_dir) if flight_dir else None
        self.heartbeat_s = heartbeat_s
        self.stall_after_s = (
            stall_after_s
            if stall_after_s is not None
            else DEFAULT_STALL_FACTOR * heartbeat_s
        )
        self.on_progress = on_progress
        self.progress_interval_s = progress_interval_s
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)

    # -- checkpoints ---------------------------------------------------------

    def _shard_path(self, index: int) -> Path:
        assert self.checkpoint_dir is not None
        return self.checkpoint_dir / f"shard-{index:05d}.json"

    def _prepare_checkpoints(self, resume: bool) -> Dict[int, Dict[str, Any]]:
        """Create/validate the checkpoint dir; load completed shards."""
        directory = self.checkpoint_dir
        if directory is None:
            return {}
        directory.mkdir(parents=True, exist_ok=True)
        spec_path = directory / _SPEC_FILE
        fingerprint = self.spec.fingerprint()
        if spec_path.exists():
            try:
                recorded = json.loads(spec_path.read_text()).get("fingerprint")
            except json.JSONDecodeError:
                recorded = None
            if recorded != fingerprint:
                if resume:
                    raise SweepError(
                        f"checkpoint dir {directory} belongs to a different spec "
                        f"(fingerprint {recorded!r} != {fingerprint!r}); "
                        "use a fresh directory or resume=False to overwrite"
                    )
                for stale in directory.glob("shard-*.json"):
                    stale.unlink()
        spec_path.write_text(
            json.dumps(
                {"fingerprint": fingerprint, "spec": self.spec.to_dict()},
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        completed: Dict[int, Dict[str, Any]] = {}
        if resume:
            for path in sorted(directory.glob("shard-*.json")):
                try:
                    payload = json.loads(path.read_text())
                except json.JSONDecodeError:
                    continue  # torn write from a killed run: redo the shard
                if payload.get("status") == STATUS_OK and "index" in payload:
                    completed[payload["index"]] = payload
        return completed

    def _checkpoint(self, record: ShardResult) -> None:
        if self.checkpoint_dir is None or record.status != STATUS_OK:
            return
        path = self._shard_path(record.index)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(record.checkpoint_payload(), sort_keys=True) + "\n")
        os.replace(tmp, path)

    # -- execution -----------------------------------------------------------

    def run(self, resume: bool = True, max_shards: Optional[int] = None) -> SweepReport:
        """Execute (or finish) the sweep and return the merged report.

        ``resume=True`` skips shards already checkpointed by a previous
        run of the same spec. ``max_shards`` caps how many shards this
        call executes (smoke runs; simulating an interrupted campaign) —
        the rest are reported as *pending*.
        """
        shards = self.spec.expand()
        completed = self._prepare_checkpoints(resume)
        records: Dict[int, ShardResult] = {}
        todo: List[Shard] = []
        for shard in shards:
            payload = completed.get(shard.index)
            if payload is not None and payload.get("seed") == shard.seed:
                records[shard.index] = ShardResult(
                    index=shard.index,
                    params=shard.params,
                    seed=shard.seed,
                    status=STATUS_OK,
                    result=payload.get("result"),
                    from_checkpoint=True,
                )
            else:
                todo.append(shard)
        budget = len(todo) if max_shards is None else min(max_shards, len(todo))
        skipped = todo[budget:]
        todo = todo[:budget]

        if self.workers == 0:
            for shard in todo:
                records[shard.index] = self._run_inline(shard)
        else:
            self._run_pool(todo, records)

        for shard in skipped:
            records[shard.index] = ShardResult(
                index=shard.index,
                params=shard.params,
                seed=shard.seed,
                status=STATUS_PENDING,
            )
        report = SweepReport(
            spec=self.spec, shards=[records[shard.index] for shard in shards]
        )
        return report

    def _run_inline(self, shard: Shard) -> ShardResult:
        record = ShardResult(index=shard.index, params=shard.params, seed=shard.seed)
        start = time.monotonic()
        for attempt in range(1 + self.spec.retries):
            record.attempts = attempt + 1
            writer = None
            if self.flight_dir is not None:
                # Inline mode still writes heartbeats (no stall watcher:
                # there is no parent loop running concurrently to tail).
                self.flight_dir.mkdir(parents=True, exist_ok=True)
                writer = HeartbeatWriter(
                    heartbeat_path(self.flight_dir, shard.index, attempt + 1),
                    shard.index,
                    attempt=attempt + 1,
                    interval_s=self.heartbeat_s,
                ).start()
            try:
                record.result = run_shard(self.spec, shard)
                record.status = STATUS_OK
                record.error = None
                if writer is not None:
                    writer.stop("done")
                break
            except Exception as exc:  # noqa: BLE001 — recorded, retried
                record.status = STATUS_FAILED
                record.error = f"{type(exc).__name__}: {exc}"
                if writer is not None:
                    writer.stop("failed")
        record.elapsed_s = time.monotonic() - start
        self._checkpoint(record)
        return record

    def _run_pool(self, todo: List[Shard], records: Dict[int, ShardResult]) -> None:
        """The worker-pool scheduler: launch, poll, retry, collect."""
        tailer: Optional[FlightTailer] = None
        if self.flight_dir is not None:
            self.flight_dir.mkdir(parents=True, exist_ok=True)
            tailer = FlightTailer(self.flight_dir, stall_after_s=self.stall_after_s)
        total = len(records) + len(todo)
        sweep_started = time.monotonic()
        last_progress = 0.0
        with tempfile.TemporaryDirectory(prefix="repro-sweep-") as scratch:
            pending = list(todo)
            attempts_used: Dict[int, int] = {shard.index: 0 for shard in todo}
            started_at: Dict[int, float] = {}
            running: List[_Attempt] = []
            try:
                while pending or running:
                    while pending and len(running) < self.workers:
                        shard = pending.pop(0)
                        started_at.setdefault(shard.index, time.monotonic())
                        attempts_used[shard.index] += 1
                        out = os.path.join(
                            scratch,
                            f"shard-{shard.index:05d}-a{attempts_used[shard.index]}.json",
                        )
                        flight_path = None
                        if tailer is not None:
                            flight_path = str(
                                heartbeat_path(
                                    self.flight_dir,
                                    shard.index,
                                    attempts_used[shard.index],
                                )
                            )
                            tailer.track(shard.index, attempts_used[shard.index])
                        running.append(
                            _Attempt(
                                self._ctx,
                                self.spec,
                                shard,
                                out,
                                flight_path=flight_path,
                                attempt=attempts_used[shard.index],
                                heartbeat_s=self.heartbeat_s,
                            )
                        )
                    still_running: List[_Attempt] = []
                    for attempt in running:
                        payload = attempt.outcome(self.spec.timeout_s)
                        if payload is None:
                            still_running.append(attempt)
                            continue
                        shard = attempt.shard
                        if tailer is not None:
                            tailer.untrack(shard.index)
                        if payload["status"] == STATUS_OK:
                            record = ShardResult(
                                index=shard.index,
                                params=shard.params,
                                seed=shard.seed,
                                status=STATUS_OK,
                                result=payload.get("result"),
                                attempts=attempts_used[shard.index],
                                elapsed_s=time.monotonic() - started_at[shard.index],
                            )
                            records[shard.index] = record
                            self._checkpoint(record)
                        elif attempts_used[shard.index] <= self.spec.retries:
                            pending.append(shard)  # retry at the back of the queue
                        else:
                            records[shard.index] = ShardResult(
                                index=shard.index,
                                params=shard.params,
                                seed=shard.seed,
                                status=STATUS_FAILED,
                                error=payload.get("error", "unknown failure"),
                                attempts=attempts_used[shard.index],
                                elapsed_s=time.monotonic() - started_at[shard.index],
                            )
                    running = still_running
                    if tailer is not None:
                        statuses = tailer.poll()
                        now = time.monotonic()
                        if (
                            self.on_progress is not None
                            and now - last_progress >= self.progress_interval_s
                        ):
                            last_progress = now
                            done = sum(1 for r in records.values() if r.ok)
                            failed = sum(
                                1
                                for r in records.values()
                                if r.status == STATUS_FAILED
                            )
                            self.on_progress(
                                render_progress(
                                    done,
                                    failed,
                                    total,
                                    statuses,
                                    now - sweep_started,
                                )
                            )
                    if running:
                        time.sleep(_POLL_S)
            finally:
                for attempt in running:
                    attempt.terminate()
        if tailer is not None:
            for index in tailer.stalled_shards:
                record = records.get(index)
                if record is not None:
                    record.stalled = True


def run_spec(
    spec: ExperimentSpec,
    workers: int = 0,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = True,
    max_shards: Optional[int] = None,
) -> SweepReport:
    """One-call convenience: build a :class:`SweepRunner` and run it."""
    runner = SweepRunner(spec, workers=workers, checkpoint_dir=checkpoint_dir)
    return runner.run(resume=resume, max_shards=max_shards)
