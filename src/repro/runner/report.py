"""Sweep results: per-shard records and the merged campaign report.

The report separates two kinds of information:

* **deterministic** — shard identity (index, params, seed), status and
  the scenario result. :meth:`SweepReport.merged_dict` contains only
  these, so its canonical JSON is bit-identical for the same spec at
  any worker count and across checkpoint/resume.
* **operational** — attempt counts and wall-clock timings, which vary
  run to run and are kept out of the merged document.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .spec import ExperimentSpec, canonical_json

#: Shard terminal states.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_PENDING = "pending"


@dataclass
class ShardResult:
    """Outcome of one shard (including ones restored from checkpoints)."""

    index: int
    params: Dict[str, Any]
    seed: int
    status: str = STATUS_PENDING
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    attempts: int = 0
    elapsed_s: float = 0.0
    from_checkpoint: bool = False
    #: Flight-recorder stall flag (operational, like attempts/elapsed_s:
    #: it depends on wall-clock behaviour, so it must stay out of
    #: :meth:`merged_entry` to keep the merged document deterministic).
    stalled: bool = False
    #: Served from the content-addressed result store instead of being
    #: executed (operational — a cache hit holds the same bytes a cold
    #: run would produce, so the merged document is unaffected).
    cached: bool = False
    #: Which remote worker executed the shard (socket scheduler only;
    #: operational — placement must never influence results).
    worker: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def merged_entry(self) -> Dict[str, Any]:
        """The deterministic slice of this record."""
        entry: Dict[str, Any] = {
            "index": self.index,
            "params": self.params,
            "seed": self.seed,
            "status": self.status,
        }
        if self.result is not None:
            entry["result"] = self.result
        if self.error is not None:
            entry["error"] = self.error
        return entry

    def checkpoint_payload(self) -> Dict[str, Any]:
        return self.merged_entry()


def _merge_numeric(total: Dict[str, Any], part: Dict[str, Any]) -> None:
    """Sum numeric leaves of ``part`` into ``total`` (recursively)."""
    for key, value in part.items():
        if isinstance(value, dict):
            _merge_numeric(total.setdefault(key, {}), value)
        elif isinstance(value, bool):
            continue
        elif isinstance(value, (int, float)):
            total[key] = total.get(key, 0) + value


@dataclass
class SweepReport:
    """Everything one :class:`~repro.runner.SweepRunner` run produced."""

    spec: ExperimentSpec
    shards: List[ShardResult] = field(default_factory=list)
    #: Per-worker telemetry snapshots from a remote (socket) scheduler,
    #: keyed by worker name. Operational: excluded from the merged
    #: document; feed it to :func:`repro.cluster.workers_openmetrics`.
    worker_telemetry: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Operational counters from the scheduler backend that ran the
    #: sweep (backend name, executed/reassigned counts, ...).
    scheduler_stats: Dict[str, Any] = field(default_factory=dict)

    # -- selections ---------------------------------------------------------

    @property
    def ok(self) -> List[ShardResult]:
        return [s for s in self.shards if s.status == STATUS_OK]

    @property
    def failed(self) -> List[ShardResult]:
        return [s for s in self.shards if s.status == STATUS_FAILED]

    @property
    def pending(self) -> List[ShardResult]:
        return [s for s in self.shards if s.status == STATUS_PENDING]

    @property
    def complete(self) -> bool:
        """Every shard reached a terminal state (ok or failed)."""
        return not self.pending

    @property
    def stalled(self) -> List[ShardResult]:
        """Shards the flight recorder flagged as stalled at least once
        (they may still have finished ok — stalls are advisory)."""
        return [s for s in self.shards if s.stalled]

    @property
    def from_cache(self) -> List[ShardResult]:
        """Shards served from the content-addressed result store."""
        return [s for s in self.shards if s.cached]

    def results(self) -> List[Dict[str, Any]]:
        """Scenario results of successful shards, in shard order."""
        return [s.result for s in self.ok]

    def require_ok(self) -> "SweepReport":
        """Raise :class:`~repro.errors.SweepError` unless every shard is ok.

        Library-style callers (the deprecated ``measure_*`` shims) want
        exceptions, not partial reports.
        """
        from ..errors import SweepError

        bad = self.failed + self.pending
        if bad:
            details = "; ".join(
                f"shard {s.index} {s.status}" + (f": {s.error}" if s.error else "")
                for s in bad[:5]
            )
            raise SweepError(
                f"sweep {self.spec.name!r}: {len(bad)} shard(s) not ok ({details})"
            )
        return self

    def rows(self) -> List[Dict[str, Any]]:
        """Params merged over results — one flat dict per ok shard.

        Result keys win on collision; handy for building tables.
        """
        merged = []
        for s in self.ok:
            row = dict(s.params)
            row.update(s.result or {})
            merged.append(row)
        return merged

    # -- the deterministic merged document ----------------------------------

    def merged_dict(self) -> Dict[str, Any]:
        """Spec + per-shard deterministic records, in shard order."""
        return {
            "spec": self.spec.to_dict(),
            "shards": [s.merged_entry() for s in self.shards],
        }

    def merged_json(self) -> str:
        """Canonical JSON of :meth:`merged_dict`.

        Bit-identical for the same spec regardless of worker count or
        checkpoint/resume history — the property the determinism tests
        assert with string equality.
        """
        return canonical_json(self.merged_dict())

    def merged_telemetry(self) -> Dict[str, Any]:
        """Sum of the numeric ``telemetry`` snapshots across ok shards.

        Scenarios include a card snapshot under the ``"telemetry"``
        result key when asked (``params={"telemetry": true}``); this
        folds them into one campaign-wide view (counters add; nested
        dicts merge recursively).
        """
        total: Dict[str, Any] = {}
        for s in self.ok:
            telemetry = (s.result or {}).get("telemetry")
            if isinstance(telemetry, dict):
                _merge_numeric(total, telemetry)
        return total

    def merged_waveforms(self) -> Dict[str, Any]:
        """Per-shard waveform digests plus one combined digest.

        Scenarios run with ``params={"waveforms": true}`` report their
        :meth:`~repro.telemetry.WaveformRecorder.digest` under the
        ``"waveform_digest"`` result key. Shard digests are deterministic
        and shard order is fixed by the spec, so the combined SHA-256 is
        byte-identical at any worker count and across kill-and-resume —
        one string proves a whole sweep's timelines reproduced.
        """
        import hashlib

        shard_digests: Dict[str, str] = {}
        for s in self.ok:
            digest = (s.result or {}).get("waveform_digest")
            if digest is not None:
                shard_digests[str(s.index)] = digest
        combined = (
            hashlib.sha256(canonical_json(shard_digests).encode()).hexdigest()
            if shard_digests
            else None
        )
        return {"combined_digest": combined, "shards": shard_digests}

    # -- human output -------------------------------------------------------

    def summary(self) -> str:
        from ..analysis.report import format_table

        rows = []
        for s in self.shards:
            note = ""
            if s.status == STATUS_FAILED:
                note = (s.error or "")[:60]
            elif s.cached:
                note = "from cache"
            elif s.from_checkpoint:
                note = "from checkpoint"
            if s.worker:
                note = f"{note} [{s.worker}]".strip()
            if s.stalled:
                note = f"{note} [stalled]".strip()
            rows.append(
                [
                    s.index,
                    s.status,
                    s.attempts,
                    f"{s.elapsed_s:.2f}",
                    canonical_json(s.params)[:64],
                    note,
                ]
            )
        title = (
            f"sweep {self.spec.name!r}: {len(self.ok)} ok, "
            f"{len(self.failed)} failed, {len(self.pending)} pending"
        )
        if self.from_cache:
            title += f" ({len(self.from_cache)} from cache)"
        return format_table(
            ["shard", "status", "attempts", "wall s", "params", "note"],
            rows,
            title=title,
        )

    def save_json(self, path) -> None:
        import json

        document = {
            "merged": self.merged_dict(),
            "operational": [
                {
                    "index": s.index,
                    "attempts": s.attempts,
                    "elapsed_s": s.elapsed_s,
                    "stalled": s.stalled,
                    "cached": s.cached,
                    "worker": s.worker,
                }
                for s in self.shards
            ],
            "scheduler": self.scheduler_stats,
            "worker_telemetry": self.worker_telemetry,
        }
        with open(path, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
