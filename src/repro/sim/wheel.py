"""Hierarchical timing-wheel event queue for the simulation kernel.

The binary-heap :class:`~repro.sim.events.EventQueue` pays an
O(log n) chain of *Python-level* ``Event.__lt__`` calls on every push
and pop, and lazy deletion leaves cancelled events resident until they
reach the heap top. Almost everything the hardware models schedule is
near-future (``now + wire_time``), which a timing wheel turns into an
O(1) ``list.append`` on schedule and an amortised O(1) pop: each event
is sorted exactly once, inside its final slot bucket, by C-level tuple
comparison.

Layout (all times are integer picoseconds):

* **level 0** — 2048 slots of 1024 ps: the current ~2.1 µs window,
  covering every per-packet delay (a 1518 B frame at 10 Gbps is
  ~1.23 µs on the wire).
* **level 1** — 2048 slots of ~2.1 µs: the current ~4.3 ms page,
  covering daemon housekeeping (1 ms rate-sampler ticks). Slots
  cascade into level 0 when the cursor reaches them.
* **overflow** — a plain heap for everything farther out; refilled
  into the wheels one ~4.3 ms page at a time.

Ordering contract: identical to the heap queue — events fire in
``(time, priority, seq)`` order, bit-for-bit (proven by
``tests/test_sim_queue_equivalence.py``). Equal-time events always land
in the same slot, and slot windows are disjoint in time, so sorting
each bucket once on arrival of the cursor yields the global order.
Events scheduled *behind* the (lazily advanced) cursor — legal whenever
``time >= now`` — are insorted directly into the currently draining
bucket, which keeps the invariant that the bucket remainder is the
global minimum.

Cancellation is a flag plus a dead counter; when dead entries outnumber
live ones the whole structure is compacted in one sweep, so
cancellation-heavy workloads (OpenFlow table churn) cannot accumulate
unbounded garbage the way the heap's lazy deletion can.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import List, Optional, Tuple

from .events import Event

#: Level-0 slot granularity: 2**10 = 1024 ps.
_G_BITS = 10
#: Slots per wheel level (2**11 = 2048 each).
_L0_BITS = 11
_L1_BITS = 11
_L0_SLOTS = 1 << _L0_BITS
_L1_SLOTS = 1 << _L1_BITS
_L0_MASK = _L0_SLOTS - 1
_L1_MASK = _L1_SLOTS - 1
#: Shift from a timestamp to its level-1 slot (~2.1 µs windows).
_S1_SHIFT = _G_BITS + _L0_BITS
#: Shift from a timestamp to its overflow page (~4.3 ms windows).
_S2_SHIFT = _S1_SHIFT + _L1_BITS

#: Compact only once at least this many dead entries are resident, so
#: small simulations never pay for a sweep.
_COMPACT_MIN_DEAD = 512

#: Bucket entry. The unique ``seq`` guarantees tuple comparison never
#: falls through to the Event, so ordering stays C-level.
Entry = Tuple[int, int, int, Event]


class TimingWheelQueue:
    """Drop-in replacement for :class:`~repro.sim.events.EventQueue`.

    Same surface: ``push`` / ``pop`` / ``peek_time`` /
    ``note_cancelled`` / ``len()`` / ``live_foreground`` — the kernel
    selects between the two via ``Simulator(event_queue=...)`` or the
    ``REPRO_EVENT_QUEUE`` environment variable.
    """

    def __init__(self) -> None:
        self._l0: List[List[Entry]] = [[] for _ in range(_L0_SLOTS)]
        self._l0_occ = 0  # bitmask of occupied level-0 slots
        self._l1: List[List[Entry]] = [[] for _ in range(_L1_SLOTS)]
        self._l1_occ = 0
        self._overflow: List[Entry] = []
        #: Bucket currently being drained, sorted; entries before
        #: ``_cur_idx`` have been returned (or skipped as cancelled).
        self._cur: List[Entry] = []
        self._cur_idx = 0
        self._cur_slot0 = 0  # absolute level-0 slot of the current bucket
        self._c1 = 0  # absolute level-1 slot covered by level 0
        self._c2 = 0  # absolute overflow page covered by level 1
        self._live = 0
        self._live_foreground = 0
        self._dead = 0  # cancelled entries still resident

    def __len__(self) -> int:
        return self._live

    @property
    def live_foreground(self) -> int:
        """Live events that keep an open-ended run() going (non-daemon)."""
        return self._live_foreground

    def push(self, event: Event) -> None:
        event._queue = self
        time = event.time
        entry = (time, event.priority, event.seq, event)
        s1 = time >> _S1_SHIFT
        if s1 <= self._c1:
            s0 = time >> _G_BITS
            if s0 > self._cur_slot0 and s1 == self._c1:
                idx = s0 & _L0_MASK
                self._l0[idx].append(entry)
                self._l0_occ |= 1 << idx
            else:
                # At or behind the draining slot (time >= now still
                # holds): insort into the sorted remainder so the
                # bucket stays the global minimum.
                insort(self._cur, entry, self._cur_idx)
        elif (time >> _S2_SHIFT) == self._c2:
            idx = s1 & _L1_MASK
            self._l1[idx].append(entry)
            self._l1_occ |= 1 << idx
        else:
            heapq.heappush(self._overflow, entry)
        self._live += 1
        if not event.daemon:
            self._live_foreground += 1

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        # Fast path first: the kernel's run loop peeks then pops, so
        # the cursor is usually already on a live entry.
        cur = self._cur
        idx = self._cur_idx
        if idx < len(cur):
            event = cur[idx][3]
            if not event.cancelled:
                self._cur_idx = idx + 1
                self._live -= 1
                if not event.daemon:
                    self._live_foreground -= 1
                return event
        if not self._advance():
            return None
        event = self._cur[self._cur_idx][3]
        self._cur_idx += 1
        self._live -= 1
        if not event.daemon:
            self._live_foreground -= 1
        return event

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if empty."""
        cur = self._cur
        idx = self._cur_idx
        if idx < len(cur):
            entry = cur[idx]
            if not entry[3].cancelled:
                return entry[0]
        if not self._advance():
            return None
        return self._cur[self._cur_idx][0]

    def _advance(self) -> bool:
        """Position ``_cur[_cur_idx]`` on the next live entry.

        Skips cancelled entries, advances the level-0 cursor to the
        next occupied slot (lowest set occupancy bit — slot indices are
        page-aligned, so bit order is time order), cascades level-1
        slots down, and refills the wheels from the overflow heap one
        page at a time. Returns False when no live event exists.
        """
        while True:
            cur = self._cur
            idx = self._cur_idx
            n = len(cur)
            while idx < n:
                if not cur[idx][3].cancelled:
                    self._cur_idx = idx
                    return True
                idx += 1
                self._dead -= 1
            if n:
                cur.clear()
            self._cur_idx = 0

            occ = self._l0_occ
            if occ:
                low = occ & -occ
                i = low.bit_length() - 1
                self._l0_occ = occ ^ low
                bucket = self._l0[i]
                self._l0[i] = []
                self._cur_slot0 = (self._c1 << _L0_BITS) + i
                bucket.sort()
                self._cur = bucket
                continue

            occ1 = self._l1_occ
            if occ1:
                low = occ1 & -occ1
                i = low.bit_length() - 1
                self._l1_occ = occ1 ^ low
                bucket = self._l1[i]
                self._l1[i] = []
                self._c1 = (self._c2 << _L1_BITS) + i
                # Pseudo-slot just before the page: the next loop pass
                # picks the real slot; meanwhile pushes behind it go to
                # the (empty, soon replaced) current bucket via insort.
                self._cur_slot0 = (self._c1 << _L0_BITS) - 1
                l0 = self._l0
                occ0 = 0
                for entry in bucket:
                    if entry[3].cancelled:
                        self._dead -= 1
                        continue
                    i0 = (entry[0] >> _G_BITS) & _L0_MASK
                    l0[i0].append(entry)
                    occ0 |= 1 << i0
                self._l0_occ = occ0
                continue

            ovf = self._overflow
            while ovf and ovf[0][3].cancelled:
                heapq.heappop(ovf)
                self._dead -= 1
            if not ovf:
                return False
            t0 = ovf[0][0]
            c2 = t0 >> _S2_SHIFT
            self._c2 = c2
            self._c1 = t0 >> _S1_SHIFT
            self._cur_slot0 = (t0 >> _G_BITS) - 1
            l0, l1 = self._l0, self._l1
            occ0 = occ1 = 0
            pop = heapq.heappop
            while ovf and (ovf[0][0] >> _S2_SHIFT) == c2:
                entry = pop(ovf)
                if entry[3].cancelled:
                    self._dead -= 1
                    continue
                time = entry[0]
                s1 = time >> _S1_SHIFT
                if s1 == self._c1:
                    i0 = (time >> _G_BITS) & _L0_MASK
                    l0[i0].append(entry)
                    occ0 |= 1 << i0
                else:
                    i1 = s1 & _L1_MASK
                    l1[i1].append(entry)
                    occ1 |= 1 << i1
            self._l0_occ = occ0
            self._l1_occ = occ1

    def note_cancelled(self, event: Event) -> None:
        """Account for one cancellation; compact when garbage dominates.

        Called exactly once per cancellation by :meth:`Event.cancel`.
        """
        self._live -= 1
        if not event.daemon:
            self._live_foreground -= 1
        self._dead += 1
        if self._dead >= _COMPACT_MIN_DEAD and self._dead > self._live:
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry from every structure in one sweep."""
        self._cur = [
            entry for entry in self._cur[self._cur_idx:] if not entry[3].cancelled
        ]
        self._cur_idx = 0
        for level, occ_attr in ((self._l0, "_l0_occ"), (self._l1, "_l1_occ")):
            remaining = getattr(self, occ_attr)
            occ = 0
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                i = low.bit_length() - 1
                bucket = [e for e in level[i] if not e[3].cancelled]
                level[i] = bucket
                if bucket:
                    occ |= low
            setattr(self, occ_attr, occ)
        live_overflow = [e for e in self._overflow if not e[3].cancelled]
        heapq.heapify(live_overflow)
        self._overflow = live_overflow
        self._dead = 0

    def debug_stats(self) -> dict:
        """Introspection for tests: live/dead/resident entry counts."""
        return {
            "impl": "wheel",
            "live": self._live,
            "live_foreground": self._live_foreground,
            "resident": self._live + self._dead + self._cur_idx,
            "dead": self._dead,
        }
