"""The discrete-event simulation kernel.

A :class:`Simulator` owns the virtual clock (integer picoseconds) and the
event queue. Components schedule callbacks with :meth:`Simulator.call_at`
/ :meth:`Simulator.call_after`, or run generator-based *processes*
(see :mod:`repro.sim.process`) for sequential logic.

Determinism: the run order of same-timestamp events is fixed by
``(priority, scheduling order)``, and all randomness comes from seeded
:class:`~repro.sim.random.RandomStreams`. The same configuration always
produces bit-identical results.
"""

from __future__ import annotations

import os
import weakref
from typing import Any, Callable, List, Optional

from ..errors import ConfigError, SimulationError
from .events import Event, EventQueue, PRIORITY_NORMAL
from .wheel import TimingWheelQueue

#: Selectable event-queue implementations. Both honour the same
#: ``(time, priority, seq)`` ordering contract, proven bit-identical by
#: tests/test_sim_queue_equivalence.py; ``wheel`` is the fast default,
#: ``heap`` the simple baseline kept as an escape hatch (select it with
#: ``REPRO_EVENT_QUEUE=heap`` or ``Simulator(event_queue="heap")``).
QUEUE_IMPLS = {"heap": EventQueue, "wheel": TimingWheelQueue}
DEFAULT_QUEUE_IMPL = "wheel"

#: Observability registry (:mod:`repro.obs`): callbacks invoked with each
#: newly constructed :class:`Simulator`, plus a weak pointer to the most
#: recent one. This is how cross-process tooling (the sweep flight
#: recorder's heartbeat sampler) and ``observe_simulators`` arm
#: observability on simulators created deep inside scenario code without
#: threading arguments through every constructor. Cost when unused: one
#: weakref and one truthiness check per Simulator created.
_CREATION_HOOKS: List[Callable[["Simulator"], None]] = []
_CURRENT_SIM: Optional["weakref.ref"] = None


def add_creation_hook(hook: Callable[["Simulator"], None]) -> None:
    """Register ``hook(sim)`` to run for every Simulator created."""
    _CREATION_HOOKS.append(hook)


def remove_creation_hook(hook: Callable[["Simulator"], None]) -> None:
    """Remove a previously added creation hook (no-op if absent)."""
    try:
        _CREATION_HOOKS.remove(hook)
    except ValueError:
        pass


def current_simulator() -> Optional["Simulator"]:
    """The most recently created live Simulator in this process, if any."""
    ref = _CURRENT_SIM
    return None if ref is None else ref()


class Simulator:
    """Discrete-event simulator with an integer-picosecond clock."""

    def __init__(self, event_queue: Optional[str] = None) -> None:
        impl = event_queue or os.environ.get("REPRO_EVENT_QUEUE") or DEFAULT_QUEUE_IMPL
        factory = QUEUE_IMPLS.get(impl)
        if factory is None:
            raise ConfigError(
                f"unknown event queue {impl!r}; choose from {sorted(QUEUE_IMPLS)}"
            )
        self.queue_impl: str = impl
        self._now: int = 0
        self._queue = factory()
        self._seq: int = 0
        self._running = False
        self._stop_requested = False
        #: The ``until`` bound of the active :meth:`run` call (None when
        #: open-ended or idle). Batched components (:mod:`repro.hw.burst`)
        #: read it to avoid advancing state past the run horizon.
        self._run_until: Optional[int] = None
        self.events_processed: int = 0
        self._tracer: Optional[Any] = None
        #: Cached kernel trace hooks (see :meth:`set_tracer`). With a
        #: :class:`repro.telemetry.Tracer` these are raw C-level
        #: ``deque.append`` methods, so an enabled trace costs one
        #: append per fired event and one small tuple per scheduled
        #: event — cheap enough to stay on under line-rate workloads.
        #: When None (the default) each hot path pays one None check.
        self._trace_sched: Optional[Callable[[Any], None]] = None
        self._trace_fire: Optional[Callable[[Any], None]] = None
        #: Armed :class:`repro.obs.SpanRecorder`, or None. Instrumented
        #: components read this directly (``spans = sim.spans``) so the
        #: disarmed datapath pays one attribute load + None check.
        self.spans: Optional[Any] = None
        #: Armed :class:`repro.telemetry.WaveformRecorder`, or None.
        #: Same pattern as ``spans``: probe sites read ``sim.waves`` and
        #: skip on None. Unlike spans/tracers, an armed recorder keeps
        #: burst-datapath lanes eligible — burst lanes feed the same
        #: series closed-form (see :mod:`repro.hw.burst`).
        self.waves: Optional[Any] = None
        #: Number of attached closed-loop traffic sources (flow
        #: transports — see :mod:`repro.flows`). The burst-datapath
        #: eligibility audit reads this: closed-loop traffic reacts to
        #: every delivery, so batched window advancement is unsafe while
        #: any source is attached.
        self._closed_loop_sources: int = 0
        #: Opt-in dispatch profiler (see :meth:`set_profiler`): when set,
        #: the run loop routes ``event.callback(*args)`` through
        #: ``profiler.dispatch(event)`` for wall-clock attribution.
        self._profiler: Optional[Any] = None
        self._profile_dispatch: Optional[Callable[[Any], None]] = None
        global _CURRENT_SIM
        _CURRENT_SIM = weakref.ref(self)
        if _CREATION_HOOKS:
            for hook in list(_CREATION_HOOKS):
                hook(self)

    # -- clock ---------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulated time in picoseconds."""
        return self._now

    # -- tracing ---------------------------------------------------------

    @property
    def tracer(self) -> Optional[Any]:
        """The attached telemetry tracer, if any (see :meth:`set_tracer`)."""
        return self._tracer

    @tracer.setter
    def tracer(self, tracer: Optional[Any]) -> None:
        self.set_tracer(tracer)

    def set_tracer(self, tracer: Optional[Any]) -> None:
        """Attach (or with None, detach) an event tracer.

        Normally a :class:`repro.telemetry.Tracer`, whose
        ``attach_kernel`` supplies the two ring appenders; any object
        with ``.instant(time_ps, category, name, detail)`` also works
        (hooks are synthesized from it). The kernel reports every event
        scheduled and fired; instrumented hardware models discover the
        tracer here and report packet milestones.
        """
        self._tracer = tracer
        if tracer is None:
            self._trace_sched = None
            self._trace_fire = None
            return
        attach = getattr(tracer, "attach_kernel", None)
        if attach is not None:
            self._trace_sched, self._trace_fire = attach(self)
        else:
            self._trace_sched = lambda pair: tracer.instant(
                pair[0], "kernel", "schedule", pair[1]
            )
            self._trace_fire = lambda event: tracer.instant(
                event.time, "kernel", "fire", event
            )

    @property
    def events_scheduled(self) -> int:
        """Total events ever created on this simulator."""
        return self._seq

    # -- profiling -------------------------------------------------------

    @property
    def profiler(self) -> Optional[Any]:
        """The attached dispatch profiler, if any (see :meth:`set_profiler`)."""
        return self._profiler

    def set_profiler(self, profiler: Optional[Any]) -> None:
        """Attach (or with None, detach) a dispatch profiler.

        Normally a :class:`repro.obs.SimProfiler`. While attached, every
        fired event is dispatched through ``profiler.dispatch(event)``
        instead of calling ``event.callback(*event.args)`` directly, so
        the profiler can attribute wall-clock time to handlers. The
        dispatch method is cached like the trace hooks; when detached
        the run loop pays only a None check per event. Takes effect on
        the next :meth:`run` call (the loop binds the hook on entry).
        """
        self._profiler = profiler
        self._profile_dispatch = None if profiler is None else profiler.dispatch

    # -- scheduling ------------------------------------------------------

    def call_at(
        self,
        time_ps: int,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
        daemon: bool = False,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time_ps``.

        ``daemon=True`` marks background housekeeping (periodic clock
        ticks, stats snapshots): an open-ended :meth:`run` stops once
        only daemon events remain.
        """
        if time_ps < self._now:
            raise SimulationError(
                f"cannot schedule at t={time_ps} ps; now is {self._now} ps"
            )
        self._seq += 1
        event = Event(time_ps, priority, self._seq, callback, args, daemon=daemon)
        self._queue.push(event)
        trace = self._trace_sched
        if trace is not None:
            trace((self._now, event))
        return event

    def call_after(
        self,
        delay_ps: int,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
        daemon: bool = False,
    ) -> Event:
        """Schedule ``callback(*args)`` after a relative delay.

        This is the hardware models' hot path (everything schedules at
        ``now + wire_time``), so it inlines :meth:`call_at` rather than
        delegating — one Python frame per scheduled event, not two.
        """
        if delay_ps < 0:
            raise SimulationError(f"negative delay: {delay_ps} ps")
        self._seq = seq = self._seq + 1
        event = Event(self._now + delay_ps, priority, seq, callback, args, daemon)
        self._queue.push(event)
        trace = self._trace_sched
        if trace is not None:
            trace((self._now, event))
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event scheduled on this simulator.

        Idempotent: cancelling the same event again is a no-op (the
        queue's live accounting is adjusted exactly once, so repeated
        cancels cannot drain an open-ended :meth:`run` early).
        Cancelling an event that already fired raises
        :class:`SimulationError`.
        """
        event.cancel()

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        """Fire the next event. Returns ``False`` when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:  # pragma: no cover - internal invariant
            raise SimulationError("event queue produced an event in the past")
        self._now = event.time
        event.fired = True
        self.events_processed += 1
        trace = self._trace_fire
        if trace is not None:
            trace(event)
        profile = self._profile_dispatch
        if profile is None:
            event.callback(*event.args)
        else:
            profile(event)
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        ``until`` is an absolute simulated time; when given, the clock is
        advanced to exactly ``until`` even if the queue drains earlier.
        Returns the number of events processed by this call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until t={until} ps; now is {self._now} ps"
            )
        self._running = True
        self._stop_requested = False
        self._run_until = until
        queue = self._queue
        peek_time = queue.peek_time
        pop = queue.pop
        profile = self._profile_dispatch
        fired = 0
        try:
            # The dispatch loop inlines step() — one Python frame per
            # fired event, with the queue methods pre-bound. The
            # ``fired != max_events`` form also covers max_events=None
            # (never equal), keeping that check to a single compare.
            while not self._stop_requested and fired != max_events:
                next_time = peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                # Open-ended runs stop when only daemon housekeeping
                # (e.g. GPS pulse-per-second ticks) remains. Reads the
                # counter, not the live_foreground property: a Python
                # property costs a frame per dispatched event here.
                if until is None and queue._live_foreground == 0:
                    break
                event = pop()
                self._now = event.time
                event.fired = True
                self.events_processed += 1
                trace = self._trace_fire
                if trace is not None:
                    trace(event)
                if profile is None:
                    event.callback(*event.args)
                else:
                    profile(event)
                fired += 1
        finally:
            self._running = False
            self._run_until = None
        if until is not None and not self._stop_requested:
            self._now = max(self._now, until)
        return fired

    def run_for(self, duration_ps: int, max_events: Optional[int] = None) -> int:
        """Run for a relative duration of simulated time."""
        return self.run(until=self._now + duration_ps, max_events=max_events)

    def stop(self) -> None:
        """Request that the current :meth:`run` loop stop after this event."""
        self._stop_requested = True

    def pending_events(self) -> int:
        """Number of live (non-cancelled, unfired) events."""
        return len(self._queue)

    def queue_stats(self) -> dict:
        """Event-queue introspection (impl name, live/dead/resident)."""
        return self._queue.debug_stats()
