"""Seeded, named random streams.

Every stochastic component draws from its own named stream derived from
one root seed. Adding a new component (or reordering draws in one) never
perturbs the randomness seen by the others, so regression baselines stay
stable and every run is reproducible from ``(root_seed, stream name)``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """Factory of independent :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The per-stream seed is a SHA-256 of the root seed and the name,
        so streams are statistically independent and stable across runs.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.root_seed}/{name}".encode()).digest()
        stream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = stream
        return stream

    def fork(self, salt: str) -> "RandomStreams":
        """Derive an independent :class:`RandomStreams` (e.g. per device)."""
        digest = hashlib.sha256(f"{self.root_seed}/fork/{salt}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
