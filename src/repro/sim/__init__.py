"""Discrete-event simulation kernel (picosecond integer time).

Public surface:

* :class:`Simulator` — clock + event queue (timing wheel by default;
  select with ``Simulator(event_queue=...)`` or ``REPRO_EVENT_QUEUE``).
* :class:`Event` — handle returned by scheduling calls.
* :class:`EventQueue` / :class:`TimingWheelQueue` — the two
  order-equivalent queue implementations.
* :func:`spawn` / :class:`Process` / :class:`Signal` — generator processes.
* :class:`RandomStreams` — named, seeded randomness.
"""

from .events import Event, EventQueue, PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL
from .kernel import (
    DEFAULT_QUEUE_IMPL,
    QUEUE_IMPLS,
    Simulator,
    add_creation_hook,
    current_simulator,
    remove_creation_hook,
)
from .process import Process, Signal, spawn
from .random import RandomStreams
from .wheel import TimingWheelQueue

__all__ = [
    "DEFAULT_QUEUE_IMPL",
    "Event",
    "EventQueue",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "Process",
    "QUEUE_IMPLS",
    "RandomStreams",
    "Signal",
    "Simulator",
    "TimingWheelQueue",
    "add_creation_hook",
    "current_simulator",
    "remove_creation_hook",
    "spawn",
]
