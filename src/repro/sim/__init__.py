"""Discrete-event simulation kernel (picosecond integer time).

Public surface:

* :class:`Simulator` — clock + event queue.
* :class:`Event` — handle returned by scheduling calls.
* :func:`spawn` / :class:`Process` / :class:`Signal` — generator processes.
* :class:`RandomStreams` — named, seeded randomness.
"""

from .events import Event, PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL
from .kernel import Simulator
from .process import Process, Signal, spawn
from .random import RandomStreams

__all__ = [
    "Event",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "Process",
    "RandomStreams",
    "Signal",
    "Simulator",
    "spawn",
]
