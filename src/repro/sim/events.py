"""Event objects and the event queue for the discrete-event kernel.

Events are ordered by ``(time, priority, sequence)``. The sequence number
makes ordering total and deterministic: two events scheduled for the same
time and priority fire in the order they were scheduled, on every run.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from ..errors import SimulationError

#: Default event priority. Lower fires first at equal timestamps.
PRIORITY_NORMAL = 100
#: Used by hardware models that must observe state before normal events.
PRIORITY_HIGH = 10
#: Used by bookkeeping (stats snapshots) that must run after normal events.
PRIORITY_LOW = 1000


class Event:
    """A scheduled callback. Created by the simulator, not directly.

    The public surface is :meth:`cancel` and the :attr:`cancelled` /
    :attr:`fired` flags; everything else is kernel internals.

    A *daemon* event (like a GPS pulse-per-second tick) does not keep an
    open-ended ``run()`` alive: when only daemon events remain, the
    simulation is considered drained.
    """

    __slots__ = (
        "time",
        "priority",
        "seq",
        "callback",
        "args",
        "cancelled",
        "fired",
        "daemon",
        "_queue",
    )

    def __init__(
        self,
        time: int,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        daemon: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.daemon = daemon
        self._queue: Optional[Any] = None

    def cancel(self) -> None:
        """Prevent the event from firing.

        Idempotent: cancelling twice is a no-op, and the owning queue's
        live-event accounting is adjusted exactly once. Cancelling an
        event that already fired raises :class:`SimulationError`.
        """
        if self.cancelled:
            return
        if self.fired:
            raise SimulationError("cannot cancel an event that already fired")
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue.note_cancelled(self)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time} prio={self.priority} {name} {state}>"


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects.

    Cancelled events stay in the heap and are skipped on pop (lazy
    deletion) — cancellation is O(1), pop stays O(log n) amortised.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._live = 0
        self._live_foreground = 0

    def __len__(self) -> int:
        return self._live

    @property
    def live_foreground(self) -> int:
        """Live events that keep an open-ended run() going (non-daemon)."""
        return self._live_foreground

    def push(self, event: Event) -> None:
        event._queue = self
        heapq.heappush(self._heap, event)
        self._live += 1
        if not event.daemon:
            self._live_foreground += 1

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            if not event.daemon:
                self._live_foreground -= 1
            return event
        return None

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def note_cancelled(self, event: Event) -> None:
        """Tell the queue one of its events was cancelled (for len()).

        Called exactly once per cancellation by :meth:`Event.cancel`;
        callers must not invoke it directly (double-counting would
        corrupt the live totals and truncate open-ended runs).
        """
        self._live -= 1
        if not event.daemon:
            self._live_foreground -= 1

    def debug_stats(self) -> dict:
        """Introspection for tests: live/dead/resident entry counts."""
        resident = len(self._heap)
        return {
            "impl": "heap",
            "live": self._live,
            "live_foreground": self._live_foreground,
            "resident": resident,
            "dead": resident - self._live,
        }
