"""Generator-based simulation processes.

Hardware pipelines are naturally sequential ("receive, wait the lookup
delay, enqueue"), which reads badly as callback chains. A *process* is a
generator driven by the kernel; it yields what it wants to wait for:

* an ``int`` — sleep that many picoseconds;
* a :class:`Signal` — park until another component fires it.

Example::

    def refill(sim, bucket):
        while True:
            yield 1000          # every nanosecond
            bucket.add_tokens(1)

    spawn(sim, refill(sim, bucket))
"""

from __future__ import annotations

from typing import Any, Generator, Iterator, List, Optional, Union

from ..errors import SimulationError
from .kernel import Simulator


class Signal:
    """A one-to-many wait point. Processes yield it; someone fires it.

    A fire wakes every process currently waiting and passes them the
    fired ``value``. Signals are reusable: new waiters can park after a
    fire and will be woken by the next one.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: List["Process"] = []

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters, passing ``value``. Returns the count."""
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            process._wake(value)
        return len(waiters)

    def _park(self, process: "Process") -> None:
        self._waiters.append(process)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Signal {self.name!r} waiters={len(self._waiters)}>"


Yieldable = Union[int, Signal]


class Process:
    """A running generator process bound to a simulator."""

    def __init__(self, sim: Simulator, generator: Generator[Yieldable, Any, Any], name: str = "") -> None:
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator: Optional[Iterator] = generator
        self.finished = False
        self.result: Any = None

    def _start(self) -> None:
        # First advance happens via an immediate event so spawn() returns
        # before any process code runs — scheduling order stays explicit.
        self.sim.call_after(0, self._advance, None)

    def _advance(self, send_value: Any) -> None:
        if self.finished or self._generator is None:
            return
        try:
            wanted = self._generator.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self._generator = None
            return
        if isinstance(wanted, int):
            if wanted < 0:
                raise SimulationError(f"process {self.name!r} yielded negative delay")
            self.sim.call_after(wanted, self._advance, None)
        elif isinstance(wanted, Signal):
            wanted._park(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded {wanted!r}; expected int or Signal"
            )

    def _wake(self, value: Any) -> None:
        # Wake via the event queue, not synchronously, so all waiters of
        # one fire() run in deterministic scheduling order.
        self.sim.call_after(0, self._advance, value)

    def kill(self) -> None:
        """Terminate the process; it will not run again."""
        self.finished = True
        self._generator = None


def spawn(sim: Simulator, generator: Generator[Yieldable, Any, Any], name: str = "") -> Process:
    """Create and start a :class:`Process` on ``sim``."""
    process = Process(sim, generator, name=name)
    process._start()
    return process
