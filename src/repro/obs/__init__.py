"""Causal observability: packet spans, sim profiler, flight recorder.

Built on :mod:`repro.telemetry` (which aggregates), :mod:`repro.obs`
answers *causal* and *operational* questions:

* :class:`SpanRecorder` — per-packet lifecycle spans (generator → TX
  stamp → MACs → DUT → capture → host, including fault actions),
  correlated across the device under test by the in-band TX stamp,
  exportable as Chrome trace JSON and a JSONL "packet story" table;
* :class:`SimProfiler` — wall-clock attribution of kernel dispatch and
  the "sim speedometer" (sim-ps advanced per wall second);
* :class:`HeartbeatWriter` / :class:`FlightTailer` — the sweep flight
  recorder: per-shard heartbeat files, live progress/ETA, stall
  detection (see :class:`repro.runner.SweepRunner`'s ``flight_dir``).

Nothing in this package perturbs simulated behaviour: spans and
profiles never schedule events, mutate packets or touch RNG streams,
so results stay bit-identical with observability on or off.

:func:`observe_simulators` arms recorders on every simulator created
inside a ``with`` block — the way to observe scenario code that builds
its own :class:`~repro.sim.Simulator` internally::

    spans, profiler = SpanRecorder(), SimProfiler()
    with observe_simulators(spans=spans, profiler=profiler):
        result = legacy_latency_point(frame_size=256, load=0.4)
    spans.write_stories("packets.jsonl")
    print(profiler.format_report())
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from ..sim import kernel as _kernel
from .flight import (
    DEFAULT_HEARTBEAT_S,
    DEFAULT_STALL_FACTOR,
    FlightTailer,
    HeartbeatWriter,
    heartbeat_path,
    read_heartbeats,
    render_progress,
)
from .profiler import SimProfiler
from .spans import DEFAULT_SPAN_CAPACITY, PacketSpan, SpanRecorder


@contextmanager
def observe_simulators(
    spans: Optional[SpanRecorder] = None,
    profiler: Optional[SimProfiler] = None,
    tracer=None,
    waves=None,
):
    """Arm observability on every Simulator created inside the block.

    Each new simulator gets the given :class:`SpanRecorder` /
    :class:`SimProfiler` / tracer / waveform recorder
    (:class:`repro.telemetry.WaveformRecorder`) attached at construction
    time (recorders move to the newest one; their recorded data
    accumulates). On exit the hook is removed and the recorders are
    detached. Yields the ``(spans, profiler)`` pair for convenience.
    """

    def hook(sim) -> None:
        if tracer is not None:
            sim.set_tracer(tracer)
        if spans is not None:
            spans.arm(sim)
        if profiler is not None:
            profiler.attach(sim)
        if waves is not None:
            waves.arm(sim)

    _kernel.add_creation_hook(hook)
    try:
        yield spans, profiler
    finally:
        _kernel.remove_creation_hook(hook)
        if spans is not None:
            spans.disarm()
        if profiler is not None and profiler.attached:
            profiler.detach()
        if waves is not None:
            waves.disarm()


__all__ = [
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_SPAN_CAPACITY",
    "DEFAULT_STALL_FACTOR",
    "FlightTailer",
    "HeartbeatWriter",
    "PacketSpan",
    "SimProfiler",
    "SpanRecorder",
    "heartbeat_path",
    "observe_simulators",
    "read_heartbeats",
    "render_progress",
]
