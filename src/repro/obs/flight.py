"""The sweep flight recorder: worker heartbeats, live progress, stalls.

A long sharded sweep (:class:`repro.runner.SweepRunner`) is otherwise a
black box between launch and report. The flight recorder opens it up
with plain append-only JSONL files, one per shard attempt:

* **worker side** — :class:`HeartbeatWriter` runs a daemon thread in the
  worker process that appends a beat line every ``interval_s`` wall
  seconds: shard, attempt, sequence number, wall time, and a sample of
  the live simulation (``sim_ps``, ``events``, plus deltas since the
  previous beat) taken via :func:`repro.sim.current_simulator` — no
  cooperation from scenario code required;
* **parent side** — :class:`FlightTailer` tails those files between
  poll cycles, maintains per-shard liveness and flags a **stall** when
  a tracked shard has produced no beat within ``stall_after_s``
  (defaulting to ``k×interval``). Stalls are advisory — the runner's
  wall-clock timeout still decides life and death — but they surface in
  the :class:`~repro.runner.SweepReport` and the live progress line.

Heartbeat files are operational telemetry: they never feed the merged
report, so ``merged_json()`` stays bit-identical with the recorder on
or off.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..sim.kernel import current_simulator

#: Default seconds between worker heartbeats.
DEFAULT_HEARTBEAT_S = 0.25
#: Default stall threshold as a multiple of the heartbeat interval
#: ("no heartbeat within k×interval → flagged").
DEFAULT_STALL_FACTOR = 10.0
#: Heartbeat file name suffix.
HEARTBEAT_SUFFIX = ".hb.jsonl"


def heartbeat_path(directory: Union[str, Path], shard_index: int, attempt: int) -> Path:
    """The heartbeat file for one shard attempt."""
    return Path(directory) / f"shard-{shard_index:05d}-a{attempt}{HEARTBEAT_SUFFIX}"


class HeartbeatWriter:
    """Appends periodic beat lines for one shard attempt (worker side).

    Beats normally append to a JSONL file at ``path``; a custom
    ``sink`` callable receives each beat dict instead (the socket
    scheduler's remote workers stream beats over their connection this
    way, in the same format). With a sink, ``path`` may be None.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]],
        shard_index: int,
        attempt: int = 1,
        interval_s: float = DEFAULT_HEARTBEAT_S,
        clock=time.monotonic,
        sink=None,
    ) -> None:
        if path is None and sink is None:
            raise ValueError("HeartbeatWriter needs a path or a sink")
        self.path = Path(path) if path is not None else None
        self.sink = sink
        self.shard_index = shard_index
        self.attempt = attempt
        self.interval_s = interval_s
        self.clock = clock
        self.seq = 0
        self._started_at: Optional[float] = None
        self._last_sim_ps: Optional[int] = None
        self._last_events: Optional[int] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "HeartbeatWriter":
        """Write the ``start`` beat and launch the ticker thread."""
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._started_at = self.clock()
        self.beat("start")
        self._thread = threading.Thread(
            target=self._loop, name=f"heartbeat-{self.shard_index}", daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.beat("tick")

    def stop(self, kind: str = "done") -> None:
        """Stop the ticker and write a final beat of ``kind``."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval_s * 4 + 1.0)
            self._thread = None
        self.beat(kind)

    def __enter__(self) -> "HeartbeatWriter":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop("failed" if exc_type is not None else "done")

    # -- beats -------------------------------------------------------------

    def beat(self, kind: str) -> Dict[str, Any]:
        """Sample the live simulation and append one beat line."""
        with self._lock:
            self.seq += 1
            sim = current_simulator()
            sim_ps = sim.now if sim is not None else None
            events = sim.events_processed if sim is not None else None
            line: Dict[str, Any] = {
                "v": 1,
                "kind": kind,
                "shard": self.shard_index,
                "attempt": self.attempt,
                "seq": self.seq,
                "wall_s": round(self.clock() - (self._started_at or 0.0), 6),
                "sim_ps": sim_ps,
                "events": events,
            }
            if sim_ps is not None and self._last_sim_ps is not None:
                line["d_sim_ps"] = sim_ps - self._last_sim_ps
            if events is not None and self._last_events is not None:
                line["d_events"] = events - self._last_events
            self._last_sim_ps = sim_ps
            self._last_events = events
            if self.sink is not None:
                try:
                    self.sink(line)
                except Exception:
                    pass  # a dead sink must never kill the shard
            else:
                with open(self.path, "a") as handle:
                    handle.write(json.dumps(line, sort_keys=True) + "\n")
                    handle.flush()
            return line


def read_heartbeats(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """All complete beat lines of one heartbeat file (tolerates a torn
    trailing line from a killed worker)."""
    try:
        raw = Path(path).read_bytes()
    except FileNotFoundError:
        return []
    beats = []
    for line in raw.split(b"\n"):
        if not line:
            continue
        try:
            beats.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return beats


class FlightTailer:
    """Tails per-shard heartbeat files and detects stalls (parent side).

    The runner calls :meth:`track` when it launches an attempt,
    :meth:`poll` every scheduler cycle, and :meth:`untrack` when the
    attempt finishes. Only incremental file bytes are read per poll.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        stall_after_s: float,
        clock=time.monotonic,
    ) -> None:
        if stall_after_s <= 0:
            raise ValueError(f"stall_after_s must be > 0, got {stall_after_s}")
        self.directory = Path(directory)
        self.stall_after_s = stall_after_s
        self.clock = clock
        self._tracked: Dict[int, Dict[str, Any]] = {}  # shard -> state
        #: Shards that were flagged stalled at least once (ever).
        self.stalled_shards: set = set()

    def track(self, shard_index: int, attempt: int) -> None:
        """Start following one shard attempt's heartbeat file."""
        self._tracked[shard_index] = {
            "attempt": attempt,
            "path": heartbeat_path(self.directory, shard_index, attempt),
            "offset": 0,
            "buffer": b"",
            "beats": 0,
            "last_beat": None,
            "last_seen_at": self.clock(),  # tracked-at counts as activity
            "stalled": False,
        }

    def untrack(self, shard_index: int) -> None:
        self._tracked.pop(shard_index, None)

    def _drain(self, state: Dict[str, Any]) -> None:
        """Read new complete lines from the shard's heartbeat file."""
        path: Path = state["path"]
        try:
            with open(path, "rb") as handle:
                handle.seek(state["offset"])
                chunk = handle.read()
        except FileNotFoundError:
            return
        if not chunk:
            return
        state["offset"] += len(chunk)
        data = state["buffer"] + chunk
        lines = data.split(b"\n")
        state["buffer"] = lines.pop()  # tail may be mid-write
        fresh = 0
        for line in lines:
            if not line:
                continue
            try:
                beat = json.loads(line)
            except json.JSONDecodeError:
                continue
            state["last_beat"] = beat
            fresh += 1
        if fresh:
            state["beats"] += fresh
            state["last_seen_at"] = self.clock()
            state["stalled"] = False

    def poll(self) -> Dict[int, Dict[str, Any]]:
        """Drain every tracked file; returns per-shard status dicts."""
        now = self.clock()
        statuses: Dict[int, Dict[str, Any]] = {}
        for shard_index, state in self._tracked.items():
            self._drain(state)
            age = now - state["last_seen_at"]
            if age > self.stall_after_s:
                state["stalled"] = True
                self.stalled_shards.add(shard_index)
            beat = state["last_beat"] or {}
            statuses[shard_index] = {
                "shard": shard_index,
                "attempt": state["attempt"],
                "beats": state["beats"],
                "last_age_s": age,
                "stalled": state["stalled"],
                "sim_ps": beat.get("sim_ps"),
                "events": beat.get("events"),
                "d_sim_ps": beat.get("d_sim_ps"),
                "d_events": beat.get("d_events"),
            }
        return statuses


def render_progress(
    done: int,
    failed: int,
    total: int,
    statuses: Dict[int, Dict[str, Any]],
    elapsed_s: float,
    cached: int = 0,
) -> str:
    """One live progress/ETA line from the tailer's poll output.

    ``cached`` counts shards served instantly from the result store
    (PR 6). They complete in ~0s, so including them in the per-shard
    rate makes the ETA collapse toward zero on warm-cache sweeps; the
    estimate uses freshly executed shards only. Remaining shards are
    assumed fresh — a pessimistic ETA that corrects itself as further
    cache hits land.
    """
    finished = done + failed
    fresh = finished - cached
    if fresh > 0 and total > finished and elapsed_s > 0:
        eta = elapsed_s / fresh * (total - finished)
        eta_text = f", eta {eta:.0f}s"
    else:
        eta_text = ""
    cached_text = f", {cached} cached" if cached else ""
    running = len(statuses)
    stalled = sorted(s["shard"] for s in statuses.values() if s["stalled"])
    stall_text = f", STALLED: {stalled}" if stalled else ""
    sim_parts = [
        f"s{index}@{status['sim_ps'] / 1e6:.1f}µs"
        for index, status in sorted(statuses.items())
        if status["sim_ps"] is not None
    ]
    sim_text = f" [{' '.join(sim_parts)}]" if sim_parts else ""
    return (
        f"sweep: {finished}/{total} done ({failed} failed){cached_text}, "
        f"{running} running{sim_text}, {elapsed_s:.0f}s elapsed{eta_text}{stall_text}"
    )
