"""The sim-time profiler: wall-clock attribution of kernel dispatch.

Answers the operational question every long sweep raises — *where is
the wall-clock going, and how fast is simulated time advancing?* —
without touching simulated behaviour. Attached via
:meth:`repro.sim.Simulator.set_profiler`, the kernel routes every fired
event through :meth:`SimProfiler.dispatch`, which times the callback
with ``perf_counter`` and attributes it to the handler's qualified name.

The headline number is the **speedometer**: simulated picoseconds
advanced per wall-clock second. The breakdown is the top-N hottest
handlers by cumulative wall time. Detached cost is one None check per
dispatched event (benchmarked in ``benchmarks/test_perf_obs.py``).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional


class SimProfiler:
    """Wall-clock dispatch profiler (attach with ``sim.set_profiler``).

    >>> profiler = SimProfiler().attach(sim)
    >>> sim.run()
    >>> profiler.detach()
    >>> print(profiler.format_report())

    Re-attaching to a new simulator accumulates: stats and the
    speedometer carry across (the ``observe_simulators`` helper uses
    this to profile every simulator a scenario creates).
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self.clock = clock
        #: label -> [calls, cumulative_wall_seconds]
        self._stats: Dict[str, List[float]] = {}
        self.events = 0
        self._sim = None
        self._sim_base_ps = 0
        self._sim_ps_accumulated = 0
        self._wall_started: Optional[float] = None
        self._wall_accumulated = 0.0

    # -- lifecycle ---------------------------------------------------------

    def attach(self, sim) -> "SimProfiler":
        """Start profiling ``sim`` (detaches from any previous one)."""
        if self._sim is not None and self._sim is not sim:
            self.detach()
        self._sim = sim
        self._sim_base_ps = sim.now
        if self._wall_started is None:
            self._wall_started = self.clock()
        sim.set_profiler(self)
        return self

    def detach(self) -> "SimProfiler":
        """Stop profiling; accumulated stats and clocks are kept."""
        sim = self._sim
        if sim is not None:
            self._sim_ps_accumulated += sim.now - self._sim_base_ps
            if sim.profiler is self:
                sim.set_profiler(None)
            self._sim = None
        if self._wall_started is not None:
            self._wall_accumulated += self.clock() - self._wall_started
            self._wall_started = None
        return self

    @property
    def attached(self) -> bool:
        return self._sim is not None

    # -- the kernel hook ---------------------------------------------------

    def dispatch(self, event) -> None:
        """Fire one event, billing its wall time to the handler label."""
        clock = self.clock
        start = clock()
        try:
            event.callback(*event.args)
        finally:
            elapsed = clock() - start
            callback = event.callback
            label = getattr(callback, "__qualname__", None) or repr(callback)
            entry = self._stats.get(label)
            if entry is None:
                self._stats[label] = [1, elapsed]
            else:
                entry[0] += 1
                entry[1] += elapsed
            self.events += 1

    # -- reads -------------------------------------------------------------

    def sim_ps_advanced(self) -> int:
        """Simulated picoseconds advanced while attached (cumulative)."""
        total = self._sim_ps_accumulated
        if self._sim is not None:
            total += self._sim.now - self._sim_base_ps
        return total

    def wall_elapsed_s(self) -> float:
        """Wall-clock seconds spent attached (cumulative)."""
        total = self._wall_accumulated
        if self._wall_started is not None:
            total += self.clock() - self._wall_started
        return total

    def sim_ps_per_wall_s(self) -> float:
        """The speedometer: simulated ps advanced per wall second."""
        wall = self.wall_elapsed_s()
        if wall <= 0.0:
            return 0.0
        return self.sim_ps_advanced() / wall

    def hottest(self, top_n: int = 10) -> List[Dict[str, Any]]:
        """Top-N handlers by cumulative wall time."""
        ranked = sorted(
            self._stats.items(), key=lambda item: item[1][1], reverse=True
        )
        return [
            {
                "handler": label,
                "calls": int(calls),
                "wall_s": wall_s,
                "mean_us": (wall_s / calls) * 1e6 if calls else 0.0,
            }
            for label, (calls, wall_s) in ranked[:top_n]
        ]

    def report(self, top_n: int = 10) -> Dict[str, Any]:
        """The whole profile as one plain dict."""
        return {
            "events": self.events,
            "wall_s": self.wall_elapsed_s(),
            "sim_ps": self.sim_ps_advanced(),
            "sim_ps_per_wall_s": self.sim_ps_per_wall_s(),
            "hottest": self.hottest(top_n),
        }

    def format_report(self, top_n: int = 10) -> str:
        """The profile as a human-readable table."""
        from ..analysis.report import format_table

        speed = self.sim_ps_per_wall_s()
        title = (
            f"sim speedometer: {speed / 1e12:.4f} sim-s/wall-s "
            f"({self.events} events in {self.wall_elapsed_s():.2f} wall-s)"
        )
        rows = [
            [
                entry["handler"],
                entry["calls"],
                f"{entry['wall_s'] * 1e3:.2f}",
                f"{entry['mean_us']:.2f}",
            ]
            for entry in self.hottest(top_n)
        ]
        return format_table(["handler", "calls", "wall ms", "mean µs"], rows, title=title)
