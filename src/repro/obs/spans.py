"""Packet-lifecycle spans: the causal record of one frame's journey.

The paper's tester correlates per-packet cause and effect by embedding a
64-bit timestamp just before the TX MAC and extracting it at capture.
:class:`SpanRecorder` lifts that correlation trick into the simulation's
observability plane: when armed on a :class:`~repro.sim.Simulator`, the
instrumented datapaths report hop events —

    generator → tx_stamp → mac_tx → (fault actions) → mac_rx
              → switch / flow table → rx_capture → host

— into per-packet :class:`PacketSpan` records. Correlation across the
device under test uses two keys, exactly mirroring the hardware:

* the Python-side ``packet_id`` while the same :class:`~repro.net.packet.
  Packet` object travels (tester-internal hops);
* the **raw embedded TX stamp** once the DUT re-emits a *fresh* frame
  object (a real switch outputs a new signal, not the tester's packet
  instance) — :meth:`SpanRecorder.lookup` falls back to extracting the
  stamp bytes and aliases the new ``packet_id`` onto the span.

Disarmed cost is one attribute load + None check per hop site (the same
pattern the kernel tracer uses). Spans never mutate packets, never
schedule events and never touch RNG streams, so arming/disarming leaves
every scenario result bit-identical — the determinism guard in
``tests/test_obs.py`` asserts exactly that.

Exports: Chrome ``trace_event`` JSON (nested begin/end pairs per span,
loadable in Perfetto next to the kernel tracer's instants — see
:func:`repro.telemetry.chrome_trace`) and a per-packet JSONL "packet
story" table (:meth:`SpanRecorder.stories_jsonl`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..net.packet import Packet

#: Bound on live spans: beyond this the oldest span (and its index
#: entries) is evicted, like the tracer's ring buffer.
DEFAULT_SPAN_CAPACITY = 1 << 14
#: Default byte offset of the embedded TX stamp (the OSNT tools'
#: 14 + 20 + 8 = start of a minimal UDP payload).
DEFAULT_STAMP_OFFSET = 42
_STAMP_BYTES = 8

#: Fault actions that end a packet's life on the wire: the span is
#: closed with outcome ``fault_<action>`` when one touches it.
_TERMINAL_FAULT_ACTIONS = frozenset({"drop", "corrupt"})


class PacketSpan:
    """One packet's recorded lifecycle: hops, fault actions, outcome."""

    __slots__ = (
        "span_id",
        "packet_ids",
        "origin",
        "born_ps",
        "tx_stamp_raw",
        "hops",
        "faults",
        "closed",
        "outcome",
    )

    def __init__(self, span_id: int, packet_id: int, origin: str, born_ps: int) -> None:
        self.span_id = span_id
        #: Every Packet identity this span travelled as (DUTs re-emit
        #: fresh frame objects; stamp-based lookup aliases them here).
        self.packet_ids: List[int] = [packet_id]
        self.origin = origin
        self.born_ps = born_ps
        self.tx_stamp_raw: Optional[int] = None
        #: ``(time_ps, hop_name, detail_or_None)`` in recording order.
        self.hops: List[Tuple[int, str, Optional[dict]]] = []
        #: ``(time_ps, fault_name, action)`` for fault actions that
        #: touched this packet.
        self.faults: List[Tuple[int, str, str]] = []
        self.closed = False
        self.outcome: Optional[str] = None

    @property
    def end_ps(self) -> int:
        """Time of the last recorded hop (``born_ps`` when none)."""
        return self.hops[-1][0] if self.hops else self.born_ps

    def as_story(self) -> Dict[str, Any]:
        """This span as one plain-JSON "packet story" row."""
        return {
            "span": self.span_id,
            "packet_ids": list(self.packet_ids),
            "origin": self.origin,
            "born_ps": self.born_ps,
            "end_ps": self.end_ps,
            "tx_stamp_raw": self.tx_stamp_raw,
            "outcome": self.outcome if self.outcome is not None else "open",
            "hops": [
                {"t_ps": t, "hop": name, **({"detail": detail} if detail else {})}
                for t, name, detail in self.hops
            ],
            "faults": [
                {"t_ps": t, "fault": fault, "action": action}
                for t, fault, action in self.faults
            ],
        }


class SpanRecorder:
    """Records :class:`PacketSpan` lifecycles while armed on a simulator.

    >>> spans = SpanRecorder().arm(sim)
    >>> ...run the workload...
    >>> spans.disarm()
    >>> spans.write_stories("packets.jsonl")

    ``sample_one_in=N`` keeps every Nth generated packet (a deterministic
    modulo counter, never RNG — sampling must not perturb seeded
    streams). Capacity is bounded; the oldest span is evicted when full.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_SPAN_CAPACITY,
        sample_one_in: int = 1,
        stamp_offset: int = DEFAULT_STAMP_OFFSET,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"span capacity must be >= 1, got {capacity}")
        if sample_one_in < 1:
            raise ValueError(f"sample_one_in must be >= 1, got {sample_one_in}")
        self.capacity = capacity
        self.sample_one_in = sample_one_in
        self.stamp_offset = stamp_offset
        self._spans: Dict[int, PacketSpan] = {}  # span_id -> span, insertion order
        self._by_packet: Dict[int, int] = {}  # packet_id -> span_id
        self._by_stamp: Dict[int, int] = {}  # raw TX stamp -> span_id
        self._next_span = 0
        self._sample_tick = 0
        self.started = 0
        self.evicted = 0
        self.stamp_matches = 0
        self._sim = None

    # -- arming ------------------------------------------------------------

    def arm(self, sim) -> "SpanRecorder":
        """Attach to ``sim`` (re-arming moves the recorder; spans kept)."""
        if self._sim is not None and self._sim is not sim:
            self.disarm()
        self._sim = sim
        sim.spans = self
        return self

    def disarm(self) -> "SpanRecorder":
        """Detach from the current simulator (recorded spans survive)."""
        if self._sim is not None:
            if getattr(self._sim, "spans", None) is self:
                self._sim.spans = None
            self._sim = None
        return self

    @property
    def armed(self) -> bool:
        return self._sim is not None

    # -- hot-path recording (called only while armed) ----------------------

    def begin(self, time_ps: int, packet: Packet, origin: str) -> Optional[PacketSpan]:
        """Open a span for a freshly generated packet (generator hop)."""
        self._sample_tick += 1
        if self._sample_tick < self.sample_one_in:
            return None
        self._sample_tick = 0
        self._next_span += 1
        span = PacketSpan(self._next_span, packet.packet_id, origin, time_ps)
        if len(self._spans) >= self.capacity:
            self._evict_oldest()
        self._spans[span.span_id] = span
        self._by_packet[packet.packet_id] = span.span_id
        self.started += 1
        span.hops.append((time_ps, "generator", {"origin": origin}))
        return span

    def _evict_oldest(self) -> None:
        oldest_id = next(iter(self._spans))
        oldest = self._spans.pop(oldest_id)
        for packet_id in oldest.packet_ids:
            if self._by_packet.get(packet_id) == oldest_id:
                del self._by_packet[packet_id]
        if oldest.tx_stamp_raw is not None:
            if self._by_stamp.get(oldest.tx_stamp_raw) == oldest_id:
                del self._by_stamp[oldest.tx_stamp_raw]
        self.evicted += 1

    def lookup(self, packet: Packet) -> Optional[PacketSpan]:
        """The span this packet belongs to, correlating across the DUT.

        Fast path: the ``packet_id`` index. Fallback: extract the raw
        64-bit TX stamp from the frame bytes — the in-band correlation
        key that survives the DUT re-emitting a fresh frame object —
        and alias this ``packet_id`` onto the matched span.
        """
        span_id = self._by_packet.get(packet.packet_id)
        if span_id is None and self._by_stamp:
            data = packet.data
            offset = self.stamp_offset
            if offset + _STAMP_BYTES <= len(data):
                raw = int.from_bytes(data[offset : offset + _STAMP_BYTES], "big")
                span_id = self._by_stamp.get(raw)
                if span_id is not None:
                    self._by_packet[packet.packet_id] = span_id
                    self._spans[span_id].packet_ids.append(packet.packet_id)
                    self.stamp_matches += 1
        if span_id is None:
            return None
        return self._spans.get(span_id)

    def hop(
        self, time_ps: int, packet: Packet, name: str, detail: Optional[dict] = None
    ) -> Optional[PacketSpan]:
        """Record a hop on the packet's span (no-op for unknown packets)."""
        span = self.lookup(packet)
        if span is not None and not span.closed:
            span.hops.append((time_ps, name, detail))
        return span

    def note_tx_stamp(self, time_ps: int, packet: Packet, raw: int) -> None:
        """Register the embedded raw TX stamp as a correlation key.

        Called by the TX timestamper at the instant it embeds the stamp
        — the exact value later extracted at capture, so the index hit
        is exact (the ps→raw conversion is lossy, the raw value is not).
        """
        span_id = self._by_packet.get(packet.packet_id)
        if span_id is None:
            return
        span = self._spans.get(span_id)
        if span is None or span.closed:
            return
        span.tx_stamp_raw = raw
        self._by_stamp[raw] = span_id
        span.hops.append((time_ps, "tx_stamp", {"raw": raw}))

    def transfer(
        self,
        time_ps: int,
        packet: Packet,
        clone: Packet,
        name: str,
        detail: Optional[dict] = None,
    ) -> None:
        """Record a hop and alias a re-emitted frame onto the same span.

        Used by DUT models that forward a *fresh* Packet (e.g. the
        legacy switch's egress): the clone inherits the span identity
        even before any stamp-based lookup could match it.
        """
        span = self.lookup(packet)
        if span is None or span.closed:
            return
        span.hops.append((time_ps, name, detail))
        self._by_packet[clone.packet_id] = span.span_id
        span.packet_ids.append(clone.packet_id)

    def close(
        self,
        time_ps: int,
        packet: Packet,
        outcome: str,
        name: Optional[str] = None,
        detail: Optional[dict] = None,
    ) -> Optional[PacketSpan]:
        """Record a terminal hop and seal the span with ``outcome``."""
        span = self.lookup(packet)
        if span is None or span.closed:
            return span
        span.hops.append((time_ps, name if name is not None else outcome, detail))
        span.closed = True
        span.outcome = outcome
        return span

    def fault(
        self,
        time_ps: int,
        packet: Packet,
        fault_name: str,
        action: str,
        detail: Optional[dict] = None,
    ) -> None:
        """Record a fault action that touched this packet (from the
        injector); drop-class actions close the span."""
        span = self.lookup(packet)
        if span is None or span.closed:
            return
        span.faults.append((time_ps, fault_name, action))
        span.hops.append((time_ps, f"fault:{fault_name}.{action}", detail or None))
        if action in _TERMINAL_FAULT_ACTIONS:
            span.closed = True
            span.outcome = f"fault_{action}"

    # -- reads -------------------------------------------------------------

    def spans(self) -> List[PacketSpan]:
        """Recorded spans in start order (evicted ones excluded)."""
        return list(self._spans.values())

    def __len__(self) -> int:
        return len(self._spans)

    def find_by_stamp(self, raw: int) -> Optional[PacketSpan]:
        span_id = self._by_stamp.get(raw)
        return None if span_id is None else self._spans.get(span_id)

    # -- export: packet stories --------------------------------------------

    def stories(self) -> List[Dict[str, Any]]:
        """All spans as plain-JSON story rows, in start order."""
        return [span.as_story() for span in self._spans.values()]

    def stories_jsonl(self) -> str:
        """The story table as JSON Lines (one packet per line)."""
        lines = [json.dumps(story, sort_keys=True) for story in self.stories()]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_stories(self, path: Union[str, Path]) -> int:
        """Write the JSONL story table; returns the number of spans."""
        Path(path).write_text(self.stories_jsonl())
        return len(self._spans)

    # -- export: Chrome trace events ---------------------------------------

    def chrome_events(self) -> List[Dict[str, Any]]:
        """Spans as Chrome ``trace_event`` records (µs timescale).

        Each span gets its own ``tid`` (the span id): an outer ``B``/``E``
        pair covering the whole lifetime, nested ``B``/``E`` pairs for
        each hop-to-hop segment (emitted in stack-valid order), and an
        instant per hop carrying its detail — so one packet reads as one
        collapsible track next to the kernel tracer's events.
        """
        events: List[Dict[str, Any]] = []
        for span in self._spans.values():
            tid = span.span_id
            outcome = span.outcome if span.outcome is not None else "open"
            start_us = span.born_ps / 1e6
            end_us = span.end_ps / 1e6
            events.append(
                {
                    "name": f"packet span {span.span_id}",
                    "cat": "span",
                    "ph": "B",
                    "ts": start_us,
                    "pid": 0,
                    "tid": tid,
                    "args": {"origin": span.origin, "outcome": outcome},
                }
            )
            hops = span.hops
            for (t0, name0, _d0), (t1, name1, _d1) in zip(hops, hops[1:]):
                events.append(
                    {
                        "name": f"{name0}->{name1}",
                        "cat": "span.segment",
                        "ph": "B",
                        "ts": t0 / 1e6,
                        "pid": 0,
                        "tid": tid,
                    }
                )
                events.append(
                    {
                        "name": f"{name0}->{name1}",
                        "cat": "span.segment",
                        "ph": "E",
                        "ts": t1 / 1e6,
                        "pid": 0,
                        "tid": tid,
                    }
                )
            for t, name, detail in hops:
                event: Dict[str, Any] = {
                    "name": name,
                    "cat": "span.hop",
                    "ph": "i",
                    "s": "t",
                    "ts": t / 1e6,
                    "pid": 0,
                    "tid": tid,
                }
                if detail:
                    event["args"] = dict(detail)
                events.append(event)
            events.append(
                {
                    "name": f"packet span {span.span_id}",
                    "cat": "span",
                    "ph": "E",
                    "ts": end_us,
                    "pid": 0,
                    "tid": tid,
                }
            )
        return events
