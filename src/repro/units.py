"""Time, size and rate units used throughout the simulator.

Simulated time is an **integer number of picoseconds**. Floating point
would accumulate rounding error over the billions of events in a
line-rate run; integers keep the hardware's 6.25 ns timestamp
quantisation exact (6.25 ns == 6250 ps, an integer).

Rates are expressed in bits per second (plain ints/floats); helpers
convert between rates, byte counts and wire times.
"""

from __future__ import annotations

import math
import re

from .errors import ConfigError

# -- time ------------------------------------------------------------------

#: Picoseconds per common unit.
PS_PER_NS = 1_000
PS_PER_US = 1_000_000
PS_PER_MS = 1_000_000_000
PS_PER_SEC = 1_000_000_000_000


def _finite(value: float, what: str) -> float:
    """Reject inf/NaN before ``round()`` can leak a raw OverflowError."""
    if isinstance(value, float) and not math.isfinite(value):
        raise ConfigError(f"{what} must be finite, got {value!r}")
    return value


def ns(value: float) -> int:
    """Convert nanoseconds to integer picoseconds."""
    return round(_finite(value, "time value") * PS_PER_NS)


def us(value: float) -> int:
    """Convert microseconds to integer picoseconds."""
    return round(_finite(value, "time value") * PS_PER_US)


def ms(value: float) -> int:
    """Convert milliseconds to integer picoseconds."""
    return round(_finite(value, "time value") * PS_PER_MS)


def seconds(value: float) -> int:
    """Convert seconds to integer picoseconds."""
    return round(_finite(value, "time value") * PS_PER_SEC)


def to_seconds(ps: int) -> float:
    """Convert integer picoseconds to float seconds (for reporting)."""
    return ps / PS_PER_SEC


def to_ns(ps: int) -> float:
    """Convert integer picoseconds to float nanoseconds (for reporting)."""
    return ps / PS_PER_NS


def to_us(ps: int) -> float:
    """Convert integer picoseconds to float microseconds (for reporting)."""
    return ps / PS_PER_US


_DURATION_RE = re.compile(
    r"""^\s*(?P<num>\d+(?:\.\d+)?)\s*
        (?P<unit>ps|ns|us|µs|ms|s|sec|seconds?)\s*$""",
    re.IGNORECASE | re.VERBOSE,
)

_DURATION_MULTIPLIERS = {
    "ps": 1,
    "ns": PS_PER_NS,
    "us": PS_PER_US,
    "µs": PS_PER_US,
    "ms": PS_PER_MS,
    "s": PS_PER_SEC,
    "sec": PS_PER_SEC,
    "second": PS_PER_SEC,
    "seconds": PS_PER_SEC,
}


def parse_duration(text: str) -> int:
    """Parse a human duration string such as ``"10ms"`` or ``"2.5 us"``.

    Returns integer picoseconds. The unit is required (a bare number is
    ambiguous). Raises :class:`ConfigError` (a ``ValueError``) on bad
    input.
    """
    match = _DURATION_RE.match(text)
    if match is None:
        raise ConfigError(
            f"unparseable duration: {text!r} (expected e.g. '10ms', '2.5us', '1s')"
        )
    multiplier = _DURATION_MULTIPLIERS[match.group("unit").lower()]
    number = _finite(float(match.group("num")), f"duration {text!r}")
    return round(number * multiplier)


def duration_ps(value) -> int:
    """Coerce a duration given as ps (int/float) or a string to int ps.

    The one accepted duration-argument format across the API:
    ``for_duration``, workload builders and :class:`ExperimentSpec`
    params all funnel through here. Strings need a unit (``"10ms"``);
    numbers are taken as picoseconds. Raises :class:`ConfigError` (a
    ``ValueError``) on malformed or negative input.
    """
    if isinstance(value, str):
        return parse_duration(value)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(f"duration must be a number of ps or a string, got {value!r}")
    _finite(value, "duration")
    if value < 0:
        raise ConfigError(f"duration must be non-negative, got {value!r}")
    return round(value)


def rate_bps(value) -> float:
    """Coerce a rate given as bits/second (number) or a string to bps.

    The one accepted rate-argument format across the API: ``set_rate``,
    workload builders and :class:`ExperimentSpec` params all funnel
    through here. Raises :class:`ConfigError` (a ``ValueError``) on
    malformed or non-positive input.
    """
    if isinstance(value, str):
        parsed = parse_rate(value)
    elif isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(f"rate must be bits/second or a string, got {value!r}")
    else:
        parsed = float(value)
    _finite(parsed, "rate")
    if parsed <= 0:
        raise ConfigError(f"rate must be positive, got {value!r}")
    return parsed


# -- rates -----------------------------------------------------------------

KBPS = 1_000
MBPS = 1_000_000
GBPS = 1_000_000_000

#: 10GbE payload data rate (the rate at which frame bytes leave the MAC).
TEN_GBPS = 10 * GBPS

_RATE_RE = re.compile(
    r"""^\s*(?P<num>\d+(?:\.\d+)?)\s*
        (?P<unit>[kmg]?)(?:bps|bit/?s)?\s*$""",
    re.IGNORECASE | re.VERBOSE,
)

_RATE_MULTIPLIERS = {"": 1, "k": KBPS, "m": MBPS, "g": GBPS}


def parse_rate(text: str) -> float:
    """Parse a human rate string such as ``"10Gbps"`` or ``"500 Mbps"``.

    Returns bits per second. Raises :class:`ConfigError` on bad input.
    """
    match = _RATE_RE.match(text)
    if match is None:
        raise ConfigError(f"unparseable rate: {text!r}")
    multiplier = _RATE_MULTIPLIERS[match.group("unit").lower()]
    return float(match.group("num")) * multiplier


def format_rate(bps: float) -> str:
    """Render a bits-per-second value as a human string."""
    for unit, factor in (("Gbps", GBPS), ("Mbps", MBPS), ("Kbps", KBPS)):
        if bps >= factor:
            return f"{bps / factor:.3f} {unit}"
    return f"{bps:.0f} bps"


def wire_time_ps(nbytes: int, rate_bps: float) -> int:
    """Time to serialize ``nbytes`` at ``rate_bps``, in integer ps.

    Rounds to the nearest picosecond (ties to even, matching
    :func:`round`); at 10 Gbps one byte is exactly 800 ps so common
    cases stay exact. For integral rates — every real line rate — the
    division is done in integer arithmetic: ``nbytes * 8 * 1e12``
    overflows a float's 53-bit mantissa beyond ~1 TB transfers, and
    cumulative DMA/MAC completion times must stay exact, not merely
    close.
    """
    if rate_bps <= 0:
        raise ConfigError(f"rate must be positive, got {rate_bps}")
    if isinstance(rate_bps, int):
        rate = rate_bps
    elif isinstance(rate_bps, float) and rate_bps.is_integer():
        rate = int(rate_bps)
    else:
        return round(nbytes * 8 * PS_PER_SEC / rate_bps)
    quotient, remainder = divmod(nbytes * 8 * PS_PER_SEC, rate)
    doubled = remainder * 2
    if doubled > rate or (doubled == rate and quotient & 1):
        quotient += 1
    return quotient


def bytes_per_ps(rate_bps: float) -> float:
    """Bytes transferred per picosecond at the given bit rate."""
    return rate_bps / 8 / PS_PER_SEC


# -- Ethernet framing constants ---------------------------------------------

#: Preamble (7) + start-frame delimiter (1).
ETH_PREAMBLE_BYTES = 8
#: Minimum inter-frame gap on the wire.
ETH_IFG_BYTES = 12
#: Frame check sequence appended by the MAC.
ETH_FCS_BYTES = 4
#: Minimum/maximum Ethernet frame sizes *including* FCS.
ETH_MIN_FRAME = 64
ETH_MAX_FRAME = 1518
#: Per-frame wire overhead beyond the frame bytes themselves.
ETH_OVERHEAD_BYTES = ETH_PREAMBLE_BYTES + ETH_IFG_BYTES


def frame_wire_bytes(frame_len: int) -> int:
    """Bytes occupied on the wire by one frame (frame + preamble + IFG).

    ``frame_len`` includes the FCS (as captured frame lengths do in
    OSNT). Frames below the Ethernet minimum are padded by the MAC.
    """
    return max(frame_len, ETH_MIN_FRAME) + ETH_OVERHEAD_BYTES


def line_rate_pps(frame_len: int, rate_bps: float = TEN_GBPS) -> float:
    """Theoretical maximum packets/second for a frame size at a rate.

    For 64-byte frames at 10 Gbps this is the canonical 14.88 Mpps.
    """
    return rate_bps / (frame_wire_bytes(frame_len) * 8)


def line_rate_goodput_bps(frame_len: int, rate_bps: float = TEN_GBPS) -> float:
    """Theoretical maximum frame-byte throughput (bps) for a frame size."""
    return line_rate_pps(frame_len, rate_bps) * frame_len * 8
