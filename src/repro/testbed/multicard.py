"""Multi-card deployments: one-way latency between separate testers.

The paper closes §1 envisioning "the use of hundreds or thousands of
testers, offering previously unobtainable insights". The enabling
property is that every card's clock is GPS-disciplined to the same
time base, so a packet stamped on card A and captured on card B yields
a *one-way* latency whose error is bounded by the two clocks' residual
offsets (tens of ns) instead of their free-running drift (hundreds of
µs per minute).

This module wires N cards into a chain or star and measures exactly
that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analysis.latency import latency_from_capture
from ..hw.port import connect
from ..net.builder import build_udp
from ..osnt.api import OSNT
from ..sim import Simulator
from ..units import ms, ns, seconds, us


@dataclass
class OneWayRow:
    gps_enabled: bool
    measured_after_s: int
    true_latency_ns: float
    measured_mean_ns: float

    @property
    def error_ns(self) -> float:
        return self.measured_mean_ns - self.true_latency_ns


def measure_one_way_latency(
    gps_enabled: bool,
    sample_times_s: List[int],
    link_propagation_ps: int = ns(500),  # ~100 m of fibre between racks
    frame_size: int = 256,
    probes: int = 200,
    card_a_ppm: float = 30.0,
    card_b_ppm: float = -25.0,
    seed: int = 0,
) -> List[OneWayRow]:
    """Card A transmits TX-stamped probes to card B at several points in
    time; each batch's one-way latency is computed across clock domains.

    The true latency is propagation + serialization, known exactly in
    the model, so the *measurement error* — the quantity GPS bounds —
    is directly reported.
    """
    from ..units import ETH_PREAMBLE_BYTES, TEN_GBPS, wire_time_ps

    sim = Simulator()
    card_a = OSNT(
        sim,
        name="cardA",
        root_seed=seed,
        freq_error_ppm=card_a_ppm,
        gps_enabled=gps_enabled,
    )
    card_b = OSNT(
        sim,
        name="cardB",
        root_seed=seed + 1,
        freq_error_ppm=card_b_ppm,
        gps_enabled=gps_enabled,
    )
    connect(card_a.port(0), card_b.port(0), propagation_ps=link_propagation_ps)
    monitor = card_b.monitor(0)
    monitor.start_capture()
    true_latency_ps = (
        wire_time_ps(ETH_PREAMBLE_BYTES + frame_size, TEN_GBPS) + link_propagation_ps
    )

    rows: List[OneWayRow] = []
    for when_s in sorted(sample_times_s):
        sim.run(until=seconds(when_s))
        monitor.clear()
        generator = card_a.generator(0)
        generator.load_template(build_udp(frame_size=frame_size), count=probes)
        generator.set_gap(us(10)).embed_timestamps()
        generator.start()
        sim.run(until=sim.now + ms(5))
        result = latency_from_capture(monitor.packets)
        rows.append(
            OneWayRow(
                gps_enabled=gps_enabled,
                measured_after_s=when_s,
                true_latency_ns=true_latency_ps / 1e3,
                measured_mean_ns=result.summary.mean / 1e3,
            )
        )
    return rows
