"""Attack-style workloads: control-plane churn and synchronized incast.

Two measurement points built from the traffic-model pattern library
(:mod:`repro.osnt.generator.trafficmodels`), registered as sweepable
scenarios in :mod:`repro.runner.scenarios`:

* ``syn_flood_flowmod`` — many-flow TCP SYN churn drives continuous
  table misses (and thus packet-ins) through the OpenFlow switch's
  serial firmware, while a measured flow_mod burst times rule
  installation the E4 way. Sweeping the churn's traffic model shows how
  burstiness — not just average rate — degrades control-plane latency.
* ``incast_burst`` — ``k`` synchronized burst-train senders converge on
  one legacy-switch egress; the monitor's per-flow RTT bank answers
  "p99.9 RTT per sender under burst load" from in-band TX stamps while
  the egress FIFO's peak occupancy and drop counters size the buffer.

Both accept anything :meth:`~repro.osnt.generator.trafficspec
.TrafficModelSpec.from_any` does for their ``traffic`` argument and
report the spec's fingerprint, so sweep rows are self-describing.
Both compose with :mod:`repro.faults` (``impairments``) and
:mod:`repro.obs` (``observe``) without perturbing a single timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..devices.legacy_switch import LegacySwitch
from ..devices.openflow_switch import SwitchProfile
from ..net.builder import build_tcp
from ..openflow.actions import OutputAction
from ..openflow.match import Match
from ..openflow.messages import BarrierReply, BarrierRequest, FlowMod
from ..osnt.generator.field_modifiers import Ipv4AddressSweep
from ..osnt.generator.schedule import ConstantGap
from ..osnt.generator.trafficspec import TrafficModelSpec
from ..sim import RandomStreams, Simulator
from ..units import duration_ps as _dur
from ..units import ms, seconds, us
from .topology import legacy_testbed, openflow_testbed
from .workloads import port_sweep_source, udp_template

#: Extras returned by every point function (telemetry snapshots etc.).
Extras = Dict[str, Any]

#: Default churn/incast pacing: 32-frame trains at peak rate, 40 µs
#: apart — bursty enough to pile misses into the firmware queue and
#: frames into an egress FIFO, while averaging well below line rate.
DEFAULT_TRAFFIC: Dict[str, Any] = {
    "model": "burst_train",
    "params": {"frames_per_burst": 32, "inter_burst_gap": "40us"},
}


def _arm_obs(sim: Simulator, observe: bool) -> None:
    """Optionally arm packet-lifecycle spans (pure observation point)."""
    if observe:
        from ..obs import SpanRecorder

        SpanRecorder().arm(sim)


def _arm_waves(sim: Simulator, waveforms: bool):
    """Optionally arm a waveform recorder; returns it (or None).

    Recording is non-perturbing, so the scenario's row is bit-identical
    with or without it; the recorder's digest and per-series summary
    land in the extras for sweep-wide folding.
    """
    if not waveforms:
        return None
    from ..telemetry import WaveformRecorder

    return WaveformRecorder().arm(sim)


def _wave_extras(extras: Extras, recorder) -> None:
    if recorder is not None:
        summary = recorder.summary()
        extras["waveform_digest"] = summary["digest"]
        extras["waveforms"] = summary["series"]


def _traffic_spec(traffic) -> TrafficModelSpec:
    spec = TrafficModelSpec.from_any(traffic)
    return spec if spec is not None else TrafficModelSpec.from_dict(DEFAULT_TRAFFIC)


def _percentiles_us(rows_source) -> Dict[str, Optional[float]]:
    """Aggregate p50/p99/p999 in µs from a latency bank (or None)."""
    if rows_source is None or not len(rows_source):
        return {"rtt_p50_us": None, "rtt_p99_us": None, "rtt_p999_us": None}
    summary = rows_source.aggregate().summary()
    return {
        "rtt_p50_us": None if summary.p50 is None else summary.p50 / 1e6,
        "rtt_p99_us": None if summary.p99 is None else summary.p99 / 1e6,
        "rtt_p999_us": None if summary.p999 is None else summary.p999 / 1e6,
    }


# ---------------------------------------------------------------------------
# A1 — SYN-flood churn vs flow_mod latency
# ---------------------------------------------------------------------------


@dataclass
class SynFloodRow:
    n_flows: int
    n_rules: int
    traffic: str  # the churn model's spec fingerprint
    #: First measured flow_mod out to barrier reply back.
    control_latency_ps: int
    #: Per-rule data-plane activation latency (first forwarded probe).
    rule_activation_ps: List[int] = field(default_factory=list)
    degraded: bool = False
    churn_sent: int = 0
    datapath_misses: int = 0
    packet_ins_sent: int = 0
    packet_ins_dropped: int = 0
    firmware_queue_peak: int = 0
    flow_mods_handled: int = 0
    #: Per-flow probe RTT percentile rows (keyed by UDP dst port), with
    #: the ``p999`` column the monitor's log-linear bank provides.
    flow_rtt_rows: List[Dict[str, Any]] = field(default_factory=list)
    rtt_p50_us: Optional[float] = None
    rtt_p99_us: Optional[float] = None
    rtt_p999_us: Optional[float] = None


def syn_flood_flowmod_point(
    n_flows: int = 256,
    n_rules: int = 16,
    traffic=None,
    frame_size: int = 64,
    duration_ps: int = ms(4),
    probe_gap_ps: int = us(4),
    base_port: int = 6000,
    packet_in_queue_limit: Optional[int] = 64,
    firmware_delay_ps: int = us(10),
    table_write_ps: int = us(100),
    warmup_ps: int = us(500),
    impairments=None,
    seed: int = 0,
    deadline_ps: Optional[int] = None,
    observe: bool = False,
    telemetry: bool = False,
    waveforms: bool = False,
) -> Tuple[SynFloodRow, Extras]:
    """One A1 point: flow_mod latency while SYN churn floods the firmware.

    TCP SYNs cycling ``n_flows`` source addresses enter OF port 3; no
    TCP rule exists, so every SYN misses and becomes a packet-in job on
    the same serial firmware that must execute the measured flow_mods.
    A UDP catch-all drop keeps the *probe* stream off the control
    channel until its rules land (exactly the E4 discipline), so the
    only churn is the attack traffic. Timestamped UDP probes then give
    both per-rule activation times and per-flow RTT histograms.
    """
    from ..faults import FaultInjector, ImpairmentSpec

    sim = Simulator()
    _arm_obs(sim, observe)
    waves = _arm_waves(sim, waveforms)
    spec = _traffic_spec(traffic)
    profile = SwitchProfile(
        firmware_delay_ps=firmware_delay_ps,
        table_write_ps=table_write_ps,
        packet_in_queue_limit=packet_in_queue_limit,
    )
    bed = openflow_testbed(
        sim, profile=profile, wire_cross_ports=True, root_seed=seed
    )
    if telemetry:
        bed.tester.start_telemetry()
    fault_spec = ImpairmentSpec.from_any(impairments)
    injector = None
    if not fault_spec.empty:
        device = bed.tester.device
        injector = FaultInjector(sim, fault_spec, seed=seed).bind(
            link=bed.links[0],
            link_egress=bed.links[1],
            dma=device.dma,
            clock=device,
            control=bed.channel,
        )
        injector.arm()
    switch = bed.switch

    barrier_times: Dict[int, int] = {}

    def on_control(message):
        if isinstance(message, BarrierReply):
            barrier_times[message.xid] = sim.now

    bed.controller.on_message = on_control

    # UDP catch-all drop (priority above nothing, below the measured
    # rules): probes die in the table, SYNs still miss to the firmware.
    bed.controller.send(
        FlowMod(match=Match.exact(dl_type=0x0800, nw_proto=17), priority=1, actions=[])
    )
    bed.controller.send(BarrierRequest(xid=1))
    sim.run(until=ms(5))
    assert 1 in barrier_times or injector is not None, "setup barrier lost"

    # The churn: SYNs from n_flows sources, paced by the traffic model.
    syn = build_tcp(
        frame_size=frame_size,
        dst_mac="02:00:00:00:00:02",
        dst_ip="10.0.0.2",
        src_ip="10.9.0.1",
        flags=0x02,
    )
    churn = bed.tester.generator(2)
    churn.load_template(syn, modifiers=[Ipv4AddressSweep("src", "10.9.0.1", n_flows)])
    churn.use_model(spec)
    churn.for_duration(duration_ps)
    churn.start()

    # Timestamped probes across the rule ports; the monitor banks RTT
    # per destination port, in-band, without needing host capture.
    bed.monitor.start_capture()
    bed.monitor.enable_latency(per_flow=True, flow_key="dst_port")
    bed.generator._engine.configure(
        port_sweep_source(128, n_rules, base_port=base_port),
        schedule=ConstantGap(probe_gap_ps),
        embed_timestamps=True,
    )
    bed.generator._engine.start()
    sim.run(until=sim.now + warmup_ps)

    # The measured update burst, racing the churn through the firmware.
    t0 = sim.now
    for index in range(n_rules):
        bed.controller.send(
            FlowMod(
                match=Match.exact(
                    dl_type=0x0800, nw_proto=17, tp_dst=base_port + index
                ),
                priority=100,
                actions=[OutputAction(bed.egress_of_port)],
            )
        )
    bed.controller.send(BarrierRequest(xid=2))

    activation: Dict[int, int] = {}

    def on_capture(packet):
        from ..net.parser import decode

        decoded = decode(packet.data)
        if decoded.udp is None:
            return
        rule = decoded.udp.dst_port - base_port
        if 0 <= rule < n_rules and rule not in activation:
            activation[rule] = packet.rx_timestamp

    bed.monitor.on_packet(on_capture)

    deadline = t0 + (seconds(1) if deadline_ps is None else deadline_ps)
    while sim.now < deadline and (len(activation) < n_rules or 2 not in barrier_times):
        sim.run(until=min(sim.now + ms(1), deadline))
    bed.generator._engine.stop()
    sim.run(until=sim.now + us(100))

    bank = bed.monitor.flow_latency
    row = SynFloodRow(
        n_flows=n_flows,
        n_rules=n_rules,
        traffic=spec.fingerprint(),
        control_latency_ps=barrier_times.get(2, deadline) - t0,
        rule_activation_ps=[activation[i] - t0 for i in sorted(activation)],
        degraded=len(activation) < n_rules or 2 not in barrier_times,
        churn_sent=churn.packets_sent,
        datapath_misses=switch.datapath_misses,
        packet_ins_sent=switch.packet_ins_sent,
        packet_ins_dropped=switch.packet_ins_dropped,
        firmware_queue_peak=switch.firmware_queue_peak,
        flow_mods_handled=switch.flow_mods_handled,
        flow_rtt_rows=bed.monitor.flow_latency_rows(),
        **_percentiles_us(bank),
    )
    extras: Extras = {}
    if telemetry:
        extras["telemetry"] = bed.tester.snapshot()
    if injector is not None:
        extras["fault_timeline_digest"] = injector.timeline_digest()
    _wave_extras(extras, waves)
    return row, extras


# ---------------------------------------------------------------------------
# A2 — synchronized incast onto one egress
# ---------------------------------------------------------------------------

#: OSNT ports available as incast senders (port 1 is the capture side).
_SENDER_PORTS = (0, 2, 3)


@dataclass
class IncastRow:
    senders: int
    frame_size: int
    traffic: str  # the senders' spec fingerprint
    sent: int
    received: int
    egress_drops: int
    queue_peak_bytes: int
    #: Per-sender RTT percentile rows (keyed by source IP).
    flow_rtt_rows: List[Dict[str, Any]] = field(default_factory=list)
    rtt_p50_us: Optional[float] = None
    rtt_p99_us: Optional[float] = None
    rtt_p999_us: Optional[float] = None

    @property
    def delivery_fraction(self) -> float:
        return self.received / self.sent if self.sent else 0.0


def incast_burst_point(
    senders: int = 3,
    traffic=None,
    frame_size: int = 512,
    duration_ps: int = ms(2),
    buffer_bytes: int = 32 * 1024,
    phase_step_ps: int = 0,
    switch_kwargs: Optional[dict] = None,
    seed: int = 0,
    switch_seed: int = 1,
    observe: bool = False,
    telemetry: bool = False,
    waveforms: bool = False,
) -> Tuple[IncastRow, Extras]:
    """One A2 point: ``senders`` burst trains converge on one egress.

    Every sender runs the *same* traffic model, so their bursts land at
    the egress FIFO simultaneously — the incast worst case. For
    ``periodic`` models ``phase_step_ps`` staggers sender ``i`` by
    ``i * phase_step_ps``, turning the same offered load into a
    non-overlapping schedule; the queue-peak delta between the two is
    the quantity the experiment exists to show. Per-sender RTT comes
    from the monitor's in-band bank keyed by source IP.
    """
    from ..errors import ConfigError

    if not 1 <= senders <= len(_SENDER_PORTS):
        raise ConfigError(f"senders must be 1..{len(_SENDER_PORTS)}")
    sim = Simulator()
    _arm_obs(sim, observe)
    waves = _arm_waves(sim, waveforms)
    spec = _traffic_spec(traffic)
    kwargs = dict(switch_kwargs or {})
    kwargs.setdefault("buffer_bytes_per_port", buffer_bytes)
    switch = LegacySwitch(
        sim, rng=RandomStreams(switch_seed).stream("sw"), **kwargs
    )
    bed = legacy_testbed(sim, switch=switch, wire_cross_ports=True, root_seed=seed)
    bed.teach_mac_table("02:00:00:00:00:02")
    if telemetry:
        bed.tester.start_telemetry()
    bed.monitor.enable_latency(per_flow=True, flow_key="src_ip")

    generators = []
    for index in range(senders):
        generator = bed.tester.generator(_SENDER_PORTS[index])
        generator.load_template(
            udp_template(
                frame_size,
                src_mac=f"02:00:00:00:00:1{index}",
                src_ip=f"10.0.{10 + index}.1",
            )
        )
        generator.use_model(_staggered(spec, index, phase_step_ps))
        generator.embed_timestamps().for_duration(duration_ps)
        generator.start()
        generators.append(generator)
    sim.run()

    pipeline = bed.tester.device.monitor(1)
    bank = pipeline.flow_latency
    row = IncastRow(
        senders=senders,
        frame_size=frame_size,
        traffic=spec.fingerprint(),
        sent=sum(g.packets_sent for g in generators),
        received=pipeline.stats.rx_packets,
        egress_drops=switch.egress_drops,
        queue_peak_bytes=switch.port(1).tx.fifo.peak_occupancy_bytes,
        flow_rtt_rows=bed.monitor.flow_latency_rows(),
        **_percentiles_us(bank),
    )
    extras: Extras = {}
    if telemetry:
        extras["telemetry"] = bed.tester.snapshot()
    _wave_extras(extras, waves)
    return row, extras


def _staggered(spec: TrafficModelSpec, index: int, phase_step_ps: int) -> TrafficModelSpec:
    """Sender ``index``'s spec: phase-shifted for periodic models."""
    if spec.model != "periodic" or not phase_step_ps or not index:
        return spec
    params = dict(spec.params)
    period = _dur(params["on"]) + _dur(params["off"])
    base = _dur(params.get("phase", 0))
    params["phase"] = (base + index * phase_step_ps) % period
    return TrafficModelSpec(model=spec.model, params=params, name=spec.name)
