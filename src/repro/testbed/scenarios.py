"""Reusable measurement scenarios — the code behind experiments E1–E7.

Each experiment is factored into a **single-point function**
(``*_point``): build one fresh topology, run one measurement, return a
plain dataclass row plus an extras dict (telemetry when requested).
The point functions are registered as named scenarios in
:mod:`repro.runner.scenarios`, which is what makes them sweepable,
shardable and resumable through :class:`~repro.runner.ExperimentSpec`.

The original ``measure_*`` entry points remain as **thin deprecation
shims**: each builds the equivalent spec and runs it inline via
:func:`repro.runner.run_spec`, returning the same row lists as before.
New code should construct specs directly (see ``docs/RUNNER.md``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.latency import latency_from_capture
from ..analysis.stats import SummaryStats, gap_jitter_std
from ..devices.legacy_switch import LegacySwitch
from ..devices.openflow_switch import SwitchProfile
from ..hw.port import connect
from ..openflow import constants as ofp
from ..openflow.match import Match
from ..openflow.actions import OutputAction
from ..openflow.messages import BarrierReply, BarrierRequest, FlowMod
from ..osnt.api import OSNT
from ..osnt.generator.schedule import ConstantBitRate, ConstantGap
from ..osnt.software_baseline import SoftwareGenerator
from ..sim import RandomStreams, Simulator
from ..units import (
    GBPS,
    TEN_GBPS,
    line_rate_goodput_bps,
    line_rate_pps,
    ms,
    seconds,
    us,
)
from .topology import legacy_testbed, openflow_testbed
from .workloads import fixed_size_source, port_sweep_source, udp_template

#: Extras returned by every point function (telemetry snapshots etc.).
Extras = Dict[str, Any]


def _row_from_result(cls, result: Dict[str, Any]):
    """Rebuild a row dataclass from a (possibly larger) result dict."""
    names = {f.name for f in dataclasses.fields(cls)}
    return cls(**{key: value for key, value in result.items() if key in names})


def _run_shim_spec(spec) -> List[Dict[str, Any]]:
    """Run a shim's spec inline; surface any shard failure as an error."""
    from ..runner import run_spec

    report = run_spec(spec, workers=0)
    report.require_ok()
    return report.results()


def _maybe_snapshot(tester: OSNT, telemetry: bool) -> Extras:
    return {"telemetry": tester.snapshot()} if telemetry else {}


# ---------------------------------------------------------------------------
# E1 — line rate vs packet size
# ---------------------------------------------------------------------------


@dataclass
class LineRateRow:
    frame_size: int
    ports: int
    achieved_pps: float
    theoretical_pps: float
    achieved_goodput_bps: float
    theoretical_goodput_bps: float

    @property
    def efficiency(self) -> float:
        return self.achieved_pps / self.theoretical_pps


def line_rate_point(
    frame_size: int,
    duration_ps: int = ms(1),
    ports: int = 1,
    seed: int = 0,
    telemetry: bool = False,
) -> Tuple[LineRateRow, Extras]:
    """One E1 point: line-rate generation for one frame size.

    ``ports=4`` exercises all four card ports simultaneously (two
    loopback pairs, both directions), demonstrating the paper's "full
    line-rate ... across the four card ports".
    """
    sim = Simulator()
    tester = OSNT(sim, root_seed=seed)
    connect(tester.port(0), tester.port(1))
    connect(tester.port(2), tester.port(3))
    if telemetry:
        tester.start_telemetry()
    active = [0] if ports == 1 else list(range(ports))
    generators = []
    for port_index in active:
        generator = tester.generator(port_index)
        generator.load_template(udp_template(frame_size)).at_line_rate()
        generator.for_duration(duration_ps)
        generator.start()
        generators.append(generator)
    sim.run()
    row = LineRateRow(
        frame_size=frame_size,
        ports=len(active),
        achieved_pps=sum(g.stats.achieved_pps() for g in generators),
        theoretical_pps=line_rate_pps(frame_size) * len(active),
        achieved_goodput_bps=sum(g.stats.achieved_bps() for g in generators),
        theoretical_goodput_bps=line_rate_goodput_bps(frame_size) * len(active),
    )
    return row, _maybe_snapshot(tester, telemetry)


def measure_line_rate(
    frame_sizes: List[int],
    duration_ps: int = ms(1),
    ports: int = 1,
) -> List[LineRateRow]:
    """Deprecated shim over the ``line_rate`` scenario (docs/RUNNER.md)."""
    from ..runner import ExperimentSpec

    spec = ExperimentSpec(
        name="measure_line_rate",
        scenario="line_rate",
        params={"duration": duration_ps, "ports": ports, "seed": 0},
        axes={"frame_size": list(frame_sizes)},
        timeout_s=None,
        retries=0,
    )
    return [_row_from_result(LineRateRow, r) for r in _run_shim_spec(spec)]


# ---------------------------------------------------------------------------
# E2 — timing precision: hardware vs software, GPS discipline
# ---------------------------------------------------------------------------


@dataclass
class PrecisionRow:
    generator: str  # "osnt" or "software"
    target_gap_ns: float
    mean_gap_ns: float
    gap_std_ns: float
    worst_error_ns: float


def idt_precision_point(
    kind: str,
    target_gap_ps: int,
    packet_count: int = 500,
    frame_size: int = 128,
    seed: int = 0,
) -> Tuple[PrecisionRow, Extras]:
    """One E2 point: wire-level inter-departure precision for one
    generator kind (``"osnt"`` hardware model or ``"software"`` host)."""
    sim = Simulator()
    tester = OSNT(sim)
    connect(tester.port(0), tester.port(1))
    departures: List[int] = []
    source = fixed_size_source(frame_size, count=packet_count)
    schedule = ConstantGap(target_gap_ps)
    if kind == "osnt":
        generator = tester.generator(0)
        tester.device.ports[0].tx.on_start_of_frame = (
            lambda p: departures.append(sim.now)
        )
        generator._engine.configure(source, schedule=schedule, count=packet_count)
        generator._engine.start()
    elif kind == "software":
        # A separate port pair driven by the host-stack model.
        from ..hw.port import EthernetPort

        a = EthernetPort(sim, "sw-a")
        b = EthernetPort(sim, "sw-b")
        connect(a, b)
        swgen = SoftwareGenerator(sim, a, rng=RandomStreams(seed).stream("swgen"))
        a.tx.on_start_of_frame = lambda p: departures.append(sim.now)
        swgen.configure(source, schedule, count=packet_count)
        swgen.start()
    else:
        from ..errors import ConfigError

        raise ConfigError(f"unknown generator kind {kind!r} (osnt|software)")
    sim.run()
    gaps = [b_ - a_ for a_, b_ in zip(departures, departures[1:])]
    mean = sum(gaps) / len(gaps)
    row = PrecisionRow(
        generator=kind,
        target_gap_ns=target_gap_ps / 1e3,
        mean_gap_ns=mean / 1e3,
        gap_std_ns=gap_jitter_std(departures) / 1e3,
        worst_error_ns=max(abs(g - target_gap_ps) for g in gaps) / 1e3,
    )
    return row, {}


def measure_idt_precision(
    target_gap_ps: int,
    packet_count: int = 500,
    frame_size: int = 128,
    seed: int = 0,
) -> List[PrecisionRow]:
    """Deprecated shim over the ``idt_precision`` scenario."""
    from ..runner import ExperimentSpec

    spec = ExperimentSpec(
        name="measure_idt_precision",
        scenario="idt_precision",
        params={
            "target_gap_ps": target_gap_ps,
            "packet_count": packet_count,
            "frame_size": frame_size,
            "seed": seed,
        },
        axes={"kind": ["osnt", "software"]},
        timeout_s=None,
        retries=0,
    )
    return [_row_from_result(PrecisionRow, r) for r in _run_shim_spec(spec)]


@dataclass
class ClockErrorRow:
    mode: str  # "free-running" or "gps-disciplined"
    after_seconds: int
    abs_error_ns: float


def clock_error_point(
    mode: str,
    freq_error_ppm: float = 30.0,
    walk_ppb: float = 20.0,
    horizon_s: int = 10,
    seed: int = 0,
) -> Tuple[List[ClockErrorRow], Extras]:
    """One E2b point: clock error over time for one discipline mode."""
    gps_enabled = mode == "gps-disciplined"
    sim = Simulator()
    tester = OSNT(
        sim,
        root_seed=seed,
        freq_error_ppm=freq_error_ppm,
        oscillator_walk_ppb=walk_ppb,
        gps_enabled=gps_enabled,
    )
    rows = []
    for second in range(1, horizon_s + 1):
        # Sample mid-interval: at the pulse instant a disciplined
        # clock reads zero by construction, which would overstate it.
        sim.run(until=seconds(second) + seconds(1) // 2)
        rows.append(
            ClockErrorRow(
                mode=mode,
                after_seconds=second,
                abs_error_ns=abs(tester.device.oscillator.error_ps()) / 1e3,
            )
        )
    return rows, {}


def measure_clock_error(
    freq_error_ppm: float = 30.0,
    walk_ppb: float = 20.0,
    horizon_s: int = 10,
    seed: int = 0,
) -> List[ClockErrorRow]:
    """Deprecated shim over the ``clock_error`` scenario."""
    from ..runner import ExperimentSpec

    spec = ExperimentSpec(
        name="measure_clock_error",
        scenario="clock_error",
        params={
            "freq_error_ppm": freq_error_ppm,
            "walk_ppb": walk_ppb,
            "horizon_s": horizon_s,
            "seed": seed,
        },
        axes={"mode": ["free-running", "gps-disciplined"]},
        timeout_s=None,
        retries=0,
    )
    rows: List[ClockErrorRow] = []
    for result in _run_shim_spec(spec):
        rows.extend(_row_from_result(ClockErrorRow, r) for r in result["rows"])
    return rows


# ---------------------------------------------------------------------------
# E3 — legacy switch latency vs load (demo Part I)
# ---------------------------------------------------------------------------


@dataclass
class LatencyRow:
    frame_size: int
    load: float
    packets: int
    mean_us: float
    p50_us: float
    p99_us: float
    max_us: float
    jitter_us: float
    switch_drops: int


def legacy_latency_point(
    frame_size: int,
    load: float,
    duration_ps: int = ms(2),
    probe_load: float = 0.05,
    switch_kwargs: Optional[dict] = None,
    seed: int = 0,
    switch_seed: int = 1,
    telemetry: bool = False,
) -> Tuple[LatencyRow, Extras]:
    """One E3 point: probe latency through the switch at one load.

    Timestamped probes flow OSNT port 0 → switch → OSNT port 1 at a
    fixed low rate; background traffic from OSNT port 2 shares the same
    egress at ``load - probe_load``, so sweeping ``load`` sweeps the
    egress-queue occupancy the probes experience. At loads near/above
    1.0 the queue saturates: latency plateaus at the buffer depth and
    the switch drops — exactly the shape a hardware DUT shows.
    """
    sim = Simulator()
    switch = LegacySwitch(
        sim, rng=RandomStreams(switch_seed).stream("sw"), **(switch_kwargs or {})
    )
    bed = legacy_testbed(sim, switch=switch, wire_cross_ports=True, root_seed=seed)
    bed.teach_mac_table("02:00:00:00:00:02")
    if telemetry:
        bed.tester.start_telemetry()
    bed.monitor.start_capture()
    background_load = max(0.0, load - probe_load)
    if background_load > 0:
        # Poisson arrivals: real aggregates are bursty, and the
        # classic latency-vs-load queueing curve needs burstiness
        # (deterministic CBR only queues at saturation).
        background = bed.tester.generator(2)
        background.load_template(
            udp_template(frame_size, src_mac="02:00:00:00:00:03")
        )
        from ..units import frame_wire_bytes, wire_time_ps

        wire_ps = wire_time_ps(frame_wire_bytes(frame_size), TEN_GBPS)
        background.poisson(wire_ps / min(background_load, 1.0))
        background.for_duration(duration_ps)
        background.start()
    bed.generator.load_template(udp_template(frame_size))
    bed.generator.set_load(min(load, probe_load))
    bed.generator.embed_timestamps().for_duration(duration_ps)
    bed.generator.start()
    sim.run()
    result = latency_from_capture(bed.monitor.packets)
    summary = result.summary
    row = LatencyRow(
        frame_size=frame_size,
        load=load,
        packets=summary.count,
        mean_us=summary.mean / 1e6,
        p50_us=summary.p50 / 1e6,
        p99_us=summary.p99 / 1e6,
        max_us=summary.maximum / 1e6,
        jitter_us=result.jitter_rfc3550_ps / 1e6,
        switch_drops=switch.egress_drops,
    )
    return row, _maybe_snapshot(bed.tester, telemetry)


def measure_legacy_switch_latency(
    loads: List[float],
    frame_sizes: List[int],
    duration_ps: int = ms(2),
    probe_load: float = 0.05,
    switch_kwargs: Optional[dict] = None,
) -> List[LatencyRow]:
    """Deprecated shim over the ``legacy_latency`` scenario."""
    from ..runner import ExperimentSpec

    spec = ExperimentSpec(
        name="measure_legacy_switch_latency",
        scenario="legacy_latency",
        params={
            "duration": duration_ps,
            "probe_load": probe_load,
            "switch_kwargs": switch_kwargs,
            "seed": 0,
            "switch_seed": 1,
        },
        axes={"frame_size": list(frame_sizes), "load": list(loads)},
        timeout_s=None,
        retries=0,
    )
    return [_row_from_result(LatencyRow, r) for r in _run_shim_spec(spec)]


# ---------------------------------------------------------------------------
# E4 — flow_mod install latency, control vs data plane (demo Part II)
# ---------------------------------------------------------------------------


@dataclass
class FlowModResult:
    barrier_mode: str
    n_rules: int
    #: Time from the first flow_mod leaving the controller to the
    #: barrier reply arriving back (the control plane's claim).
    control_latency_ps: int
    #: Per-rule data-plane activation latency (first forwarded probe).
    rule_activation_ps: List[int] = field(default_factory=list)
    #: True when the run hit its deadline with rules unactivated or the
    #: barrier unanswered (fault-injection runs); healthy runs report
    #: False and the ``flowmod_latency`` scenario omits the field.
    degraded: bool = False
    #: Setup-barrier resends that were needed (flapped control channel).
    control_retries: int = 0

    @property
    def data_plane_complete_ps(self) -> int:
        return max(self.rule_activation_ps) if self.rule_activation_ps else 0

    @property
    def control_says_done_before_data_ps(self) -> int:
        """Positive when the barrier claimed completion early."""
        return self.data_plane_complete_ps - self.control_latency_ps


def measure_flowmod_latency(
    n_rules: int = 32,
    barrier_mode: str = "spec",
    firmware_delay_ps: int = us(10),
    table_write_ps: int = us(100),
    probe_gap_ps: int = us(2),
    base_port: int = 6000,
    impairments=None,
    seed: int = 0,
    deadline_ps: Optional[int] = None,
    barrier_retries: int = 3,
) -> FlowModResult:
    """Demo Part II: latency to modify the flow table, measured both ways.

    A catch-all drop rule keeps probe misses off the control channel;
    probes cycle ``n_rules`` UDP destination ports; each new rule's
    activation is the RX timestamp of the first probe it forwards.

    ``impairments`` accepts anything
    :meth:`repro.faults.ImpairmentSpec.from_any` does; under active
    faults the run degrades instead of crashing: setup barriers are
    resent up to ``barrier_retries`` times, and a deadline hit reports
    ``degraded=True`` with whatever activated. Without impairments the
    measurement (and its event timeline) is exactly the historical one.

    (Already a single measurement point — registered directly as the
    ``flowmod_latency`` scenario.)
    """
    from ..faults import FaultInjector, ImpairmentSpec

    sim = Simulator()
    profile = SwitchProfile(
        barrier_mode=barrier_mode,
        firmware_delay_ps=firmware_delay_ps,
        table_write_ps=table_write_ps,
    )
    bed = openflow_testbed(sim, profile=profile)
    spec = ImpairmentSpec.from_any(impairments)
    faulted = not spec.empty
    if faulted:
        device = bed.tester.device
        FaultInjector(sim, spec, seed=seed).bind(
            link=bed.links[0],
            link_egress=bed.links[1],
            dma=device.dma,
            clock=device,
            control=bed.channel,
        ).arm()
    barrier_times: Dict[int, int] = {}

    def on_control(message):
        if isinstance(message, BarrierReply):
            barrier_times[message.xid] = sim.now

    bed.controller.on_message = on_control

    # Catch-all drop (no actions), low priority.
    bed.controller.send(FlowMod(match=Match(), priority=1, actions=[]))
    bed.controller.send(BarrierRequest(xid=1))
    sim.run(until=ms(5))
    control_retries = 0
    if faulted:
        # Bounded resends: the barrier (or its reply) may have died on
        # a flapped channel. Healthy runs never enter this loop.
        setup_xid = 1
        while setup_xid not in barrier_times and control_retries < barrier_retries:
            control_retries += 1
            setup_xid = 100 + control_retries
            bed.controller.send(BarrierRequest(xid=setup_xid))
            sim.run(until=sim.now + ms(5))
    else:
        assert 1 in barrier_times, "setup barrier lost"

    # Continuous probes across the rule ports.
    bed.monitor.start_capture()
    bed.generator._engine.configure(
        port_sweep_source(128, n_rules, base_port=base_port),
        schedule=ConstantGap(probe_gap_ps),
        embed_timestamps=False,
    )
    bed.generator._engine.start()

    # The measured update burst.
    t0 = sim.now
    for index in range(n_rules):
        bed.controller.send(
            FlowMod(
                match=Match.exact(
                    dl_type=0x0800, nw_proto=17, tp_dst=base_port + index
                ),
                priority=100,
                actions=[OutputAction(bed.egress_of_port)],
            )
        )
    bed.controller.send(BarrierRequest(xid=2))

    activation: Dict[int, int] = {}

    def on_capture(packet):
        from ..net.parser import decode

        decoded = decode(packet.data)
        if decoded.udp is None:
            return
        rule = decoded.udp.dst_port - base_port
        if 0 <= rule < n_rules and rule not in activation:
            activation[rule] = packet.rx_timestamp

    bed.monitor.on_packet(on_capture)

    # Run until every rule has forwarded and the barrier came back.
    deadline = t0 + (seconds(2) if deadline_ps is None else deadline_ps)
    while sim.now < deadline and (len(activation) < n_rules or 2 not in barrier_times):
        sim.run(until=min(sim.now + ms(1), deadline))
    bed.generator._engine.stop()
    sim.run(until=sim.now + us(100))

    return FlowModResult(
        barrier_mode=barrier_mode,
        n_rules=n_rules,
        control_latency_ps=barrier_times.get(2, deadline) - t0,
        rule_activation_ps=[
            activation[index] - t0 for index in sorted(activation)
        ],
        degraded=len(activation) < n_rules or 2 not in barrier_times,
        control_retries=control_retries,
    )


# ---------------------------------------------------------------------------
# E5 — forwarding consistency during large table updates
# ---------------------------------------------------------------------------


@dataclass
class ConsistencyResult:
    barrier_mode: str
    n_rules: int
    #: Probes that arrived at the OLD destination after the barrier
    #: reply claimed the update was complete.
    stale_after_barrier: int
    #: Probes at the old destination after the update burst was sent.
    stale_during_update: int
    #: Update transition span (first to last rule flip), data-plane view.
    transition_span_ps: int
    barrier_latency_ps: int


def measure_forwarding_consistency(
    n_rules: int = 32,
    barrier_mode: str = "eager",
    firmware_delay_ps: int = us(30),
    table_write_ps: int = us(50),
    probe_gap_ps: int = us(2),
    base_port: int = 7000,
) -> ConsistencyResult:
    """Demo Part II: is forwarding consistent with control-plane claims?

    Rules initially steer ``n_rules`` flows to OF port 2 (old). The
    burst rewrites them all to OF port 3 (new). A "stale" probe is one
    the switch still delivers to the old port — counted against both the
    update start and the barrier reply.

    (Already a single measurement point — registered directly as the
    ``forwarding_consistency`` scenario.)
    """
    sim = Simulator()
    profile = SwitchProfile(
        barrier_mode=barrier_mode,
        firmware_delay_ps=firmware_delay_ps,
        table_write_ps=table_write_ps,
    )
    bed = openflow_testbed(sim, profile=profile, wire_cross_ports=True)
    old_port, new_port = 2, 3
    barrier_times: Dict[int, int] = {}
    bed.controller.on_message = lambda m: (
        barrier_times.__setitem__(m.xid, sim.now)
        if isinstance(m, BarrierReply)
        else None
    )

    for index in range(n_rules):
        bed.controller.send(
            FlowMod(
                match=Match.exact(
                    dl_type=0x0800, nw_proto=17, tp_dst=base_port + index
                ),
                priority=100,
                actions=[OutputAction(old_port)],
            )
        )
    bed.controller.send(BarrierRequest(xid=1))
    sim.run(until=ms(10))
    assert 1 in barrier_times, "setup barrier lost"

    old_monitor = bed.tester.monitor(1)
    new_monitor = bed.tester.monitor(2)
    old_monitor.start_capture()
    new_monitor.start_capture()
    bed.generator._engine.configure(
        port_sweep_source(128, n_rules, base_port=base_port),
        schedule=ConstantGap(probe_gap_ps),
    )
    bed.generator._engine.start()
    sim.run(until=sim.now + ms(1))  # steady state via old port

    t_update = sim.now
    for index in range(n_rules):
        bed.controller.send(
            FlowMod(
                match=Match.exact(
                    dl_type=0x0800, nw_proto=17, tp_dst=base_port + index
                ),
                priority=100,
                command=ofp.OFPFC_MODIFY_STRICT,
                actions=[OutputAction(new_port)],
            )
        )
    bed.controller.send(BarrierRequest(xid=2))

    deadline = t_update + seconds(2)
    while sim.now < deadline and 2 not in barrier_times:
        sim.run(until=min(sim.now + ms(1), deadline))
    # Let the transition finish: run until probes stop reaching old port.
    sim.run(until=sim.now + ms(5))
    bed.generator._engine.stop()
    sim.run(until=sim.now + us(100))

    barrier_at = barrier_times.get(2, deadline)
    old_rx = [p.rx_timestamp for p in old_monitor.packets if p.rx_timestamp >= t_update]
    new_rx = [p.rx_timestamp for p in new_monitor.packets]
    last_old = max(old_rx) if old_rx else t_update
    first_new = min(new_rx) if new_rx else last_old
    return ConsistencyResult(
        barrier_mode=barrier_mode,
        n_rules=n_rules,
        stale_after_barrier=sum(1 for t in old_rx if t > barrier_at),
        stale_during_update=len(old_rx),
        transition_span_ps=max(0, last_old - first_new),
        barrier_latency_ps=barrier_at - t_update,
    )


# ---------------------------------------------------------------------------
# E6 — loss-limited capture path
# ---------------------------------------------------------------------------


@dataclass
class CaptureRow:
    offered_load: float
    variant: str
    offered_packets: int
    captured: int
    dropped: int

    @property
    def capture_fraction(self) -> float:
        total = self.captured + self.dropped
        return self.captured / total if total else 0.0


#: The capture reducer variants E6 compares, as spec-friendly dicts.
CAPTURE_VARIANTS: List[Dict[str, Any]] = [
    {"name": "full"},
    {"name": "cut-64", "snaplen": 64},
    {"name": "thin-1in8", "keep_one_in": 8},
    {"name": "cut+thin", "snaplen": 64, "keep_one_in": 8},
]


def capture_path_point(
    load: float,
    variant: Optional[Dict[str, Any]] = None,
    frame_size: int = 512,
    duration_ps: int = ms(2),
    dma_bandwidth_bps: float = 2 * GBPS,
    seed: int = 0,
) -> Tuple[CaptureRow, Extras]:
    """One E6 point: capture completeness for one load and one reducer
    variant (``{"name": ..., "snaplen": ..., "keep_one_in": ...}``;
    the deprecated ``snap_bytes`` key is still honoured)."""
    variant = dict(variant or {"name": "full"})
    variant_name = variant.pop("name", "custom")
    sim = Simulator()
    tester = OSNT(sim, root_seed=seed, dma_bandwidth_bps=dma_bandwidth_bps)
    connect(tester.port(0), tester.port(1))
    monitor = tester.monitor(1)
    monitor.start_capture(**variant)
    generator = tester.generator(0)
    generator.load_template(udp_template(frame_size))
    generator.set_load(load).for_duration(duration_ps)
    generator.start()
    sim.run()
    pipeline = tester.device.monitor(1)
    row = CaptureRow(
        offered_load=load,
        variant=variant_name,
        offered_packets=generator.packets_sent,
        captured=pipeline.captured,
        dropped=pipeline.dma_drops_at_port,
    )
    return row, {}


def measure_capture_path(
    loads: List[float],
    frame_size: int = 512,
    duration_ps: int = ms(2),
    dma_bandwidth_bps: float = 2 * GBPS,
) -> List[CaptureRow]:
    """Deprecated shim over the ``capture_path`` scenario."""
    from ..runner import ExperimentSpec

    spec = ExperimentSpec(
        name="measure_capture_path",
        scenario="capture_path",
        params={
            "frame_size": frame_size,
            "duration": duration_ps,
            "dma_bandwidth_bps": dma_bandwidth_bps,
            "seed": 0,
        },
        axes={"load": list(loads), "variant": list(CAPTURE_VARIANTS)},
        timeout_s=None,
        retries=0,
    )
    return [_row_from_result(CaptureRow, r) for r in _run_shim_spec(spec)]


# ---------------------------------------------------------------------------
# E7 — timestamp placement: MAC-adjacent vs host-side
# ---------------------------------------------------------------------------


@dataclass
class PlacementRow:
    load: float
    hw_mean_us: float
    hw_std_us: float
    host_mean_us: float
    host_std_us: float

    @property
    def host_error_inflation(self) -> float:
        """How many times wider host-side measurement spread is."""
        return self.host_std_us / self.hw_std_us if self.hw_std_us else float("inf")


def timestamp_placement_point(
    load: float,
    frame_size: int = 512,
    duration_ps: int = ms(2),
    dma_bandwidth_bps: float = 4 * GBPS,
    seed: int = 0,
    switch_seed: int = 1,
) -> Tuple[PlacementRow, Extras]:
    """One E7 point: hardware vs host-side latency spread at one load —
    quantifying the "queueing noise" the MAC-side stamp eliminates."""
    sim = Simulator()
    switch = LegacySwitch(sim, rng=RandomStreams(switch_seed).stream("sw"))
    bed = legacy_testbed(
        sim, switch=switch, dma_bandwidth_bps=dma_bandwidth_bps, root_seed=seed
    )
    bed.teach_mac_table("02:00:00:00:00:02")
    host_arrivals: Dict[int, int] = {}
    bed.monitor.start_capture()
    bed.monitor.on_packet(
        lambda packet: host_arrivals.__setitem__(packet.packet_id, sim.now)
    )
    bed.generator.load_template(udp_template(frame_size))
    bed.generator.set_load(load).embed_timestamps().for_duration(duration_ps)
    bed.generator.start()
    sim.run()
    from ..osnt.generator.tx_timestamp import extract_ps

    hw_samples = []
    host_samples = []
    for packet in bed.monitor.packets:
        tx = extract_ps(packet.data)
        if tx == 0:
            continue
        hw_samples.append(packet.rx_timestamp - tx)
        host_samples.append(host_arrivals[packet.packet_id] - tx)
    hw = SummaryStats.of(hw_samples)
    host = SummaryStats.of(host_samples)
    row = PlacementRow(
        load=load,
        hw_mean_us=hw.mean / 1e6,
        hw_std_us=hw.std / 1e6,
        host_mean_us=host.mean / 1e6,
        host_std_us=host.std / 1e6,
    )
    return row, {}


def measure_timestamp_placement(
    loads: List[float],
    frame_size: int = 512,
    duration_ps: int = ms(2),
    dma_bandwidth_bps: float = 4 * GBPS,
) -> List[PlacementRow]:
    """Deprecated shim over the ``timestamp_placement`` scenario."""
    from ..runner import ExperimentSpec

    spec = ExperimentSpec(
        name="measure_timestamp_placement",
        scenario="timestamp_placement",
        params={
            "frame_size": frame_size,
            "duration": duration_ps,
            "dma_bandwidth_bps": dma_bandwidth_bps,
            "seed": 0,
            "switch_seed": 1,
        },
        axes={"load": list(loads)},
        timeout_s=None,
        retries=0,
    )
    return [_row_from_result(PlacementRow, r) for r in _run_shim_spec(spec)]


# ---------------------------------------------------------------------------
# E9 — router forwarding latency vs FIB shape
# ---------------------------------------------------------------------------


@dataclass
class RouterLatencyRow:
    fib_routes: int
    prefix_len: int
    packets: int
    mean_us: float
    p99_us: float
    forwarded: int
    no_route: int


def router_latency_point(
    prefix_len: int,
    fib_fill: int = 1000,
    frame_size: int = 256,
    duration_ps: int = ms(1),
    seed: int = 0,
) -> Tuple[RouterLatencyRow, Extras]:
    """One E9 point: forwarding latency at one matched-prefix depth.

    The FIB is filled with ``fib_fill`` filler routes plus one route of
    the probed prefix length; probes hit that route, so the latency
    reflects the LPM walk depth — the router-specific effect a tester
    can resolve thanks to sub-µs timestamping.
    """
    from ..devices.router import Router

    sim = Simulator()
    router = Router(sim)
    tester = OSNT(sim, root_seed=seed)
    connect(tester.port(0), router.port(0))
    connect(tester.port(1), router.port(1))
    # Filler routes across a disjoint space (192.0.0.0/10 region).
    for index in range(fib_fill):
        router.add_route(
            f"192.{(index >> 8) & 0x3F}.{index & 0xFF}.0/24",
            out_port=2,
            next_hop_mac="02:aa:00:00:00:ff",
        )
    # The measured route: covers the probe address at the probed
    # length (the trie consumes only the first prefix_len bits).
    router.add_route(
        f"10.0.0.1/{prefix_len}", out_port=1, next_hop_mac="02:aa:00:00:00:01"
    )
    monitor = tester.monitor(1)
    monitor.start_capture()
    generator = tester.generator(0)
    generator.load_template(udp_template(frame_size, dst_ip="10.0.0.1"))
    generator.set_load(0.2).embed_timestamps().for_duration(duration_ps)
    generator.start()
    sim.run()
    result = latency_from_capture(monitor.packets)
    summary = result.summary
    row = RouterLatencyRow(
        fib_routes=router.fib.size,
        prefix_len=prefix_len,
        packets=summary.count,
        mean_us=summary.mean / 1e6,
        p99_us=summary.p99 / 1e6,
        forwarded=router.forwarded,
        no_route=router.no_route,
    )
    return row, {}


def measure_router_latency(
    prefix_lens: List[int],
    fib_fill: int = 1000,
    frame_size: int = 256,
    duration_ps: int = ms(1),
) -> List[RouterLatencyRow]:
    """Deprecated shim over the ``router_latency`` scenario."""
    from ..runner import ExperimentSpec

    spec = ExperimentSpec(
        name="measure_router_latency",
        scenario="router_latency",
        params={
            "fib_fill": fib_fill,
            "frame_size": frame_size,
            "duration": duration_ps,
            "seed": 0,
        },
        axes={"prefix_len": list(prefix_lens)},
        timeout_s=None,
        retries=0,
    )
    return [_row_from_result(RouterLatencyRow, r) for r in _run_shim_spec(spec)]


# ---------------------------------------------------------------------------
# E3b — per-size latency from one mixed (IMIX) stream
# ---------------------------------------------------------------------------


@dataclass
class ImixLatencyRow:
    frame_size: int
    packets: int
    mean_us: float
    p99_us: float


def imix_latency_point(
    load: float = 0.5,
    duration_ps: int = ms(2),
    switch_kwargs: Optional[dict] = None,
    seed: int = 0,
    switch_seed: int = 1,
) -> Tuple[List[ImixLatencyRow], Extras]:
    """One E3b run: one IMIX stream through the switch, latency
    classified per frame size from the single capture.

    This is the measurement style hardware testers enable: because every
    captured packet carries its own embedded TX stamp, one mixed-traffic
    run yields the full per-size latency breakdown — no need for one
    run per size.
    """
    from ..osnt.generator.source import PacketListSource
    from .workloads import IMIX_PATTERN

    sim = Simulator()
    switch = LegacySwitch(
        sim, rng=RandomStreams(switch_seed).stream("sw"), **(switch_kwargs or {})
    )
    bed = legacy_testbed(sim, switch=switch, root_seed=seed)
    bed.teach_mac_table("02:00:00:00:00:02")
    bed.monitor.start_capture()
    packets = [udp_template(size) for size in IMIX_PATTERN]
    bed.generator._engine.configure(
        PacketListSource(packets, loop=10**6),
        schedule=ConstantBitRate(load * TEN_GBPS),
        duration_ps=duration_ps,
        embed_timestamps=True,
    )
    bed.generator._engine.start()
    sim.run()

    from ..osnt.generator.tx_timestamp import extract_ps

    by_size: Dict[int, List[int]] = {}
    for packet in bed.monitor.packets:
        tx = extract_ps(packet.data)
        if tx == 0 or packet.rx_timestamp is None:
            continue
        by_size.setdefault(packet.frame_length, []).append(packet.rx_timestamp - tx)
    rows = []
    for size in sorted(by_size):
        summary = SummaryStats.of(by_size[size])
        rows.append(
            ImixLatencyRow(
                frame_size=size,
                packets=summary.count,
                mean_us=summary.mean / 1e6,
                p99_us=summary.p99 / 1e6,
            )
        )
    return rows, {}


def measure_imix_latency(
    load: float = 0.5,
    duration_ps: int = ms(2),
    switch_kwargs: Optional[dict] = None,
) -> List[ImixLatencyRow]:
    """Deprecated shim over the ``imix_latency`` scenario."""
    from ..runner import ExperimentSpec

    spec = ExperimentSpec(
        name="measure_imix_latency",
        scenario="imix_latency",
        params={
            "load": load,
            "duration": duration_ps,
            "switch_kwargs": switch_kwargs,
            "seed": 0,
            "switch_seed": 1,
        },
        timeout_s=None,
        retries=0,
    )
    (result,) = _run_shim_spec(spec)
    return [_row_from_result(ImixLatencyRow, r) for r in result["rows"]]
