"""RFC 2544 benchmarking methodology on top of OSNT.

The demo says users "capture high-resolution timestamped packets to
evaluate the achievable bandwidth and latency of a network device" —
the standard way to do that is RFC 2544: binary-search the highest
offered load the DUT forwards with zero loss (throughput), then report
latency at that rate.

Each trial builds a fresh testbed (RFC 2544 trials are independent),
offers a fixed load of one frame size for the trial duration, and
counts sequence-numbered frames end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..analysis.latency import latency_from_capture, loss_from_sequence_numbers
from ..devices.legacy_switch import LegacySwitch
from ..osnt.generator.field_modifiers import SequenceNumber
from ..sim import RandomStreams, Simulator
from ..units import ms
from .topology import legacy_testbed
from .workloads import udp_template

#: Where the sequence number lives in the probe frames (clear of the
#: default timestamp offset at 42..49).
SEQUENCE_OFFSET = 54


@dataclass
class Trial:
    load: float
    sent: int
    received: int

    @property
    def lossless(self) -> bool:
        return self.received == self.sent


@dataclass
class ThroughputResult:
    frame_size: int
    #: Highest zero-loss load as a fraction of line rate.
    throughput_load: float
    #: Goodput at that load (frame bits per second).
    throughput_bps: float
    #: Mean/p99 latency measured at the found rate (µs).
    latency_mean_us: float
    latency_p99_us: float
    trials: List[Trial] = field(default_factory=list)


SwitchFactory = Callable[[Simulator], LegacySwitch]


def default_switch_factory(
    fabric_rate_bps: Optional[float] = None, switch_seed: int = 1
) -> SwitchFactory:
    def build(sim: Simulator) -> LegacySwitch:
        return LegacySwitch(
            sim,
            fabric_rate_bps=fabric_rate_bps,
            rng=RandomStreams(switch_seed).stream("sw"),
        )

    return build


def rfc2544_point(
    frame_size: int,
    fabric_rate_bps: Optional[float] = None,
    duration_ps: int = ms(2),
    resolution: float = 0.01,
    switch_seed: int = 1,
) -> ThroughputResult:
    """One spec-friendly RFC 2544 search: all-data parameters, no
    factory closures — what the ``rfc2544`` scenario runs per shard."""
    return rfc2544_throughput(
        frame_size,
        switch_factory=default_switch_factory(
            fabric_rate_bps=fabric_rate_bps, switch_seed=switch_seed
        ),
        duration_ps=duration_ps,
        resolution=resolution,
    )


def _run_trial(
    switch_factory: SwitchFactory,
    frame_size: int,
    load: float,
    duration_ps: int,
    with_timestamps: bool,
):
    sim = Simulator()
    switch = switch_factory(sim)
    # Generous DMA: the tester's own capture path must not lose packets,
    # or capture loss would be misattributed to the DUT. Cutting to 64
    # bytes keeps both the timestamp (42..49) and sequence (54..57).
    bed = legacy_testbed(
        sim, switch=switch, dma_bandwidth_bps=40e9, dma_ring_slots=1 << 14
    )
    bed.teach_mac_table("02:00:00:00:00:02")
    bed.monitor.start_capture(snaplen=64)
    generator = bed.generator
    generator.load_template(
        udp_template(frame_size),
        modifiers=[SequenceNumber(SEQUENCE_OFFSET)],
    )
    if load >= 1.0:
        generator.at_line_rate()
    else:
        generator.set_load(load)
    if with_timestamps:
        generator.embed_timestamps()
    generator.for_duration(duration_ps)
    generator.start()
    sim.run()
    sent = generator.packets_sent
    loss = loss_from_sequence_numbers(
        bed.monitor.packets, offset=SEQUENCE_OFFSET, expected_count=sent
    )
    return sent, loss, bed.monitor.packets


def rfc2544_throughput(
    frame_size: int,
    switch_factory: Optional[SwitchFactory] = None,
    duration_ps: int = ms(2),
    resolution: float = 0.01,
) -> ThroughputResult:
    """Binary-search the DUT's zero-loss throughput for one frame size.

    ``resolution`` is the search's load granularity (fraction of line
    rate). The returned latency figures are measured in a final trial at
    the found rate with embedded timestamps.
    """
    trials: List[Trial] = []

    def lossless_at(load: float) -> bool:
        sent, loss, __ = _run_trial(
            switch_factory or default_switch_factory(),
            frame_size,
            load,
            duration_ps,
            with_timestamps=False,
        )
        trials.append(Trial(load=load, sent=sent, received=sent - loss.lost))
        return loss.lost == 0

    low, high = 0.0, 1.0
    if lossless_at(1.0):
        best = 1.0
    else:
        best = 0.0
        while high - low > resolution:
            mid = (low + high) / 2
            if lossless_at(mid):
                best = mid
                low = mid
            else:
                high = mid

    # Latency at the found throughput (RFC 2544 §26.2).
    measure_load = max(best, resolution)
    __, __, packets = _run_trial(
        switch_factory or default_switch_factory(),
        frame_size,
        measure_load,
        duration_ps,
        with_timestamps=True,
    )
    latency = latency_from_capture(packets).summary
    from ..units import line_rate_goodput_bps

    return ThroughputResult(
        frame_size=frame_size,
        throughput_load=best,
        throughput_bps=best * line_rate_goodput_bps(frame_size) / 1.0,
        latency_mean_us=latency.mean / 1e6,
        latency_p99_us=latency.p99 / 1e6,
        trials=trials,
    )
