"""Standard tester workloads: size sweeps, IMIX, multi-flow traffic."""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigError
from ..net.builder import build_udp
from ..net.packet import Packet
from ..osnt.generator.field_modifiers import Ipv4AddressSweep, SequenceNumber, UdpPortSweep
from ..osnt.generator.source import PacketListSource, TemplateSource

#: The RFC 2544 frame sizes every tester sweeps.
RFC2544_SIZES = [64, 128, 256, 512, 1024, 1280, 1518]

#: Simple IMIX: 7×64B : 4×576B : 1×1518B (the classic 7:4:1 mix).
IMIX_PATTERN = [64] * 7 + [576] * 4 + [1518]


def udp_template(
    frame_size: int,
    dst_mac: str = "02:00:00:00:00:02",
    src_mac: str = "02:00:00:00:00:01",
    dst_ip: str = "10.0.0.2",
    src_ip: str = "10.0.0.1",
    dst_port: int = 5001,
) -> Packet:
    """The canonical test frame used across scenarios."""
    return build_udp(
        frame_size=frame_size,
        src_mac=src_mac,
        dst_mac=dst_mac,
        src_ip=src_ip,
        dst_ip=dst_ip,
        dst_port=dst_port,
    )


def fixed_size_source(
    frame_size: int,
    count: Optional[int] = None,
    sequence_offset: Optional[int] = None,
    **template_kwargs,
) -> TemplateSource:
    """A stream of identical frames, optionally sequence-numbered."""
    modifiers = []
    if sequence_offset is not None:
        modifiers.append(SequenceNumber(sequence_offset))
    return TemplateSource(
        udp_template(frame_size, **template_kwargs), count=count, modifiers=modifiers
    )


def imix_source(loops: int = 1, **template_kwargs) -> PacketListSource:
    """One IMIX pattern repetition per loop."""
    packets = [udp_template(size, **template_kwargs) for size in IMIX_PATTERN]
    return PacketListSource(packets, loop=loops)


def multi_flow_source(
    frame_size: int,
    flow_count: int,
    count: Optional[int] = None,
    base_dst_ip: str = "10.1.0.1",
    **template_kwargs,
) -> TemplateSource:
    """Sweeps the destination address across ``flow_count`` flows."""
    if flow_count < 1:
        raise ConfigError("flow_count must be >= 1")
    return TemplateSource(
        udp_template(frame_size, **template_kwargs),
        count=count,
        modifiers=[Ipv4AddressSweep("dst", base_dst_ip, flow_count)],
    )


def port_sweep_source(
    frame_size: int,
    port_count: int,
    base_port: int = 6000,
    count: Optional[int] = None,
    **template_kwargs,
) -> TemplateSource:
    """Sweeps the UDP destination port (one rule-matchable flow each)."""
    return TemplateSource(
        udp_template(frame_size, **template_kwargs),
        count=count,
        modifiers=[UdpPortSweep("dst", base_port, port_count)],
    )


def load_points(steps: int = 5, maximum: float = 1.0) -> List[float]:
    """Evenly spaced offered-load fractions ending at ``maximum``."""
    if steps < 1:
        raise ConfigError("need at least one load point")
    return [maximum * (index + 1) / steps for index in range(steps)]
