"""Testbed topologies — the wiring in the demo's Figure 2.

Both demo parts use the same physical shape: one OSNT port transmits
into the device under test, another OSNT port captures what comes out.
Part II adds the OpenFlow control channel (OFLOPS-turbo host ↔ switch)
and an SNMP channel.
"""

from __future__ import annotations

from typing import Optional

from ..devices.legacy_switch import LegacySwitch
from ..devices.openflow_switch import OpenFlowSwitch, SwitchProfile
from ..devices.snmp_agent import SnmpAgent
from ..hw.port import connect
from ..openflow.connection import ControlChannel
from ..osnt.api import OSNT, TrafficGenerator, TrafficMonitor
from ..sim import Simulator
from ..units import us


class LegacySwitchTestbed:
    """Part I: OSNT ↔ legacy switch.

    * OSNT port 0 → switch port 0 (traffic in)
    * switch port 1 → OSNT port 1 (traffic out, captured)
    * optionally OSNT ports 2/3 ↔ switch ports 2/3 for cross traffic
    """

    def __init__(
        self,
        sim: Simulator,
        switch: Optional[LegacySwitch] = None,
        wire_cross_ports: bool = False,
        **osnt_kwargs,
    ) -> None:
        self.sim = sim
        self.tester = OSNT(sim, **osnt_kwargs)
        self.switch = switch or LegacySwitch(sim)
        #: The wired cables, in wiring order — fault models attach here
        #: (``links[0]`` is the ingress OSNT→switch cable).
        self.links = [
            connect(self.tester.port(0), self.switch.port(0)),
            connect(self.tester.port(1), self.switch.port(1)),
        ]
        if wire_cross_ports:
            self.links.append(connect(self.tester.port(2), self.switch.port(2)))
            self.links.append(connect(self.tester.port(3), self.switch.port(3)))
        self.generator: TrafficGenerator = self.tester.generator(0)
        self.monitor: TrafficMonitor = self.tester.monitor(1)

    def teach_mac_table(self, dst_mac: str) -> None:
        """Prime the switch so test traffic is unicast, not flooded.

        Sends one frame *from* ``dst_mac`` out of the capture-side OSNT
        port, exactly as the OSNT tools do before a latency run.
        """
        from ..net.builder import build_udp

        learning = build_udp(src_mac=dst_mac, dst_mac="02:ff:ff:ff:ff:fe")
        self.tester.port(1).send(learning)
        self.sim.run(until=self.sim.now + us(10))


class OpenFlowTestbed:
    """Part II: OSNT ↔ OpenFlow switch + control channel + SNMP.

    The controller endpoint is left unwired (``on_message`` unset): the
    OFLOPS-turbo context claims it when a measurement module starts.
    """

    def __init__(
        self,
        sim: Simulator,
        profile: Optional[SwitchProfile] = None,
        control_latency_ps: int = us(50),
        num_switch_ports: int = 4,
        wire_cross_ports: bool = False,
        **osnt_kwargs,
    ) -> None:
        self.sim = sim
        self.channel = ControlChannel(sim, latency_ps=control_latency_ps)
        self.switch = OpenFlowSwitch(
            sim,
            self.channel.switch,
            num_ports=num_switch_ports,
            profile=profile,
        )
        self.tester = OSNT(sim, **osnt_kwargs)
        #: The wired cables, in wiring order — fault models attach here
        #: (``links[0]`` is the ingress OSNT→switch cable).
        self.links = [
            connect(self.tester.port(0), self.switch.port(0)),
            connect(self.tester.port(1), self.switch.port(1)),
        ]
        if wire_cross_ports and num_switch_ports >= 4:
            self.links.append(connect(self.tester.port(2), self.switch.port(2)))
            self.links.append(connect(self.tester.port(3), self.switch.port(3)))
        self.snmp = SnmpAgent(sim, self.switch.ports)
        self.generator: TrafficGenerator = self.tester.generator(0)
        self.monitor: TrafficMonitor = self.tester.monitor(1)
        #: OF port numbers of the wired data path (1-based).
        self.ingress_of_port = 1
        self.egress_of_port = 2

    @property
    def controller(self):
        """The controller end of the OpenFlow control channel."""
        return self.channel.controller
