"""Testbed topologies — the wiring in the demo's Figure 2.

Both demo parts use the same physical shape: one OSNT port transmits
into the device under test, another OSNT port captures what comes out.
Part II adds the OpenFlow control channel (OFLOPS-turbo host ↔ switch)
and an SNMP channel.

Both shapes are declared through :class:`repro.topology.Topology` and
materialized by :func:`legacy_testbed` / :func:`openflow_testbed`.  The
old ``LegacySwitchTestbed(sim, ...)`` / ``OpenFlowTestbed(sim, ...)``
constructors still work but emit a :class:`DeprecationWarning`; new
code should call the factories (or declare its own
:class:`~repro.topology.Topology`).
"""

from __future__ import annotations

import warnings
from typing import Optional

from ..devices.legacy_switch import LegacySwitch
from ..devices.openflow_switch import SwitchProfile
from ..osnt.api import TrafficGenerator, TrafficMonitor
from ..sim import Simulator
from ..topology import Topology
from ..units import us

_DEPRECATION = (
    "constructing {cls}(sim, ...) directly is deprecated; use "
    "repro.testbed.{factory}(sim, ...) or declare a repro.topology.Topology"
)


def legacy_switch_topology(wire_cross_ports: bool = False) -> Topology:
    """The Part-I shape as a declarative, serializable Topology."""
    topo = (
        Topology(name="legacy-switch-testbed")
        .tester("osnt")
        .node("sw", "legacy_switch")
        .link("osnt:0", "sw:0")
        .link("osnt:1", "sw:1")
    )
    if wire_cross_ports:
        topo.link("osnt:2", "sw:2").link("osnt:3", "sw:3")
    return topo


def openflow_topology(
    control_latency_ps: int = us(50),
    num_switch_ports: int = 4,
    wire_cross_ports: bool = False,
) -> Topology:
    """The Part-II shape as a declarative, serializable Topology."""
    topo = (
        Topology(name="openflow-testbed")
        .node(
            "ofsw",
            "openflow_switch",
            ports=num_switch_ports,
            control_latency=control_latency_ps,
        )
        .tester("osnt")
        .link("osnt:0", "ofsw:0")
        .link("osnt:1", "ofsw:1")
    )
    if wire_cross_ports and num_switch_ports >= 4:
        topo.link("osnt:2", "ofsw:2").link("osnt:3", "ofsw:3")
    topo.snmp("snmp", switch="ofsw")
    return topo


class LegacySwitchTestbed:
    """Part I: OSNT ↔ legacy switch.

    * OSNT port 0 → switch port 0 (traffic in)
    * switch port 1 → OSNT port 1 (traffic out, captured)
    * optionally OSNT ports 2/3 ↔ switch ports 2/3 for cross traffic

    .. deprecated:: use :func:`legacy_testbed` (same arguments, same
       attributes, no behaviour change).
    """

    def __init__(
        self,
        sim: Simulator,
        switch: Optional[LegacySwitch] = None,
        wire_cross_ports: bool = False,
        **osnt_kwargs,
    ) -> None:
        warnings.warn(
            _DEPRECATION.format(cls="LegacySwitchTestbed", factory="legacy_testbed"),
            DeprecationWarning,
            stacklevel=2,
        )
        self._init(sim, switch, wire_cross_ports, osnt_kwargs)

    def _init(self, sim, switch, wire_cross_ports, osnt_kwargs) -> None:
        topo = legacy_switch_topology(wire_cross_ports)
        if osnt_kwargs:
            topo.nodes[0].params.update(osnt_kwargs)
        devices = {"sw": switch} if switch is not None else None
        built = topo.build(sim, devices=devices)
        self.sim = sim
        self.topology = built
        self.tester = built.node("osnt")
        self.switch = built.node("sw")
        #: The wired cables, in wiring order — fault models attach here
        #: (``links[0]`` is the ingress OSNT→switch cable).
        self.links = built.links
        self.generator: TrafficGenerator = self.tester.generator(0)
        self.monitor: TrafficMonitor = self.tester.monitor(1)

    def teach_mac_table(self, dst_mac: str) -> None:
        """Prime the switch so test traffic is unicast, not flooded.

        Sends one frame *from* ``dst_mac`` out of the capture-side OSNT
        port, exactly as the OSNT tools do before a latency run.
        """
        from ..net.builder import build_udp

        learning = build_udp(src_mac=dst_mac, dst_mac="02:ff:ff:ff:ff:fe")
        self.tester.port(1).send(learning)
        self.sim.run(until=self.sim.now + us(10))


class OpenFlowTestbed:
    """Part II: OSNT ↔ OpenFlow switch + control channel + SNMP.

    The controller endpoint is left unwired (``on_message`` unset): the
    OFLOPS-turbo context claims it when a measurement module starts.

    .. deprecated:: use :func:`openflow_testbed` (same arguments, same
       attributes, no behaviour change).
    """

    def __init__(
        self,
        sim: Simulator,
        profile: Optional[SwitchProfile] = None,
        control_latency_ps: int = us(50),
        num_switch_ports: int = 4,
        wire_cross_ports: bool = False,
        **osnt_kwargs,
    ) -> None:
        warnings.warn(
            _DEPRECATION.format(cls="OpenFlowTestbed", factory="openflow_testbed"),
            DeprecationWarning,
            stacklevel=2,
        )
        self._init(
            sim, profile, control_latency_ps, num_switch_ports,
            wire_cross_ports, osnt_kwargs,
        )

    def _init(
        self, sim, profile, control_latency_ps, num_switch_ports,
        wire_cross_ports, osnt_kwargs,
    ) -> None:
        topo = openflow_topology(
            control_latency_ps=control_latency_ps,
            num_switch_ports=num_switch_ports,
            wire_cross_ports=wire_cross_ports,
        )
        if profile is not None:
            topo.nodes[0].params["profile"] = profile
        if osnt_kwargs:
            topo.nodes[1].params.update(osnt_kwargs)
        built = topo.build(sim)
        self.sim = sim
        self.topology = built
        self.channel = built.control_channel("ofsw")
        self.switch = built.node("ofsw")
        self.tester = built.node("osnt")
        #: The wired cables, in wiring order — fault models attach here
        #: (``links[0]`` is the ingress OSNT→switch cable).
        self.links = built.links
        self.snmp = built.node("snmp")
        self.generator: TrafficGenerator = self.tester.generator(0)
        self.monitor: TrafficMonitor = self.tester.monitor(1)
        #: OF port numbers of the wired data path (1-based).
        self.ingress_of_port = 1
        self.egress_of_port = 2

    @property
    def controller(self):
        """The controller end of the OpenFlow control channel."""
        return self.channel.controller


def legacy_testbed(
    sim: Simulator,
    switch: Optional[LegacySwitch] = None,
    wire_cross_ports: bool = False,
    **osnt_kwargs,
) -> LegacySwitchTestbed:
    """Build the Part-I testbed (no deprecation warning)."""
    bed = object.__new__(LegacySwitchTestbed)
    bed._init(sim, switch, wire_cross_ports, osnt_kwargs)
    return bed


def openflow_testbed(
    sim: Simulator,
    profile: Optional[SwitchProfile] = None,
    control_latency_ps: int = us(50),
    num_switch_ports: int = 4,
    wire_cross_ports: bool = False,
    **osnt_kwargs,
) -> OpenFlowTestbed:
    """Build the Part-II testbed (no deprecation warning)."""
    bed = object.__new__(OpenFlowTestbed)
    bed._init(
        sim, profile, control_latency_ps, num_switch_ports,
        wire_cross_ports, osnt_kwargs,
    )
    return bed
