"""A textual status panel for the tester — the "GUI" counterpart.

The paper mentions "command-line and graphic-user interfaces (CLI and
GUI)"; this module renders the same information the OSNT GUI shows —
device identity, GPS lock, per-port generator/monitor counters and
rates — as a plain-text panel, suitable for terminals and tests alike.
"""

from __future__ import annotations

from typing import List

from ..analysis.report import format_table
from ..units import format_rate, to_us
from .api import OSNT


def _format_percentile(value) -> str:
    """A histogram percentile (ps) as microseconds, '-' when absent."""
    return "-" if value is None else f"{to_us(value):.2f}"


def render_status(tester: OSNT) -> str:
    """One snapshot of the whole card as a text panel."""
    device = tester.device
    sim = device.sim
    lines: List[str] = []
    identity = device.bus.read32(0x0)
    version = device.bus.read32(0x4)
    gps_error = device.gps.last_error_ps
    gps_state = (
        "no fix yet"
        if gps_error is None
        else f"locked, |err| {abs(gps_error) / 1e3:.1f} ns"
        if abs(gps_error) < 1_000_000
        else f"acquiring, |err| {abs(gps_error) / 1e6:.1f} µs"
    )
    if not device.gps.enabled:
        gps_state = "disabled (free-running)"
    lines.append(
        f"OSNT device {identity:#010x} v{version >> 16}.{version & 0xFFFF}"
        f"  t={sim.now / 1e12:.6f} s  GPS: {gps_state}"
    )
    lines.append("")

    rows = []
    for index, port in enumerate(device.ports):
        generator = device.generators[index]
        monitor = device.monitors[index]
        latency = monitor.latency.summary()
        # MAC drops split by cause: "inj" counts packets fault models
        # discarded on purpose, "ovf" real RX overflow — keeping them
        # apart is what lets an injected-loss experiment prove the
        # datapath itself dropped nothing.
        rx_stats = port.rx.stats
        rows.append(
            [
                f"p{index}",
                "up" if port.connected else "down",
                generator.stats.sent,
                format_rate(generator.stats.achieved_bps()),
                monitor.stats.rx_packets,
                format_rate(monitor.stats.observed_bps()),
                monitor.host.received,
                monitor.dma_drops_at_port,
                rx_stats.drops_injected,
                rx_stats.drops_overflow,
                _format_percentile(latency.p50),
                _format_percentile(latency.p99),
                _format_percentile(latency.p999),
                "on" if monitor.enabled else "off",
            ]
        )
    lines.append(
        format_table(
            [
                "port", "link", "tx pkts", "tx rate", "rx pkts", "rx rate",
                "captured", "drops", "inj", "ovf", "p50 µs", "p99 µs",
                "p999 µs", "capture",
            ],
            rows,
        )
    )
    dma = device.dma
    lines.append("")
    lines.append(
        f"host DMA: {dma.stats.delivered} delivered, {dma.stats.dropped} dropped, "
        f"ring {dma.ring_occupancy}/{dma.ring_slots} "
        f"(peak {dma.stats.peak_ring_occupancy})"
    )
    return "\n".join(lines)
