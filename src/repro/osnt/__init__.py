"""OSNT: the open-source network tester (generator + monitor + API)."""

from .api import OSNT, TrafficGenerator, TrafficMonitor
from .dashboard import render_status
from .device import OSNTDevice
from .software_baseline import SoftwareGenerator, SoftwareGeneratorProfile

__all__ = [
    "OSNT",
    "OSNTDevice",
    "SoftwareGenerator",
    "SoftwareGeneratorProfile",
    "TrafficGenerator",
    "TrafficMonitor",
    "render_status",
]
