"""The programmer-friendly OSNT software API.

The paper: "The OSNT platform provides a simple and programmer-friendly
API to control the traffic generation and monitoring functionality of
the OSNT design, enabling the realisation of high precision and
throughput measurement tests in software."

:class:`TrafficGenerator` and :class:`TrafficMonitor` are that API. All
*control* (start/stop, timestamping, snap length, thinning, filters,
counters) flows through the device's AXI-Lite register map — the same
path the real driver uses — while bulk data (templates, PCAP contents,
schedules) is attached as Python objects, standing in for the real
tools' DMA loads.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from contextlib import contextmanager

from ..errors import CaptureError, GeneratorError
from ..net.packet import Packet
from ..net.pcap import PcapRecord, PcapWriter
from ..net.pcapng import read_capture
from ..units import duration_ps, rate_bps
from .device import OSNTDevice
from .generator.field_modifiers import FieldModifier
from .generator.schedule import (
    Bursts,
    ConstantBitRate,
    ConstantGap,
    LineRate,
    PoissonGaps,
    Schedule,
    rate_for_load,
)
from .generator.source import PacketSource, PcapReplaySource, TemplateSource
from .generator.tx_timestamp import DEFAULT_OFFSET
from .monitor.reducers import HashUnit


class TrafficGenerator:
    """Software handle onto one port's generation engine."""

    def __init__(self, device: OSNTDevice, port_index: int) -> None:
        self.device = device
        self.port_index = port_index
        self._engine = device.generator(port_index)
        self._bus = device.bus
        self._base = device.generator_base(port_index)
        self._source: Optional[PacketSource] = None
        self._schedule: Optional[Schedule] = None
        self._count: Optional[int] = None
        self._duration_ps: Optional[int] = None
        self._embed = False
        self._ts_offset = DEFAULT_OFFSET

    # -- what to send ------------------------------------------------------

    def load_template(
        self,
        packet: Packet,
        count: Optional[int] = None,
        modifiers: Sequence[FieldModifier] = (),
    ) -> "TrafficGenerator":
        """Replay one frame ``count`` times (None = until stopped)."""
        self._source = TemplateSource(packet, count=count, modifiers=modifiers)
        self._count = count
        return self

    def load_pcap(
        self,
        source: Union[str, Path, Sequence[PcapRecord]],
        loop: int = 1,
        preserve_timing: bool = True,
        speed: float = 1.0,
    ) -> "TrafficGenerator":
        """Replay a capture (pcap or pcapng), with its recorded gaps."""
        records = (
            read_capture(source) if isinstance(source, (str, Path)) else list(source)
        )
        replay = PcapReplaySource(records, loop=loop, speed=speed)
        self._source = replay
        self._count = None
        if preserve_timing:
            self._schedule = replay.timing_schedule()
        return self

    # -- how fast ----------------------------------------------------------

    def at_line_rate(self) -> "TrafficGenerator":
        self._schedule = LineRate(self._engine.port.rate_bps)
        return self

    def set_rate(self, rate: Union[str, float]) -> "TrafficGenerator":
        """Target wire rate, e.g. ``"9.5Gbps"`` or bits/second."""
        self._schedule = ConstantBitRate(rate_bps(rate), self._engine.port.rate_bps)
        return self

    def set_load(self, fraction: float) -> "TrafficGenerator":
        """Target offered load as a fraction of line rate (0, 1]."""
        return self.set_rate(rate_for_load(fraction, self._engine.port.rate_bps))

    def set_gap(self, gap: Union[str, int]) -> "TrafficGenerator":
        """Fixed start-to-start inter-departure time (ps or ``"2us"``)."""
        self._schedule = ConstantGap(duration_ps(gap), self._engine.port.rate_bps)
        return self

    def poisson(self, mean_gap: Union[str, float]) -> "TrafficGenerator":
        """Poisson arrivals with the given mean gap (ps or ``"2us"``)."""
        stream = self.device.streams.stream(f"gen{self.port_index}.poisson")
        mean_gap_ps = (
            duration_ps(mean_gap) if isinstance(mean_gap, str) else float(mean_gap)
        )
        self._schedule = PoissonGaps(
            mean_gap_ps, line_rate_bps=self._engine.port.rate_bps, stream=stream
        )
        return self

    def bursts(self, burst_len: int, idle_gap_ps: int) -> "TrafficGenerator":
        self._schedule = Bursts(burst_len, idle_gap_ps, self._engine.port.rate_bps)
        return self

    def burst_train(
        self,
        frames_per_burst: int,
        inter_burst_gap: Union[str, int],
        peak: Union[str, float, None] = None,
        ramp_bursts: int = 0,
    ) -> "TrafficGenerator":
        """P4TG-style burst trains: N frames at peak rate, exact gaps."""
        from .generator.trafficmodels import BurstTrain

        line = self._engine.port.rate_bps
        self._schedule = BurstTrain(
            frames_per_burst,
            duration_ps(inter_burst_gap),
            peak_bps=line if peak is None else rate_bps(peak),
            line_rate_bps=line,
            ramp_bursts=ramp_bursts,
        )
        return self

    def periodic(
        self,
        on: Union[str, int],
        off: Union[str, int],
        peak: Union[str, float, None] = None,
        phase: Union[str, int] = 0,
    ) -> "TrafficGenerator":
        """Deterministic on/off square wave with a phase offset."""
        from .generator.trafficmodels import Periodic

        line = self._engine.port.rate_bps
        self._schedule = Periodic(
            duration_ps(on),
            duration_ps(off),
            peak_bps=line if peak is None else rate_bps(peak),
            line_rate_bps=line,
            phase_ps=duration_ps(phase),
        )
        return self

    def use_model(self, traffic) -> "TrafficGenerator":
        """Pace with a declarative traffic model.

        ``traffic`` is anything :func:`~repro.osnt.generator.trafficspec
        .build_traffic` accepts: a :class:`TrafficModelSpec`, a spec
        dict/JSON string, a bare model kind name, or an already-built
        :class:`Schedule`.  Stochastic models draw from this port's
        device-derived stream, so timelines are pinned by the device
        seed.
        """
        from .generator.trafficspec import build_traffic

        self._schedule = build_traffic(
            traffic,
            line_rate_bps=self._engine.port.rate_bps,
            streams=self.device.streams,
            name=f"gen{self.port_index}",
        )
        return self

    def for_duration(self, duration: Union[str, int]) -> "TrafficGenerator":
        """Run length as integer picoseconds or a string like ``"10ms"``."""
        self._duration_ps = duration_ps(duration)
        return self

    # -- timestamping --------------------------------------------------------

    def embed_timestamps(self, offset: int = DEFAULT_OFFSET) -> "TrafficGenerator":
        """Embed the 64-bit TX stamp at ``offset`` in every frame."""
        self._embed = True
        self._ts_offset = offset
        return self

    # -- control -----------------------------------------------------------

    def start(self) -> "TrafficGenerator":
        """Arm the engine and start transmitting; returns ``self``.

        Prefer the context-manager idiom for new code — it guarantees
        the matching :meth:`stop`::

            with generator.load_template(pkt).set_rate("5Gbps"):
                sim.run(until=...)

        (Bare ``start()``/``stop()`` pairs remain supported but are
        deprecated in the docs.)
        """
        if self._source is None:
            raise GeneratorError("nothing loaded: call load_template()/load_pcap()")
        self._engine.configure(
            self._source,
            schedule=self._schedule,
            count=self._count,
            duration_ps=self._duration_ps,
            embed_timestamps=self._embed,
            timestamp_offset=self._ts_offset,
        )
        self._bus.write32(self._base + 0x4, 1 if self._embed else 0)  # ts_enable
        self._bus.write32(self._base + 0x8, self._ts_offset)  # ts_offset
        self._bus.write32(self._base + 0x0, 0x1)  # ctrl.start
        return self

    def stop(self) -> None:
        self._bus.write32(self._base + 0x0, 0x2)  # ctrl.stop

    def __enter__(self) -> "TrafficGenerator":
        """Start on entry (if not already running); stop on exit."""
        if not self.running:
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    @property
    def running(self) -> bool:
        return bool(self._bus.read32(self._base + 0x20))

    @property
    def packets_sent(self) -> int:
        low = self._bus.read32(self._base + 0x10)
        high = self._bus.read32(self._base + 0x14)
        return (high << 32) | low

    @property
    def bytes_sent(self) -> int:
        low = self._bus.read32(self._base + 0x18)
        high = self._bus.read32(self._base + 0x1C)
        return (high << 32) | low

    @property
    def stats(self):
        return self._engine.stats

    @property
    def done(self):
        """Signal fired (with the stats) when the run finishes."""
        return self._engine.done


class TrafficMonitor:
    """Software handle onto one port's capture pipeline."""

    def __init__(self, device: OSNTDevice, port_index: int) -> None:
        self.device = device
        self.port_index = port_index
        self._pipeline = device.monitor(port_index)
        self._bus = device.bus
        self._base = device.monitor_base(port_index)

    # -- capture control ------------------------------------------------------

    def start_capture(
        self,
        snaplen: Optional[int] = None,
        keep_one_in: int = 1,
        hash_packets: bool = False,
        snap_bytes: Optional[int] = None,
    ) -> "TrafficMonitor":
        if snap_bytes is not None:
            from .monitor.reducers import _warn_snap_bytes

            _warn_snap_bytes()
            if snaplen is None:
                snaplen = snap_bytes
        if snaplen is not None and snaplen < 14:
            raise CaptureError("snap length must keep at least the Ethernet header")
        self._bus.write32(self._base + 0x4, snaplen or 0)  # snap_len
        self._bus.write32(self._base + 0x8, keep_one_in)  # thin_one_in
        self._pipeline.hash_unit = HashUnit() if hash_packets else None
        self._bus.write32(self._base + 0x0, 1)  # ctrl.enable
        return self

    def stop_capture(self) -> None:
        self._bus.write32(self._base + 0x0, 0)

    @property
    def capturing(self) -> bool:
        return bool(self._bus.read32(self._base + 0x0))

    def __enter__(self) -> "TrafficMonitor":
        """Start capturing on entry (if not already); stop on exit.

        ``start_capture(...)`` returns the monitor, so capture options
        compose with the ``with`` statement::

            with monitor.start_capture(snaplen=64):
                sim.run(until=...)
        """
        if not self.capturing:
            self.start_capture()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop_capture()
        return False

    def clear(self) -> None:
        self._pipeline.host.clear()

    # -- filters -------------------------------------------------------------

    def add_filter(self, rule=None, **fields) -> "TrafficMonitor":
        """Install a wildcard filter row (and default-drop the rest).

        ``rule`` may be a :class:`~repro.osnt.monitor.filters.FilterRule`,
        a declarative spec dict (anything ``FilterRule.from_spec``
        accepts, including the CLI's ``"src": "10.0.0.0/8"`` prefix
        shorthand) or a JSON object string; alternatively pass the rule
        fields (``dst_port=53, protocol=17, ...``) as keywords.
        """
        from ..net.fields import ipv4_to_int
        from .device import FILTER_WILDCARD
        from .monitor.filters import FilterRule

        if rule is not None:
            if fields:
                raise CaptureError("pass either a rule spec or field keywords, not both")
            rule = FilterRule.from_spec(rule)
        else:
            rule = FilterRule(**fields)
        base = self._base
        write = self._bus.write32
        write(base + 0x40, FILTER_WILDCARD if rule.src_ip is None else ipv4_to_int(rule.src_ip))
        write(base + 0x44, rule.src_prefix_len)
        write(base + 0x48, FILTER_WILDCARD if rule.dst_ip is None else ipv4_to_int(rule.dst_ip))
        write(base + 0x4C, rule.dst_prefix_len)
        write(base + 0x50, FILTER_WILDCARD if rule.protocol is None else rule.protocol)
        write(base + 0x54, FILTER_WILDCARD if rule.src_port is None else rule.src_port)
        write(base + 0x58, FILTER_WILDCARD if rule.dst_port is None else rule.dst_port)
        write(base + 0x5C, 1 if rule.action_pass else 0)
        write(base + 0x60, 1)  # commit strobe
        # Installing an explicit pass rule flips the default to drop —
        # "capture only what matches", like the OSNT cut/filter tools.
        if rule.action_pass:
            self._pipeline.filter_bank.default_pass = False
        return self

    def set_filters(self, rules) -> "TrafficMonitor":
        """Replace the whole bank declaratively.

        ``rules`` is a list of rule specs or a JSON array — the same
        inputs as :meth:`FilterBank.from_rules
        <repro.osnt.monitor.filters.FilterBank.from_rules>`. The staged
        bank is validated in software first, then each row is committed
        through the register interface, so the hardware and software
        views stay in lockstep.
        """
        from .monitor.filters import FilterBank

        bank = FilterBank.from_rules(rules)
        self.clear_filters()
        for rule in bank.rules:
            self.add_filter(rule)
        self._pipeline.filter_bank.default_pass = bank.default_pass
        return self

    def clear_filters(self) -> None:
        self._bus.write32(self._base + 0x64, 1)
        self._pipeline.filter_bank.default_pass = True

    # -- results -------------------------------------------------------------

    @property
    def rx_packets(self) -> int:
        low = self._bus.read32(self._base + 0x10)
        high = self._bus.read32(self._base + 0x14)
        return (high << 32) | low

    @property
    def rx_bytes(self) -> int:
        low = self._bus.read32(self._base + 0x18)
        high = self._bus.read32(self._base + 0x1C)
        return (high << 32) | low

    @property
    def capture_drops(self) -> int:
        return self._bus.read32(self._base + 0x20)

    @property
    def captured_count(self) -> int:
        return self._bus.read32(self._base + 0x24)

    @property
    def packets(self):
        """Packets delivered to the host buffer (with RX timestamps)."""
        return self._pipeline.host.packets

    def on_packet(self, listener) -> None:
        """Register a callback for each packet reaching the host."""
        self._pipeline.host.add_listener(listener)

    def save_pcap(self, path: Union[str, Path]) -> int:
        """Write the host buffer to a nanosecond pcap; returns count."""
        with PcapWriter(path) as writer:
            return self._pipeline.host.write_pcap(writer)

    def save_pcapng(self, path: Union[str, Path]) -> int:
        """Write the host buffer as a nanosecond pcapng; returns count."""
        from ..net.pcapng import write_pcapng

        return write_pcapng(path, self._pipeline.host.records())

    def rate_monitor(self, interval_ps: Optional[int] = None) -> "RateMonitor":
        """Start periodic RX rate sampling (the hardware stats engine)."""
        from ..units import ms
        from .monitor.rates import RateMonitor

        stats = self._pipeline.port.rx.stats
        monitor = RateMonitor(
            self.device.sim,
            read_counters=lambda: (stats.packets, stats.bytes),
            interval_ps=interval_ps or ms(1),
        )
        monitor.start()
        return monitor

    @property
    def observed_bps(self) -> float:
        return self._pipeline.stats.observed_bps()

    # -- telemetry ------------------------------------------------------------

    def enable_latency(
        self,
        offset: Optional[int] = None,
        per_flow: bool = False,
        flow_key: str = "dst_port",
        max_flows: int = 4096,
    ) -> "TrafficMonitor":
        """Arm the in-band latency histogram (TX stamp at ``offset``).

        With ``per_flow=True`` the pipeline additionally banks every
        sample per flow (keyed by ``flow_key``), P4TG-style — read the
        result from :attr:`flow_latency` or :meth:`flow_latency_rows`.
        """
        from .generator.tx_timestamp import DEFAULT_OFFSET

        self._pipeline.enable_latency(
            DEFAULT_OFFSET if offset is None else offset,
            per_flow=per_flow,
            flow_key=flow_key,
            max_flows=max_flows,
        )
        return self

    @property
    def latency_histogram(self):
        """The pipeline's in-band latency histogram (ps samples)."""
        return self._pipeline.latency

    def latency_summary(self):
        """Percentile summary of the in-band latency histogram."""
        return self._pipeline.latency.summary()

    @property
    def flow_latency(self):
        """The per-flow latency bank (None unless armed ``per_flow``)."""
        return self._pipeline.flow_latency

    def flow_latency_rows(self):
        """Deterministic per-flow percentile rows (incl. ``p999``)."""
        bank = self._pipeline.flow_latency
        return [] if bank is None else bank.summary_rows()


class OSNT:
    """Top-level facade: one tester card plus its software handles.

    >>> sim = Simulator()
    >>> tester = OSNT(sim)
    >>> gen, mon = tester.generator(0), tester.monitor(1)
    """

    def __init__(self, sim, **device_kwargs) -> None:
        self.device = OSNTDevice(sim, **device_kwargs)
        self.sim = sim
        self._generators = {}
        self._monitors = {}

    def generator(self, port_index: int) -> TrafficGenerator:
        if port_index not in self._generators:
            self._generators[port_index] = TrafficGenerator(self.device, port_index)
        return self._generators[port_index]

    def monitor(self, port_index: int) -> TrafficMonitor:
        if port_index not in self._monitors:
            self._monitors[port_index] = TrafficMonitor(self.device, port_index)
        return self._monitors[port_index]

    def port(self, port_index: int):
        return self.device.port(port_index)

    # -- lifecycle ------------------------------------------------------------

    @contextmanager
    def capture(self, port_index: int, **capture_kwargs):
        """Capture on one port for the duration of a ``with`` block.

        Arms the monitor with ``start_capture(**capture_kwargs)``,
        yields it, and always stops the capture on exit::

            with tester.capture(1, snaplen=64) as mon:
                sim.run(until=ms(2))
            rows = mon.packets
        """
        monitor = self.monitor(port_index)
        monitor.start_capture(**capture_kwargs)
        try:
            yield monitor
        finally:
            monitor.stop_capture()

    def shutdown(self) -> None:
        """Quiesce the card: stop every running generator and capture."""
        for generator in self._generators.values():
            if generator.running:
                generator.stop()
        for monitor in self._monitors.values():
            if monitor.capturing:
                monitor.stop_capture()

    def __enter__(self) -> "OSNT":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    # -- telemetry ------------------------------------------------------------

    @property
    def metrics(self):
        """The card-wide :class:`~repro.telemetry.MetricsRegistry`."""
        return self.device.metrics

    def start_telemetry(self, **kwargs) -> "OSNT":
        """Arm latency histograms and rate samplers (see device docs)."""
        self.device.start_telemetry(**kwargs)
        return self

    def snapshot(self) -> dict:
        """One coherent read of the whole card's telemetry."""
        return self.device.snapshot()

    @property
    def gps_locked(self) -> bool:
        """True once the disciplined clock error is under a microsecond."""
        error = self.device.gps.last_error_ps
        return error is not None and abs(error) < 1_000_000
