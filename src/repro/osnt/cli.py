"""Command-line tools mirroring the OSNT software utilities.

``osnt-gen`` — drive the (simulated) tester's generator: synthetic
templates or PCAP replay, rate control, TX timestamping; optionally
capture the far end of a loopback cable to a PCAP file.

``osnt-mon`` — run a PCAP file through the monitor pipeline offline:
wildcard filters, cutting, thinning; writes the reduced capture and
prints the stats the hardware counters would show.

``osnt-telemetry`` — run a timestamped loopback workload with the full
telemetry stack armed and emit the card snapshot as JSON (optionally
CSV and a Chrome ``trace_event`` file).

``osnt-telemetry timeline`` — run a workload with the sim-time waveform
recorder armed and export the queue/utilization timelines as CSV,
JSONL, Chrome counter tracks or OpenMetrics last-value gauges.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..analysis.report import format_table
from ..hw.port import connect
from ..net.builder import build_udp
from ..net.pcap import PcapWriter
from ..net.pcapng import read_capture
from ..sim import Simulator
from ..units import format_rate, ms, parse_rate, seconds
from .api import OSNT
from .monitor.filters import FilterBank
from .monitor.reducers import PacketCutter, Thinner


def gen_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="osnt-gen",
        description="OSNT traffic generator (simulated NetFPGA-10G loopback)",
    )
    parser.add_argument("--frame-size", type=int, default=64, help="wire bytes incl. FCS")
    parser.add_argument("--rate", default="10Gbps", help='target rate, e.g. "5Gbps"')
    parser.add_argument(
        "--traffic-model", metavar="SPEC",
        help="pace with a declarative traffic model: a spec JSON string "
        '(\'{"model": "burst_train", ...}\'), a JSON file path, or a bare '
        "model kind; overrides --rate",
    )
    parser.add_argument("--count", type=int, default=None, help="packets to send")
    parser.add_argument(
        "--duration-ms", type=float, default=None, help="run length in simulated ms"
    )
    parser.add_argument("--replay", metavar="PCAP", help="replay a capture instead")
    parser.add_argument("--loop", type=int, default=1, help="replay loop count")
    parser.add_argument(
        "--timestamp", action="store_true", help="embed hardware TX timestamps"
    )
    parser.add_argument("--capture", metavar="PCAP", help="write loopback capture here")
    args = parser.parse_args(argv)
    if args.count is None and args.duration_ms is None and not args.replay:
        args.duration_ms = 1.0

    sim = Simulator()
    tester = OSNT(sim)
    connect(tester.port(0), tester.port(1))
    generator = tester.generator(0)
    monitor = tester.monitor(1)
    monitor.start_capture()

    if args.replay:
        generator.load_pcap(args.replay, loop=args.loop)
    else:
        generator.load_template(build_udp(frame_size=args.frame_size), count=args.count)
        if args.traffic_model:
            import os

            model = args.traffic_model
            if os.path.exists(model) and not model.lstrip().startswith("{"):
                with open(model) as handle:
                    model = handle.read()
            generator.use_model(model)
        else:
            rate_bps = parse_rate(args.rate)
            generator.set_rate(rate_bps)
    if args.timestamp:
        generator.embed_timestamps()
    if args.duration_ms is not None:
        generator.for_duration(ms(args.duration_ms))
    generator.start()
    sim.run(until=seconds(10))
    sim.run()

    stats = generator.stats
    print(
        format_table(
            ["metric", "value"],
            [
                ["packets sent", generator.packets_sent],
                ["bytes sent", generator.bytes_sent],
                ["achieved rate", format_rate(stats.achieved_bps())],
                ["achieved pps", f"{stats.achieved_pps():,.0f}"],
                ["captured at peer", monitor.captured_count],
            ],
            title="osnt-gen run summary",
        )
    )
    if args.capture:
        written = monitor.save_pcap(args.capture)
        print(f"wrote {written} packets to {args.capture}")
    return 0


def mon_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="osnt-mon",
        description="OSNT monitor pipeline over a PCAP file (filter/cut/thin)",
    )
    parser.add_argument("input", help="input pcap")
    parser.add_argument("--output", help="write the reduced capture here")
    parser.add_argument("--snaplen", type=int, default=None, help="cut to N bytes")
    parser.add_argument("--thin", type=int, default=1, metavar="N", help="keep 1-in-N")
    parser.add_argument("--proto", type=int, default=None, help="filter: IP protocol")
    parser.add_argument("--src-ip", default=None, help="filter: source prefix a.b.c.d/len")
    parser.add_argument("--dst-ip", default=None, help="filter: dest prefix a.b.c.d/len")
    parser.add_argument("--dst-port", type=int, default=None, help="filter: dest port")
    parser.add_argument(
        "--flows", type=int, default=0, metavar="N",
        help="also print the top-N flows of the (filtered) capture",
    )
    args = parser.parse_args(argv)

    rule_fields = {}
    if args.proto is not None:
        rule_fields["protocol"] = args.proto
    if args.dst_port is not None:
        rule_fields["dst_port"] = args.dst_port
    for field, value in (("src", args.src_ip), ("dst", args.dst_ip)):
        if value:
            rule_fields[field] = value
    bank = FilterBank.from_rules([rule_fields] if rule_fields else [])

    cutter = PacketCutter(args.snaplen)
    thinner = Thinner(keep_one_in=args.thin)

    records = read_capture(args.input)
    kept = []
    in_bytes = out_bytes = 0
    for record in records:
        in_bytes += len(record.data)
        if not bank.decide(record.data):
            continue
        if not thinner.decide():
            continue
        data = record.data
        if args.snaplen is not None and len(data) > args.snaplen:
            data = data[: args.snaplen]
            cutter.cut += 1
        out_bytes += len(data)
        kept.append((record, data))

    print(
        format_table(
            ["metric", "value"],
            [
                ["packets in", len(records)],
                ["passed filter", bank.passed],
                ["dropped by filter", bank.filtered],
                ["thinned", thinner.thinned],
                ["cut", cutter.cut],
                ["packets out", len(kept)],
                ["bytes in", in_bytes],
                ["bytes out", out_bytes],
                [
                    "host-load reduction",
                    f"{(1 - out_bytes / in_bytes) * 100:.1f}%" if in_bytes else "0%",
                ],
            ],
            title=f"osnt-mon: {args.input}",
        )
    )
    if args.flows:
        from ..analysis.flowstats import FlowAccounting
        from ..net.packet import Packet

        accounting = FlowAccounting()
        for record, __ in kept:
            if len(record.data) >= 14:
                packet = Packet(record.data)
                packet.rx_timestamp = record.timestamp_ps
                accounting.add(packet)
        print(
            format_table(
                ["flow", "packets", "bytes", "duration ms", "rate Mbps"],
                accounting.table_rows(args.flows),
                title=f"top {args.flows} flows ({len(accounting)} total)",
            )
        )
    if args.output:
        with PcapWriter(args.output) as writer:
            for record, data in kept:
                from ..net.pcap import PcapRecord

                writer.write(
                    PcapRecord(
                        timestamp_ps=record.timestamp_ps,
                        data=data,
                        orig_len=record.original_length,
                    )
                )
        print(f"wrote {len(kept)} packets to {args.output}")
    return 0


def telemetry_main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "timeline":
        return timeline_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="osnt-telemetry",
        description=(
            "run a timestamped loopback workload with telemetry armed and "
            "dump the card snapshot (JSON to stdout by default); see the "
            "'timeline' subcommand for sim-time waveform exports"
        ),
    )
    parser.add_argument("--frame-size", type=int, default=256, help="wire bytes incl. FCS")
    parser.add_argument("--rate", default="5Gbps", help='target rate, e.g. "5Gbps"')
    parser.add_argument("--duration-ms", type=float, default=1.0, help="simulated run length")
    parser.add_argument("--replay", metavar="PCAP", help="replay a capture instead")
    parser.add_argument("--json", metavar="FILE", help="write the snapshot here")
    parser.add_argument(
        "--format", choices=("json", "openmetrics"), default="json",
        help="snapshot output format: JSON document (default) or "
        "OpenMetrics text exposition",
    )
    parser.add_argument("--csv", metavar="FILE", help="also write a flat metric,value CSV")
    parser.add_argument(
        "--trace", metavar="FILE", help="record and write a Chrome trace_event file"
    )
    parser.add_argument(
        "--trace-capacity", type=int, default=1 << 16, help="trace ring-buffer slots"
    )
    parser.add_argument(
        "--trace-counters", action="store_true",
        help="also render the metrics-card counters as Chrome counter "
        "tracks in the --trace file (opt-in: default traces stay "
        "byte-identical)",
    )
    parser.add_argument(
        "--histograms", action="store_true",
        help="include full bucket dumps in the JSON, not just summaries",
    )
    parser.add_argument(
        "--status", action="store_true", help="print the dashboard panel to stderr"
    )
    args = parser.parse_args(argv)

    from ..telemetry import (
        Tracer,
        registry_histograms_to_dict,
        snapshot_to_json,
        snapshot_to_openmetrics,
        write_chrome_trace,
        write_snapshot_csv,
    )

    sim = Simulator()
    tracer = None
    if args.trace:
        tracer = Tracer(capacity=args.trace_capacity)
        sim.set_tracer(tracer)
    tester = OSNT(sim)
    connect(tester.port(0), tester.port(1))
    tester.start_telemetry()
    monitor = tester.monitor(1)
    monitor.start_capture()
    generator = tester.generator(0)
    if args.replay:
        generator.load_pcap(args.replay)
    else:
        generator.load_template(build_udp(frame_size=args.frame_size))
        generator.set_rate(parse_rate(args.rate))
    generator.embed_timestamps()
    generator.for_duration(ms(args.duration_ms))
    generator.start()
    sim.run()  # drain the workload
    sim.run(until=sim.now + ms(2))  # let the daemon rate ticks land
    tester.device.stop_telemetry()

    snapshot = tester.snapshot()
    if args.format == "openmetrics":
        # OpenMetrics is flat text: histogram full-bucket dumps do not
        # fit the exposition format, so --histograms only affects JSON.
        document = snapshot_to_openmetrics(snapshot, prefix="osnt")
    else:
        payload = dict(snapshot)
        if args.histograms:
            payload["histograms"] = registry_histograms_to_dict(tester.metrics)
        document = snapshot_to_json(payload) + "\n"
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(document)
    else:
        print(document, end="")
    if args.csv:
        write_snapshot_csv(args.csv, snapshot)
        print(f"wrote metrics CSV to {args.csv}", file=sys.stderr)
    if tracer is not None:
        registry = tester.metrics if args.trace_counters else None
        written = write_chrome_trace(args.trace, tracer, registry=registry)
        print(
            f"wrote {written} trace events to {args.trace} "
            f"({tracer.evicted} evicted)",
            file=sys.stderr,
        )
    if args.status:
        from .dashboard import render_status

        print(render_status(tester), file=sys.stderr)
    return 0


def timeline_main(argv: Optional[List[str]] = None) -> int:
    """``osnt-telemetry timeline``: sim-time waveform export."""
    parser = argparse.ArgumentParser(
        prog="osnt-telemetry timeline",
        description=(
            "run a workload with the deterministic waveform recorder armed "
            "and export (sim_time, value) timelines: FIFO occupancy, DMA "
            "ring depth, switch queues, per-link utilization"
        ),
    )
    parser.add_argument(
        "--scenario", choices=("loopback", "incast"), default="loopback",
        help="loopback: OSNT tester p0->p1 with capture+DMA; incast: "
        "synchronized burst trains converging on one legacy-switch egress",
    )
    parser.add_argument("--frame-size", type=int, default=256, help="wire bytes incl. FCS")
    parser.add_argument("--rate", default="5Gbps", help="loopback target rate")
    parser.add_argument("--duration-ms", type=float, default=1.0, help="simulated run length")
    parser.add_argument("--senders", type=int, default=3, help="incast senders (1-3)")
    parser.add_argument("--seed", type=int, default=0, help="incast template/switch seed")
    parser.add_argument(
        "--keep-every", type=int, default=1, metavar="K",
        help="decimation: collapse each K committed points to a min/max/"
        "last envelope (1 = keep every state change)",
    )
    parser.add_argument(
        "--capacity", type=int, default=1 << 14, help="retained points per series"
    )
    parser.add_argument(
        "--window-us", type=float, default=10.0,
        help="utilization window for *.wire_bytes rate series, simulated µs",
    )
    parser.add_argument("--csv", metavar="FILE", help="write series,time_ps,value CSV")
    parser.add_argument("--jsonl", metavar="FILE", help="write one point per JSON line")
    parser.add_argument(
        "--trace", metavar="FILE",
        help="write the waveforms as Chrome trace_event counter tracks",
    )
    parser.add_argument(
        "--openmetrics", metavar="FILE",
        help="write last-value gauges as an OpenMetrics exposition",
    )
    parser.add_argument(
        "--digest-only", action="store_true",
        help="print only the recorder digest (for determinism checks)",
    )
    args = parser.parse_args(argv)

    from ..obs import observe_simulators
    from ..telemetry import WaveformRecorder
    from ..units import us

    recorder = WaveformRecorder(
        capacity=args.capacity,
        keep_every=args.keep_every,
        window_ps=max(1, int(us(args.window_us))),
    )
    if args.scenario == "incast":
        from ..testbed.attacks import incast_burst_point

        with observe_simulators(waves=recorder):
            row, __ = incast_burst_point(
                senders=args.senders,
                frame_size=args.frame_size,
                duration_ps=int(ms(args.duration_ms)),
                seed=args.seed,
            )
        headline = (
            f"incast: {row.sent} sent, {row.received} received, "
            f"queue peak {row.queue_peak_bytes} B, "
            f"{row.egress_drops} egress drops"
        )
    else:
        with observe_simulators(waves=recorder):
            sim = Simulator()
            tester = OSNT(sim)
            connect(tester.port(0), tester.port(1))
            monitor = tester.monitor(1)
            monitor.start_capture()
            generator = tester.generator(0)
            generator.load_template(build_udp(frame_size=args.frame_size))
            generator.set_rate(parse_rate(args.rate))
            generator.embed_timestamps()
            generator.for_duration(ms(args.duration_ms))
            generator.start()
            sim.run()
        headline = (
            f"loopback: {generator.packets_sent} sent, "
            f"{monitor.captured_count} captured"
        )

    digest = recorder.digest()
    if args.digest_only:
        print(digest)
    else:
        rows = []
        for name in recorder.names():
            wf = recorder.get(name)
            points = wf.points()
            values = [v for __, v in points]
            rows.append(
                [
                    name,
                    wf.recorded,
                    len(points),
                    wf.evicted,
                    min(values) if values else "",
                    max(values) if values else "",
                ]
            )
        print(
            format_table(
                ["series", "samples", "points", "evicted", "min", "max"],
                rows,
                title=f"osnt-telemetry timeline ({headline})",
            )
        )
        print(f"waveform digest: {digest}")
    if args.csv:
        points = recorder.write_csv(args.csv)
        print(f"wrote {points} points to {args.csv}", file=sys.stderr)
    if args.jsonl:
        points = recorder.write_jsonl(args.jsonl)
        print(f"wrote {points} points to {args.jsonl}", file=sys.stderr)
    if args.trace:
        from ..telemetry import write_chrome_trace

        written = write_chrome_trace(args.trace, None, waves=recorder)
        print(f"wrote {written} counter events to {args.trace}", file=sys.stderr)
    if args.openmetrics:
        from ..telemetry import snapshot_to_openmetrics

        with open(args.openmetrics, "w") as handle:
            handle.write(snapshot_to_openmetrics(recorder.gauges(), prefix="osnt"))
        print(f"wrote gauges to {args.openmetrics}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(gen_main())
