"""OSNT traffic monitoring subsystem."""

from .capture import CapturePipeline, HostCaptureBuffer, MonitorStats
from .filters import DEFAULT_BANK_SIZE, FilterBank, FilterRule
from .rates import RateMonitor, RateSample
from .reducers import HashUnit, PacketCutter, Thinner

__all__ = [
    "CapturePipeline",
    "DEFAULT_BANK_SIZE",
    "FilterBank",
    "FilterRule",
    "HashUnit",
    "HostCaptureBuffer",
    "MonitorStats",
    "PacketCutter",
    "RateMonitor",
    "RateSample",
    "Thinner",
]
