"""The monitor's rate-statistics engine.

The OSNT monitor exposes per-port statistics beyond raw counters: the
hardware samples packet/byte counts on a fixed interval so software can
read achieved rates without sitting in the datapath. The model samples
any counter source (a MAC's stats, the capture pipeline's stats) on a
daemon timer and keeps a bounded history of per-interval rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ...errors import ConfigError
from ...sim import Event, Simulator
from ...units import ms

#: Counter source: returns (packets, bytes) cumulative totals.
CounterReader = Callable[[], Tuple[int, int]]


@dataclass
class RateSample:
    """One sampling interval's activity."""

    time_ps: int  # end of the interval
    packets: int  # packets seen during the interval
    bytes: int  # frame bytes seen during the interval
    pps: float
    bps: float


class RateMonitor:
    """Periodic rate sampler over a cumulative counter source."""

    def __init__(
        self,
        sim: Simulator,
        read_counters: CounterReader,
        interval_ps: int = ms(1),
        history: int = 1024,
    ) -> None:
        if interval_ps <= 0:
            raise ConfigError("sampling interval must be positive")
        if history < 1:
            raise ConfigError("history must hold at least one sample")
        self.sim = sim
        self.read_counters = read_counters
        self.interval_ps = interval_ps
        self.history = history
        self.samples: List[RateSample] = []
        self.running = False
        self._last_packets = 0
        self._last_bytes = 0
        #: The one in-flight daemon tick. Tracked so stop() can cancel
        #: it: otherwise a stop()/start() before the pending tick fires
        #: would leave two live tick chains and double the sampling rate.
        self._pending: Optional[Event] = None

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._last_packets, self._last_bytes = self.read_counters()
        self._pending = self.sim.call_after(self.interval_ps, self._tick, daemon=True)

    def stop(self) -> None:
        self.running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _tick(self) -> None:
        self._pending = None
        if not self.running:
            return
        packets, nbytes = self.read_counters()
        delta_packets = packets - self._last_packets
        delta_bytes = nbytes - self._last_bytes
        self._last_packets, self._last_bytes = packets, nbytes
        self.samples.append(
            RateSample(
                time_ps=self.sim.now,
                packets=delta_packets,
                bytes=delta_bytes,
                pps=delta_packets * 1e12 / self.interval_ps,
                bps=delta_bytes * 8 * 1e12 / self.interval_ps,
            )
        )
        if len(self.samples) > self.history:
            del self.samples[: len(self.samples) - self.history]
        self._pending = self.sim.call_after(self.interval_ps, self._tick, daemon=True)

    # -- telemetry ------------------------------------------------------------

    def latest(self) -> Optional[RateSample]:
        """The most recent completed sampling interval, if any."""
        return self.samples[-1] if self.samples else None

    def register_metrics(self, registry, prefix: str) -> None:
        """Publish this sampler's rates as pull gauges under ``prefix``.

        The registry reads the *existing* sample history — there is no
        second sampling path; a ``snapshot()`` sees exactly what the
        daemon timer measured.
        """

        def of_latest(field: str, default: float = 0.0):
            def read():
                sample = self.latest()
                return getattr(sample, field) if sample is not None else default

            return read

        registry.gauge(f"{prefix}.pps", of_latest("pps"))
        registry.gauge(f"{prefix}.bps", of_latest("bps"))
        registry.gauge(f"{prefix}.peak_bps", self.peak_bps)
        registry.gauge(f"{prefix}.mean_bps", self.mean_bps)
        registry.gauge(f"{prefix}.intervals", lambda: len(self.samples))
        registry.gauge(f"{prefix}.busy_intervals", self.busy_intervals)

    # -- convenience accessors -------------------------------------------------

    def peak_bps(self) -> float:
        return max((sample.bps for sample in self.samples), default=0.0)

    def mean_bps(self) -> float:
        if not self.samples:
            return 0.0
        return sum(sample.bps for sample in self.samples) / len(self.samples)

    def busy_intervals(self) -> int:
        """Intervals in which any traffic was observed."""
        return sum(1 for sample in self.samples if sample.packets)
