"""Capture-path load reducers: packet cutting, thinning and hashing.

These are the hardware features that make the loss-limited DMA path
workable at multi-10G capture rates: cutting truncates each packet to a
snap length, thinning forwards only a subset of packets, and the hash
unit fingerprints full packets so cut or thinned captures can still be
correlated across observation points.
"""

from __future__ import annotations

import random
import warnings
from typing import Optional

from ...errors import CaptureError
from ...net.checksum import crc32_hash, fletcher32
from ...net.fields import u32
from ...net.packet import Packet


def _warn_snap_bytes() -> None:
    warnings.warn(
        "'snap_bytes' is deprecated; use 'snaplen' (matching net.pcap/pcapng)",
        DeprecationWarning,
        stacklevel=3,
    )


class PacketCutter:
    """Truncate captured packets to ``snaplen`` (0/None disables)."""

    def __init__(
        self,
        snaplen: Optional[int] = None,
        snap_bytes: Optional[int] = None,
    ) -> None:
        if snap_bytes is not None:
            _warn_snap_bytes()
            if snaplen is None:
                snaplen = snap_bytes
        self.configure(snaplen)
        self.cut = 0

    def configure(self, snaplen: Optional[int]) -> None:
        if snaplen is not None and snaplen < 14:
            raise CaptureError("snap length must keep at least the Ethernet header")
        self.snaplen = snaplen

    @property
    def snap_bytes(self) -> Optional[int]:
        """Deprecated alias of :attr:`snaplen`."""
        _warn_snap_bytes()
        return self.snaplen

    @snap_bytes.setter
    def snap_bytes(self, value: Optional[int]) -> None:
        _warn_snap_bytes()
        self.configure(value)

    def apply(self, packet: Packet) -> None:
        if self.snaplen is None or len(packet.data) <= self.snaplen:
            packet.capture_length = len(packet.data)
            return
        packet.capture_length = self.snaplen
        self.cut += 1


class Thinner:
    """Forward a subset of packets.

    Two modes, matching the hardware options:

    * deterministic ``1-in-N``: packet indices 0, N, 2N, ... pass;
    * probabilistic: each packet passes with probability ``p`` (seeded).
    """

    def __init__(
        self,
        keep_one_in: int = 1,
        probability: Optional[float] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if keep_one_in < 1:
            raise CaptureError("keep_one_in must be >= 1")
        if probability is not None and not 0.0 <= probability <= 1.0:
            raise CaptureError("probability must be within [0, 1]")
        self.keep_one_in = keep_one_in
        self.probability = probability
        self._rng = rng or random.Random(0)
        self._index = 0
        self.kept = 0
        self.thinned = 0

    def decide(self) -> bool:
        if self.probability is not None:
            keep = self._rng.random() < self.probability
        else:
            keep = self._index % self.keep_one_in == 0
        self._index += 1
        if keep:
            self.kept += 1
        else:
            self.thinned += 1
        return keep

    def reset(self) -> None:
        self._index = 0


class HashUnit:
    """Fingerprint packets before cutting/thinning discard bytes.

    ``algorithm`` is ``"crc32"`` or ``"fletcher32"``; the digest covers
    the first ``cover_bytes`` of the frame (None = all bytes) and is
    attached to the packet metadata (in hardware it rides the capture
    header into the host).
    """

    def __init__(self, algorithm: str = "crc32", cover_bytes: Optional[int] = None) -> None:
        if algorithm not in ("crc32", "fletcher32"):
            raise CaptureError(f"unknown hash algorithm {algorithm!r}")
        self.algorithm = algorithm
        self.cover_bytes = cover_bytes
        self.hashed = 0

    def digest(self, data: bytes) -> bytes:
        covered = data if self.cover_bytes is None else data[: self.cover_bytes]
        if self.algorithm == "crc32":
            return crc32_hash(covered)
        return u32(fletcher32(covered))

    def apply(self, packet: Packet) -> None:
        packet.hash_value = self.digest(packet.data)
        self.hashed += 1
