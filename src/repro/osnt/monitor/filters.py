"""Wildcard packet filters (the monitor's TCAM filter bank).

The OSNT monitor provides "wildcard-enabled packet filters" in hardware:
a small TCAM matching on the 5-tuple, where any field may be masked.
Entries are priority-ordered (lowest index wins, like TCAM rows); a
packet matching an entry takes that entry's action, otherwise the bank's
default action applies.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Dict, List, Optional, Sequence, Union

from ...errors import CaptureError
from ...net.fields import ipv4_to_int
from ...net.flows import FiveTuple
from ...net.parser import decode

#: Hardware bank depth on the NetFPGA-10G design.
DEFAULT_BANK_SIZE = 16


@dataclass
class FilterRule:
    """One TCAM row. ``None`` in a field means wildcard.

    IPv4 prefixes are expressed with ``*_prefix_len`` (0-32); a prefix
    length of 32 matches the exact address.
    """

    src_ip: Optional[str] = None
    src_prefix_len: int = 32
    dst_ip: Optional[str] = None
    dst_prefix_len: int = 32
    protocol: Optional[int] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    action_pass: bool = True

    def __post_init__(self) -> None:
        for length in (self.src_prefix_len, self.dst_prefix_len):
            if not 0 <= length <= 32:
                raise CaptureError(f"bad prefix length {length}")

    @classmethod
    def from_spec(cls, spec: Union["FilterRule", Dict[str, Any], str]) -> "FilterRule":
        """Build a rule from a declarative spec.

        Accepts an existing rule (pass-through), a JSON object string,
        or a dict using either the dataclass field names or the CLI
        shorthand: ``"src"``/``"dst"`` take ``"a.b.c.d/len"`` prefix
        strings (bare address = /32) and ``"action"`` takes ``"pass"``
        or ``"drop"``.

        >>> FilterRule.from_spec({"src": "10.0.0.0/8", "action": "drop"})
        ... # doctest: +SKIP
        """
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, str):
            try:
                spec = json.loads(spec)
            except json.JSONDecodeError as exc:
                raise CaptureError(f"filter rule is not valid JSON: {exc}") from exc
        if not isinstance(spec, dict):
            raise CaptureError(
                f"filter rule spec must be a dict, got {type(spec).__name__}"
            )
        known = {f.name for f in dataclass_fields(cls)}
        kwargs: Dict[str, Any] = {}
        for key, value in spec.items():
            if key in ("src", "dst"):
                address, slash, length = str(value).partition("/")
                kwargs[f"{key}_ip"] = address
                if slash:
                    kwargs[f"{key}_prefix_len"] = int(length)
            elif key == "action":
                if value not in ("pass", "drop"):
                    raise CaptureError(f"filter action must be pass/drop, got {value!r}")
                kwargs["action_pass"] = value == "pass"
            elif key in known:
                kwargs[key] = value
            else:
                raise CaptureError(f"unknown filter rule field {key!r}")
        return cls(**kwargs)

    def matches(self, tup: Optional[FiveTuple]) -> bool:
        if tup is None:
            # Non-IP traffic only matches the all-wildcard rule.
            return (
                self.src_ip is None
                and self.dst_ip is None
                and self.protocol is None
                and self.src_port is None
                and self.dst_port is None
            )
        if self.protocol is not None and tup.protocol != self.protocol:
            return False
        if self.src_port is not None and tup.src_port != self.src_port:
            return False
        if self.dst_port is not None and tup.dst_port != self.dst_port:
            return False
        if self.src_ip is not None and not _prefix_match(
            tup.src_ip, self.src_ip, self.src_prefix_len
        ):
            return False
        if self.dst_ip is not None and not _prefix_match(
            tup.dst_ip, self.dst_ip, self.dst_prefix_len
        ):
            return False
        return True


def _prefix_match(address: str, prefix: str, prefix_len: int) -> bool:
    if prefix_len == 0:
        return True
    mask = ((1 << prefix_len) - 1) << (32 - prefix_len)
    try:
        return (ipv4_to_int(address) & mask) == (ipv4_to_int(prefix) & mask)
    except Exception:
        return False


class FilterBank:
    """Priority-ordered rule table with a default action."""

    def __init__(self, size: int = DEFAULT_BANK_SIZE, default_pass: bool = True) -> None:
        if size < 1:
            raise CaptureError("filter bank needs at least one entry")
        self.size = size
        self.default_pass = default_pass
        self.rules: List[FilterRule] = []
        self.matched = 0
        self.passed = 0
        self.filtered = 0

    @classmethod
    def from_rules(
        cls,
        rules: Union[Sequence, str],
        size: int = DEFAULT_BANK_SIZE,
        default_pass: Optional[bool] = None,
    ) -> "FilterBank":
        """Build a populated bank declaratively.

        ``rules`` is a sequence of rule specs (anything
        :meth:`FilterRule.from_spec` accepts) or a JSON array string.
        ``default_pass=None`` picks the conventional default: drop
        what no rule matched when any *pass* rule exists (capture only
        what you asked for), otherwise pass — the same behaviour the
        ``osnt-mon`` CLI and :meth:`TrafficMonitor.add_filter` apply.
        """
        if isinstance(rules, str):
            try:
                rules = json.loads(rules)
            except json.JSONDecodeError as exc:
                raise CaptureError(f"filter rules are not valid JSON: {exc}") from exc
        if not isinstance(rules, (list, tuple)):
            raise CaptureError(
                f"filter rules must be a list, got {type(rules).__name__}"
            )
        parsed = [FilterRule.from_spec(spec) for spec in rules]
        if default_pass is None:
            default_pass = not any(rule.action_pass for rule in parsed)
        bank = cls(size=size, default_pass=default_pass)
        for rule in parsed:
            bank.add_rule(rule)
        return bank

    def add_rule(self, rule: FilterRule) -> int:
        """Append a rule; returns its row index."""
        if len(self.rules) >= self.size:
            raise CaptureError(f"filter bank full ({self.size} entries)")
        self.rules.append(rule)
        return len(self.rules) - 1

    def clear(self) -> None:
        self.rules.clear()

    def decide(self, data: bytes) -> bool:
        """True if the frame should pass to the capture path."""
        tup = None
        decoded = decode(data)
        if decoded.ipv4 is not None or decoded.ipv6 is not None:
            from ...net.flows import extract_five_tuple

            tup = extract_five_tuple(decoded)
        for rule in self.rules:
            if rule.matches(tup):
                self.matched += 1
                verdict = rule.action_pass
                break
        else:
            verdict = self.default_pass
        if verdict:
            self.passed += 1
        else:
            self.filtered += 1
        return verdict
