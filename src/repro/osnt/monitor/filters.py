"""Wildcard packet filters (the monitor's TCAM filter bank).

The OSNT monitor provides "wildcard-enabled packet filters" in hardware:
a small TCAM matching on the 5-tuple, where any field may be masked.
Entries are priority-ordered (lowest index wins, like TCAM rows); a
packet matching an entry takes that entry's action, otherwise the bank's
default action applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ...errors import CaptureError
from ...net.fields import ipv4_to_int
from ...net.flows import FiveTuple
from ...net.parser import decode

#: Hardware bank depth on the NetFPGA-10G design.
DEFAULT_BANK_SIZE = 16


@dataclass
class FilterRule:
    """One TCAM row. ``None`` in a field means wildcard.

    IPv4 prefixes are expressed with ``*_prefix_len`` (0-32); a prefix
    length of 32 matches the exact address.
    """

    src_ip: Optional[str] = None
    src_prefix_len: int = 32
    dst_ip: Optional[str] = None
    dst_prefix_len: int = 32
    protocol: Optional[int] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    action_pass: bool = True

    def __post_init__(self) -> None:
        for length in (self.src_prefix_len, self.dst_prefix_len):
            if not 0 <= length <= 32:
                raise CaptureError(f"bad prefix length {length}")

    def matches(self, tup: Optional[FiveTuple]) -> bool:
        if tup is None:
            # Non-IP traffic only matches the all-wildcard rule.
            return (
                self.src_ip is None
                and self.dst_ip is None
                and self.protocol is None
                and self.src_port is None
                and self.dst_port is None
            )
        if self.protocol is not None and tup.protocol != self.protocol:
            return False
        if self.src_port is not None and tup.src_port != self.src_port:
            return False
        if self.dst_port is not None and tup.dst_port != self.dst_port:
            return False
        if self.src_ip is not None and not _prefix_match(
            tup.src_ip, self.src_ip, self.src_prefix_len
        ):
            return False
        if self.dst_ip is not None and not _prefix_match(
            tup.dst_ip, self.dst_ip, self.dst_prefix_len
        ):
            return False
        return True


def _prefix_match(address: str, prefix: str, prefix_len: int) -> bool:
    if prefix_len == 0:
        return True
    mask = ((1 << prefix_len) - 1) << (32 - prefix_len)
    try:
        return (ipv4_to_int(address) & mask) == (ipv4_to_int(prefix) & mask)
    except Exception:
        return False


class FilterBank:
    """Priority-ordered rule table with a default action."""

    def __init__(self, size: int = DEFAULT_BANK_SIZE, default_pass: bool = True) -> None:
        if size < 1:
            raise CaptureError("filter bank needs at least one entry")
        self.size = size
        self.default_pass = default_pass
        self.rules: List[FilterRule] = []
        self.matched = 0
        self.passed = 0
        self.filtered = 0

    def add_rule(self, rule: FilterRule) -> int:
        """Append a rule; returns its row index."""
        if len(self.rules) >= self.size:
            raise CaptureError(f"filter bank full ({self.size} entries)")
        self.rules.append(rule)
        return len(self.rules) - 1

    def clear(self) -> None:
        self.rules.clear()

    def decide(self, data: bytes) -> bool:
        """True if the frame should pass to the capture path."""
        tup = None
        decoded = decode(data)
        if decoded.ipv4 is not None or decoded.ipv6 is not None:
            from ...net.flows import extract_five_tuple

            tup = extract_five_tuple(decoded)
        for rule in self.rules:
            if rule.matches(tup):
                self.matched += 1
                verdict = rule.action_pass
                break
        else:
            verdict = self.default_pass
        if verdict:
            self.passed += 1
        else:
            self.filtered += 1
        return verdict
