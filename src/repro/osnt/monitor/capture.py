"""The per-port capture pipeline.

Hardware order, as in the OSNT monitor design:

    RX MAC → timestamp (64-bit, at receipt) → stats → filter bank
           → hash → thin → cut → DMA ring → host buffer

Timestamping happens first — "on receipt by the MAC module, thus
minimising queueing noise" — so filter/DMA queueing can never perturb
the recorded arrival times. Everything after the timestamp only decides
*whether* and *how much of* the packet reaches the host.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ...errors import CaptureError
from ...hw.dma import DmaEngine
from ...hw.port import EthernetPort
from ...hw.timestamp import TimestampUnit, raw_to_ps
from ...net.packet import Packet
from ...net.pcap import PcapRecord, PcapWriter
from ...sim import Simulator
from ...telemetry import HistogramBank, LogLinearHistogram
from .filters import FilterBank
from .reducers import HashUnit, PacketCutter, Thinner

#: Latency samples beyond this are treated as garbage (no stamp embedded
#: where the extractor looked), mirroring a hardware range check.
LATENCY_SANITY_PS = 10**13  # 10 seconds
_STAMP_BYTES = 8

#: Flow-key extractors for per-flow latency banks: packet bytes → str.
#: String keys survive a JSON round-trip unchanged, so shard merges are
#: bit-identical to single-process runs.
FLOW_KEYS = ("dst_port", "src_ip", "five_tuple")


def _flow_key_fn(flow_key: str):
    from ...net.flows import extract_five_tuple

    if flow_key not in FLOW_KEYS:
        raise CaptureError(
            f"unknown flow key {flow_key!r}; choose from {FLOW_KEYS}"
        )

    def key_of(data: bytes) -> str:
        five = extract_five_tuple(data)
        if five is None:
            return "non-ip"
        if flow_key == "dst_port":
            return str(five.dst_port)
        if flow_key == "src_ip":
            return five.src_ip
        return str(five)

    return key_of


class MonitorStats:
    """Per-port monitor counters (the hardware stats module)."""

    def __init__(self) -> None:
        self.rx_packets = 0
        self.rx_bytes = 0  # frame bytes incl. FCS
        self.first_rx_ps: Optional[int] = None
        self.last_rx_ps: Optional[int] = None

    def note(self, now: int, frame_bytes: int) -> None:
        self.rx_packets += 1
        self.rx_bytes += frame_bytes
        if self.first_rx_ps is None:
            self.first_rx_ps = now
        self.last_rx_ps = now

    def observed_bps(self) -> float:
        if self.first_rx_ps is None or self.last_rx_ps == self.first_rx_ps:
            return 0.0
        return self.rx_bytes * 8 * 1e12 / (self.last_rx_ps - self.first_rx_ps)


class HostCaptureBuffer:
    """Software end of the capture path: stores packets, fans out events."""

    def __init__(self, keep_packets: bool = True) -> None:
        self.keep_packets = keep_packets
        self.packets: List[Packet] = []
        self.received = 0
        self._listeners: List[Callable[[Packet], None]] = []

    def add_listener(self, listener: Callable[[Packet], None]) -> None:
        self._listeners.append(listener)

    def deliver(self, packet: Packet) -> None:
        self.received += 1
        if self.keep_packets:
            self.packets.append(packet)
        for listener in self._listeners:
            listener(packet)

    def clear(self) -> None:
        self.packets.clear()
        self.received = 0

    def write_pcap(self, writer: PcapWriter) -> int:
        """Dump buffered packets (RX-timestamped) to an open pcap writer."""
        for packet in self.packets:
            writer.write_packet(packet, packet.rx_timestamp or 0)
        return len(self.packets)

    def records(self) -> List[PcapRecord]:
        return [
            PcapRecord(
                timestamp_ps=packet.rx_timestamp or 0,
                data=packet.data[: packet.capture_length]
                if packet.capture_length is not None
                else packet.data,
                orig_len=len(packet.data),
            )
            for packet in self.packets
        ]


class CapturePipeline:
    """Wires one port's RX MAC through the monitor stages to the host."""

    def __init__(
        self,
        sim: Simulator,
        port: EthernetPort,
        timestamp_unit: TimestampUnit,
        dma: DmaEngine,
        name: str = "mon",
        port_index: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.port = port
        self.name = name
        self.port_index = port_index
        self.timestamp_unit = timestamp_unit
        self.dma = dma
        self.stats = MonitorStats()
        self.filter_bank = FilterBank()
        self.hash_unit: Optional[HashUnit] = None
        self.thinner = Thinner()
        self.cutter = PacketCutter()
        self.host = HostCaptureBuffer()
        self.enabled = False
        self.dma_drops_at_port = 0
        #: In-band latency histogram (P4TG-style): fed per packet from
        #: the embedded TX stamp once :meth:`enable_latency` arms it.
        self.latency = LogLinearHistogram(unit="ps")
        self.latency_skipped = 0
        self._latency_offset: Optional[int] = None
        #: Per-flow latency bank (P4TG's histogram extension): armed by
        #: ``enable_latency(per_flow=True)``, keyed from packet bytes.
        self.flow_latency: Optional[HistogramBank] = None
        self._flow_key_of = None
        port.add_rx_sink(self._on_frame)
        # A multi-port card shares one DMA engine; the device then owns
        # the host-side demux. Standalone pipelines claim it themselves.
        if dma.on_host_deliver is None:
            dma.on_host_deliver = self._fanout_host

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def enable_latency(
        self,
        offset: int = 42,
        per_flow: bool = False,
        flow_key: str = "dst_port",
        max_flows: int = 4096,
    ) -> None:
        """Arm in-band latency aggregation.

        ``offset`` is the byte position of the generator's embedded
        64-bit TX stamp (see :mod:`repro.osnt.generator.tx_timestamp`).
        Like the stats module, the histogram runs even when host capture
        is disabled — aggregation happens before the filter bank.

        ``per_flow=True`` additionally banks every sample into a
        per-flow histogram keyed by ``flow_key`` (``"dst_port"``,
        ``"src_ip"`` or ``"five_tuple"``), so the monitor answers
        "p99.9 RTT of flow X under burst load" without host capture.
        """
        self._latency_offset = offset
        if per_flow:
            self._flow_key_of = _flow_key_fn(flow_key)
            self.flow_latency = HistogramBank(unit="ps", max_keys=max_flows)
        else:
            self._flow_key_of = None
            self.flow_latency = None

    def disable_latency(self) -> None:
        self._latency_offset = None
        self._flow_key_of = None
        self.flow_latency = None

    def register_metrics(self, registry, prefix: str) -> None:
        """Publish this pipeline's counters, stages and latency histogram."""
        stats = self.stats
        registry.gauge(f"{prefix}.rx_packets", lambda: stats.rx_packets)
        registry.gauge(f"{prefix}.rx_bytes", lambda: stats.rx_bytes)
        registry.gauge(f"{prefix}.captured", lambda: self.host.received)
        registry.gauge(f"{prefix}.dma_drops", lambda: self.dma_drops_at_port)
        registry.gauge(f"{prefix}.filter_passed", lambda: self.filter_bank.passed)
        registry.gauge(f"{prefix}.filter_dropped", lambda: self.filter_bank.filtered)
        registry.gauge(f"{prefix}.thinned", lambda: self.thinner.thinned)
        registry.gauge(f"{prefix}.cut", lambda: self.cutter.cut)
        registry.gauge(f"{prefix}.latency_skipped", lambda: self.latency_skipped)
        registry.register_histogram(f"{prefix}.latency_ps", self.latency)

    def _on_frame(self, packet: Packet) -> None:
        # Timestamp and count unconditionally: the stats module and the
        # timestamp run even when host capture is disabled.
        packet.rx_timestamp = self.timestamp_unit.now_ps()
        if self.port_index is not None:
            packet.ingress_port = self.port_index
        self.stats.note(self.sim.now, packet.frame_length)
        offset = self._latency_offset
        if offset is not None:
            # In-band aggregation: extract the embedded TX stamp and bin
            # the delta without ever shipping the sample to the host.
            data = packet.data
            if offset + _STAMP_BYTES <= len(data):
                tx_ps = raw_to_ps(int.from_bytes(data[offset : offset + _STAMP_BYTES], "big"))
                delta = packet.rx_timestamp - tx_ps
                if 0 <= delta <= LATENCY_SANITY_PS:
                    self.latency.record(delta)
                    if self.flow_latency is not None:
                        self.flow_latency.record(self._flow_key_of(data), delta)
                else:
                    self.latency_skipped += 1
            else:
                self.latency_skipped += 1
        spans = self.sim.spans
        if spans is not None:
            spans.hop(
                self.sim.now, packet, "rx_capture",
                {"monitor": self.name, "rx_ps": packet.rx_timestamp},
            )
        if not self.enabled:
            return
        if not self.filter_bank.decide(packet.data):
            if spans is not None:
                spans.close(
                    self.sim.now, packet, "filtered",
                    detail={"monitor": self.name},
                )
            return
        if self.hash_unit is not None:
            self.hash_unit.apply(packet)
        if not self.thinner.decide():
            if spans is not None:
                spans.close(
                    self.sim.now, packet, "thinned",
                    detail={"monitor": self.name},
                )
            return
        self.cutter.apply(packet)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(
                self.sim.now, "packet", "captured",
                {"monitor": self.name, "bytes": packet.frame_length},
            )
        if not self.dma.enqueue(packet):
            self.dma_drops_at_port += 1

    def _fanout_host(self, packet: Packet) -> None:
        self.host.deliver(packet)

    @property
    def captured(self) -> int:
        return self.host.received

    @property
    def dropped(self) -> int:
        """Capture-path losses (DMA ring overflow)."""
        return self.dma.stats.dropped
